"""Figure 8: sensitivity of ``P_S`` to the break-in budget ``N_T`` (§3.2.3).

* Fig. 8(a): mapping degree x overlay population ``N in {10000, 20000}``
  at ``L = 3``, showing that a larger population dilutes random break-ins.
* Fig. 8(b): layer count x mapping degree at ``N = 10000``.

Both use the successive attack with ``N_C = 2000`` and even distribution.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, dominates, non_increasing
from repro.perf.batch import evaluate_batch


def _sweep_nt(layers: int, mapping: str, total_overlay_nodes: int) -> List[float]:
    arch = SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=total_overlay_nodes,
        sos_nodes=config.SOS_NODES,
        filters=config.FILTERS,
    )
    attacks = [
        SuccessiveAttack(
            break_in_budget=n_t,
            congestion_budget=config.CONGESTION_BUDGET,
            break_in_success=config.BREAK_IN_SUCCESS,
            rounds=config.ROUNDS,
            prior_knowledge=config.PRIOR_KNOWLEDGE,
        )
        for n_t in config.BREAK_IN_SWEEP
    ]
    batch = evaluate_batch([arch] * len(attacks), attacks)
    return [float(value) for value in batch]


def _plateau_width(values: List[float], tolerance: float = 0.15) -> int:
    """Number of consecutive sweep points (after the first attack point)
    within ``tolerance`` of the N_T>0 starting level — the 'stable part'."""
    if len(values) < 2:
        return 0
    reference = values[1]
    width = 0
    for value in values[1:]:
        if abs(value - reference) <= tolerance * max(reference, 1e-9):
            width += 1
        else:
            break
    return width


def fig8a() -> FigureResult:
    """Reproduce Fig. 8(a): N_T sweep across mappings and N."""
    series: Dict[str, List[float]] = {}
    for mapping in ("one-to-one", "one-to-two"):
        for total in (10_000, 20_000):
            series[f"{mapping} N={total}"] = _sweep_nt(3, mapping, total)

    claims = [
        Claim(
            "P_S decreases with N_T",
            all(non_increasing(values) for values in series.values()),
        ),
        Claim(
            "a larger overlay population N raises P_S at fixed N_T",
            dominates(series["one-to-one N=20000"], series["one-to-one N=10000"])
            and dominates(series["one-to-two N=20000"], series["one-to-two N=10000"]),
        ),
        Claim(
            "higher mapping degree is more sensitive to N_T "
            "(one-to-two loses more of its P_S than one-to-one)",
            (series["one-to-two N=10000"][1] - series["one-to-two N=10000"][-1])
            > (series["one-to-one N=10000"][1] - series["one-to-one N=10000"][-1]),
        ),
        Claim(
            "a stable plateau precedes the slide (one-to-one, N=10000)",
            _plateau_width(series["one-to-one N=10000"]) >= 3,
        ),
    ]
    return FigureResult(
        figure_id="fig8a",
        title="Fig. 8(a): P_S vs N_T across mapping degree and N (L=3)",
        x_label="N_T",
        x_values=list(config.BREAK_IN_SWEEP),
        series=series,
        claims=claims,
        notes="The plateau is the layering absorbing disclosure-driven "
        "break-ins; the slide beyond it is the random break-in component.",
    )


def fig8b() -> FigureResult:
    """Reproduce Fig. 8(b): N_T sweep across L and mapping degree."""
    series: Dict[str, List[float]] = {}
    for layers in (3, 4, 5):
        for mapping in ("one-to-one", "one-to-two"):
            series[f"L={layers} {mapping}"] = _sweep_nt(
                layers, mapping, config.TOTAL_OVERLAY_NODES
            )

    claims = [
        Claim(
            "P_S decreases with N_T for every (L, mapping)",
            all(non_increasing(values) for values in series.values()),
        ),
        Claim(
            "one-to-two starts higher but crosses below one-to-one at "
            "large N_T (L=3): the break-in/congestion trade-off",
            series["L=3 one-to-two"][0] > series["L=3 one-to-one"][0]
            and series["L=3 one-to-two"][-1] < series["L=3 one-to-one"][-1],
        ),
        Claim(
            "deeper layering softens the N_T slide for one-to-two "
            "(L=5 keeps more P_S than L=3 at N_T=3200)",
            series["L=5 one-to-two"][-2] >= series["L=3 one-to-two"][-2],
        ),
    ]
    return FigureResult(
        figure_id="fig8b",
        title="Fig. 8(b): P_S vs N_T across L and mapping (N=10000)",
        x_label="N_T",
        x_values=list(config.BREAK_IN_SWEEP),
        series=series,
        claims=claims,
        notes="",
    )
