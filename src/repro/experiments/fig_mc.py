"""Monte Carlo re-rendering of a paper figure.

``val-mc`` checks agreement pointwise on a mixed grid; this experiment
re-draws an actual paper curve — Fig. 4(a)'s one-to-one series — entirely
by simulation (deploy, attack, forward packets) next to the analytical
series, so a reader can see the two curves lie on top of each other.
"""

from __future__ import annotations

from typing import List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack
from repro.core.model import evaluate
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult
from repro.simulation.monte_carlo import estimate_ps

MC_LAYERS = (1, 2, 3, 5, 8)


def fig4a_monte_carlo(trials: int = 60, seed: int = 41) -> FigureResult:
    """Fig. 4(a), one-to-one mapping, re-drawn by executed attacks."""
    attack = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
    analytic: List[float] = []
    simulated: List[float] = []
    ci_low: List[float] = []
    ci_high: List[float] = []
    for layers in MC_LAYERS:
        architecture = SOSArchitecture(
            layers=layers,
            mapping="one-to-one",
            total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
            sos_nodes=config.SOS_NODES,
            filters=config.FILTERS,
        )
        analytic.append(evaluate(architecture, attack).p_s)
        estimate = estimate_ps(
            architecture, attack, trials=trials, clients_per_trial=4, seed=seed
        )
        simulated.append(estimate.mean)
        low, high = estimate.ci95
        ci_low.append(low)
        ci_high.append(high)

    agreements = [
        low - 0.08 <= a <= high + 0.08
        for a, low, high in zip(analytic, ci_low, ci_high)
    ]
    max_gap = max(abs(a - s) for a, s in zip(analytic, simulated))
    claims = [
        Claim(
            "the analytical curve lies within the MC confidence band "
            f"(+0.08 margin) at every L ({sum(agreements)}/{len(agreements)})",
            all(agreements),
        ),
        Claim(
            f"max |analytic - MC| <= 0.10 across the curve (measured {max_gap:.3f})",
            max_gap <= 0.10,
        ),
        Claim(
            "both renderings agree the curve decays with L",
            analytic[0] > analytic[-1] and simulated[0] > simulated[-1],
        ),
    ]
    return FigureResult(
        figure_id="fig4a-mc",
        title="Fig. 4(a) one-to-one series re-drawn by Monte Carlo "
        "(N_T=0, N_C=6000)",
        x_label="L",
        x_values=list(MC_LAYERS),
        series={
            "analytical": analytic,
            "monte_carlo": simulated,
            "mc_ci_low": ci_low,
            "mc_ci_high": ci_high,
        },
        claims=claims,
        notes=f"{trials} deployments per point, 4 clients each; full "
        "attack execution, not the average-case formulas.",
    )
