"""The detection axis: closing the detect → traceback → repair loop.

Three figures exercise :mod:`repro.detection` end to end on a shared
reference scenario (the ``resilience_flooding`` deployment with a
delayed flood so the monitor sees a clean baseline):

``det-traceback`` — the headline loop comparison: delivery ratio per
flood phase with no repair, oracle-driven repair (ground-truth targets),
and detection-driven repair (only what the traffic monitor flagged).
The figure also evaluates packet-marking traceback on the phase-0 flood
and reports the packet budget at which ≥90% of the true attack paths
reconstruct.

``det-ppm`` — packets-needed-vs-accuracy curves for the probabilistic
marking scheme at two marking probabilities, in the spirit of
Barak-Pelleg et al. (arXiv:2304.05204): one simulated flood per
probability, the whole curve evaluated post-hoc from recorded
first-arrival packet indices.

``det-sweep`` — the detector operating curve: one simulated flood,
the CUSUM threshold swept post-hoc over the same recorded evidence.
Detection latency is *exactly* non-decreasing and the false-positive
count *exactly* non-increasing in the threshold (the statistic
trajectory does not depend on it), so the claims are structural.

All three accept ``fast=`` and run identically on either packet engine
(``repro-experiments --event-engine`` flips the default).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.detection.loop import DetectionRepairLoop, LoopResult
from repro.detection.marking import MarkCollector, MarkingConfig, build_attack_graph
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.detection.traceback import AttackGraphReconstructor
from repro.errors import DetectionError
from repro.experiments import config
from repro.experiments.result import (
    Claim,
    FigureResult,
    dominates,
    non_decreasing,
    non_increasing,
)
from repro.repair.policy import RepairPolicy
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import make_rng

#: Reference flooded scenario: the resilience-flooding deployment with
#: the flood switched on at t=5 so bins [2, 5) provide a clean baseline.
REFERENCE_SIM = PacketSimConfig(
    duration=16.0,
    warmup=2.0,
    clients=6,
    client_rate=2.0,
    flood_start=5.0,
)
REFERENCE_MONITOR = MonitorConfig(
    bin_width=0.5,
    method="cusum",
    threshold=8.0,
    drift=0.5,
    warmup_bins=4,
    baseline_bins=6,
)
REFERENCE_MARKING = MarkingConfig(
    probability=0.08, sources_per_target=2, path_depth=6
)
PPM_BUDGETS = (25, 50, 100, 200, 400, 800, 1600, 3200)
THRESHOLD_SWEEP = (2.0, 8.0, 32.0, 128.0, 512.0, 2048.0)


def _architecture() -> SOSArchitecture:
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
        sos_nodes=config.SOS_NODES,
        filters=config.FILTERS,
    )


def _flooded_run(
    seed: int,
    marking: Optional[MarkingConfig],
    monitor_config: MonitorConfig,
    fast: bool,
    flood_fraction: float = 0.5,
):
    """One reference flood: returns (monitor, collector, graph, report)."""
    seeds = np.random.SeedSequence(seed).spawn(3)
    deployment = SOSDeployment.deploy(_architecture(), rng=make_rng(seeds[0]))
    targets = flood_layer(deployment, 1, flood_fraction, rng=make_rng(seeds[1]))
    graph = None
    collector = None
    if marking is not None:
        graph = build_attack_graph(targets, marking)
        collector = MarkCollector(graph, marking)
    monitor = TrafficMonitor(monitor_config)
    simulation = PacketLevelSimulation(
        deployment,
        REFERENCE_SIM,
        rng=make_rng(seeds[2]),
        monitor=monitor,
        marking=collector,
    )
    report = simulation.run(flood_targets=targets, fast=fast)
    return monitor, collector, graph, targets, report


def det_traceback(
    trials: int = 2, seed: int = 101, fast: bool = True
) -> FigureResult:
    """Delivery per flood phase: no repair vs oracle vs detection-driven."""
    loop = DetectionRepairLoop(
        _architecture(),
        REFERENCE_SIM,
        REFERENCE_MONITOR,
        RepairPolicy(detection_probability=1.0),
        marking_config=REFERENCE_MARKING,
        seed=seed,
    )
    phases = 3
    series: Dict[str, List[float]] = {
        "no repair": [0.0] * phases,
        "oracle repair": [0.0] * phases,
        "detection-driven repair": [0.0] * phases,
    }
    label_of = {
        "none": "no repair",
        "oracle": "oracle repair",
        "detected": "detection-driven repair",
    }
    detected_runs: List[LoopResult] = []
    for offset in range(trials):
        for mode, label in label_of.items():
            run = DetectionRepairLoop(
                loop.architecture,
                loop.sim_config,
                loop.monitor_config,
                loop.policy,
                marking_config=loop.marking_config,
                seed=seed + offset,
            ).run(mode=mode, phases=phases, flood_fraction=0.5, fast=fast)
            for phase, value in enumerate(run.delivery_per_phase):
                series[label][phase] += value / trials
            if mode == "detected":
                detected_runs.append(run)

    # Traceback on the phase-0 flood of the first detection-driven run:
    # the packet budget reported below is the smallest per-victim budget
    # at which >= 90% of the true attack paths reconstruct.
    run0 = detected_runs[0]
    if run0.collector is None or run0.graph is None:
        raise DetectionError("loop was built with marking but kept no marks")
    reconstructor = AttackGraphReconstructor(run0.collector)
    full = reconstructor.evaluate(run0.graph)
    budget = full.packets_needed(0.9)
    recovery_at_budget = (
        reconstructor.evaluate(run0.graph, budget=budget).recovery_rate
        if budget is not None
        else 0.0
    )

    claims = [
        Claim(
            "oracle-driven repair dominates no repair in every phase",
            dominates(series["oracle repair"], series["no repair"], slack=0.02),
        ),
        Claim(
            "detection-driven repair recovers delivery above the "
            "no-repair level by the final phase",
            series["detection-driven repair"][-1]
            >= series["no repair"][-1] + 0.1,
        ),
        Claim(
            "detection-driven repair ends within 0.05 of the oracle "
            "(detection latency and false positives cost little here)",
            series["detection-driven repair"][-1]
            >= series["oracle repair"][-1] - 0.05,
        ),
        Claim(
            "traceback reconstructs >= 90% of true attack paths within "
            "the reported packet budget",
            budget is not None and recovery_at_budget >= 0.9,
        ),
    ]
    return FigureResult(
        figure_id="det-traceback",
        title="Delivery ratio per flood phase: repair driven by ground "
        "truth vs online detection",
        x_label="flood phase",
        x_values=list(range(phases)),
        series=series,
        claims=claims,
        notes=f"Mean over {trials} campaign seed(s); flood on 50% of layer "
        f"1 starting at t={REFERENCE_SIM.flood_start}, CUSUM monitor "
        f"(threshold {REFERENCE_MONITOR.threshold}), repair between "
        "phases re-keys flagged nodes. Traceback on the phase-0 flood "
        f"(marking p={REFERENCE_MARKING.probability}): "
        f"{full.recovery_rate:.0%} of {full.total_paths} paths recovered "
        f"from {full.packets_observed} flood packets; >= 90% reconstruct "
        f"within a per-victim budget of {budget} packets. "
        f"{'Vectorized fast' if fast else 'Event-driven'} engine.",
    )


def det_ppm(seed: int = 101, fast: bool = True) -> FigureResult:
    """Traceback accuracy vs per-victim packet budget, two marking rates."""
    series: Dict[str, List[float]] = {}
    probabilities = (0.03, 0.10)
    for probability in probabilities:
        marking = dataclasses.replace(REFERENCE_MARKING, probability=probability)
        _, collector, graph, _, _ = _flooded_run(
            seed, marking, REFERENCE_MONITOR, fast
        )
        if collector is None or graph is None:
            raise DetectionError("marking run produced no collector")
        reconstructor = AttackGraphReconstructor(collector)
        series[f"p = {probability}"] = reconstructor.accuracy_curve(
            graph, list(PPM_BUDGETS)
        )

    claims = [
        Claim(
            "accuracy is non-decreasing in the packet budget "
            "(larger budgets only add marks; exact, not statistical)",
            all(non_decreasing(curve, slack=0.0) for curve in series.values()),
        ),
        Claim(
            "the stronger marking rate reconstructs >= 90% of paths "
            "within the largest budget",
            series[f"p = {probabilities[1]}"][-1] >= 0.9,
        ),
        Claim(
            "at shallow paths the stronger marking rate needs no more "
            "packets than the weak one for full-budget accuracy",
            series[f"p = {probabilities[1]}"][-1]
            >= series[f"p = {probabilities[0]}"][-1] - 1e-9,
        ),
    ]
    return FigureResult(
        figure_id="det-ppm",
        title="Attack-path reconstruction accuracy vs per-victim packet "
        "budget (probabilistic packet marking)",
        x_label="per-victim packet budget",
        x_values=list(PPM_BUDGETS),
        series=series,
        claims=claims,
        notes="One reference flood per marking probability (same seed); "
        f"paths of depth {REFERENCE_MARKING.path_depth}, "
        f"{REFERENCE_MARKING.sources_per_target} sources per victim. "
        "Curves are evaluated post-hoc from recorded first-arrival "
        "packet indices, so every budget shares one simulation. "
        f"{'Vectorized fast' if fast else 'Event-driven'} engine.",
    )


def det_sweep(seed: int = 107, fast: bool = True) -> FigureResult:
    """Detection latency and false positives vs CUSUM threshold."""
    monitor, _, _, targets, _ = _flooded_run(
        seed, None, REFERENCE_MONITOR, fast
    )
    flooded = set(targets)
    # Any real detection happens by the drain horizon, strictly inside
    # duration + 1; undetected nodes are charged this cap so per-node
    # latency stays monotone in the threshold even for very late flags.
    latency_cap = (REFERENCE_SIM.duration + 1.0) - REFERENCE_SIM.flood_start
    latencies: List[float] = []
    false_positives: List[float] = []
    detected_all: List[bool] = []
    for threshold in THRESHOLD_SWEEP:
        tuned = dataclasses.replace(REFERENCE_MONITOR, threshold=threshold)
        per_node: List[float] = []
        for node_id in sorted(flooded):
            when = monitor.detection_time(node_id, config=tuned)
            if when is None:
                per_node.append(latency_cap)
            else:
                per_node.append(when - REFERENCE_SIM.flood_start)
        latencies.append(sum(per_node) / len(per_node))
        flagged = monitor.flagged_nodes(config=tuned)
        false_positives.append(
            float(sum(1 for node_id in flagged if node_id not in flooded))
        )
        detected_all.append(all(
            value < latency_cap for value in per_node
        ))

    claims = [
        Claim(
            "detection latency is non-decreasing in the threshold "
            "(exact: the CUSUM trajectory does not depend on it)",
            non_decreasing(latencies, slack=0.0),
        ),
        Claim(
            "the false-positive count is non-increasing in the "
            "threshold (exact)",
            non_increasing(false_positives, slack=0.0),
        ),
        Claim(
            "the lowest threshold detects every flooded node",
            detected_all[0],
        ),
    ]
    return FigureResult(
        figure_id="det-sweep",
        title="Detector operating curve: detection latency and false "
        "positives vs CUSUM threshold",
        x_label="CUSUM threshold (baseline sigmas)",
        x_values=list(THRESHOLD_SWEEP),
        series={
            "mean detection latency": latencies,
            "false positives": false_positives,
        },
        claims=claims,
        notes="One reference flood; thresholds evaluated post-hoc over "
        "the same recorded per-bin counters (a sweep costs one "
        f"simulation). Undetected nodes are charged the {latency_cap} "
        "latency cap. "
        f"{'Vectorized fast' if fast else 'Event-driven'} engine.",
    )
