"""The resilience axis: ``P_S`` under benign churn and slow detection.

The paper's engagement is a pure attacker-vs-architecture race; these
experiments add the third force real deployments face — benign node
churn — and the defender's imperfect view of it.

``res-churn`` sweeps the fraction of SOS nodes lost to benign crashes
under the paper's default one-burst and successive attacks. Crash sets
are nested across churn levels (same seed), so the reachability curves
are *exactly* monotone, not just statistically so, and the zero-churn
point reproduces the churn-free estimator bit-for-bit.

``res-detect`` sweeps the failure detector's timeout in a repair-enabled
campaign with continuous churn: the longer a failure goes undetected,
the longer the window where the attacker's damage and benign losses
accumulate unrepaired.

``res-flood`` drops to the packet level: it sweeps the fraction of the
first SOS layer under flooding attack and measures the delivered
fraction of legitimate traffic across independent deployments, using
the vectorized fast engine (:mod:`repro.perf.fastsim`) by default with
the event-driven simulator available as the oracle via ``fast=False``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, non_increasing
from repro.repair.policy import RepairPolicy
from repro.resilience.detector import DetectorConfig
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.simulation.monte_carlo import MonteCarloConfig, MonteCarloEstimator

CHURN_SWEEP = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
TIMEOUT_SWEEP = (0.0, 5.0, 10.0, 20.0, 40.0)
FLOOD_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)


def _architecture() -> SOSArchitecture:
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
        sos_nodes=config.SOS_NODES,
        filters=config.FILTERS,
    )


def resilience_churn(trials: int = 30, seed: int = 23) -> FigureResult:
    """``P_S`` (reachability) vs benign churn fraction, under both attacks."""
    architecture = _architecture()
    attacks = {
        "one-burst": OneBurstAttack(
            break_in_budget=100,
            congestion_budget=config.CONGESTION_BUDGET,
            break_in_success=config.BREAK_IN_SUCCESS,
        ),
        "successive": SuccessiveAttack(
            break_in_budget=config.BREAK_IN_BUDGET,
            congestion_budget=config.CONGESTION_BUDGET,
            break_in_success=config.BREAK_IN_SUCCESS,
            rounds=config.ROUNDS,
            prior_knowledge=config.PRIOR_KNOWLEDGE,
        ),
    }
    series: Dict[str, List[float]] = {}
    warnings: List[str] = []
    for label, attack in attacks.items():
        values = []
        for churn in CHURN_SWEEP:
            estimator = MonteCarloEstimator(
                MonteCarloConfig(
                    trials=trials,
                    clients_per_trial=4,
                    metric="reachability",
                    seed=seed,
                    churn_fraction=churn,
                )
            )
            estimate = estimator.estimate(architecture, attack)
            values.append(estimate.mean)
            if estimate.failed_trials:
                warnings.append(
                    f"{label} @ churn={churn}: {estimate.failed_trials} "
                    f"trial(s) failed and were excluded "
                    f"(coverage {estimate.coverage:.0%})"
                )
        series[label] = values

    positive_churn = {
        label: values[1:] for label, values in series.items()
    }
    claims = [
        Claim(
            "P_S is monotonically non-increasing in the churn fraction "
            "(nested crash sets, both attacks)",
            all(non_increasing(values) for values in positive_churn.values())
            and all(
                values[0] >= values[-1] - 1e-9 for values in series.values()
            ),
        ),
        Claim(
            "half the membership crashing degrades P_S below the "
            "churn-free level under the successive attack",
            series["successive"][-1] <= series["successive"][0],
        ),
        Claim(
            "benign churn alone never helps the defender "
            "(no curve rises above its churn-free starting point)",
            all(
                value <= values[0] + 1e-9
                for values in series.values()
                for value in values
            ),
        ),
    ]
    return FigureResult(
        figure_id="res-churn",
        title="P_S vs benign churn fraction under intelligent attacks "
        "(reachability, nested crash sets)",
        x_label="churn fraction",
        x_values=list(CHURN_SWEEP),
        series=series,
        claims=claims,
        notes=f"{trials} deployments per point; crashes are benign "
        "(pre-attack, no disclosure) and nested across churn levels, so "
        "monotonicity is structural, not statistical.",
        warnings=warnings,
    )


def resilience_detection(trials: int = 5, seed: int = 31) -> FigureResult:
    """Campaign-level ``P_S`` vs failure-detection timeout under churn."""
    architecture = _architecture()
    attack = SuccessiveAttack(
        break_in_budget=80,
        congestion_budget=300,
        break_in_success=config.BREAK_IN_SUCCESS,
        rounds=config.ROUNDS,
        prior_knowledge=config.PRIOR_KNOWLEDGE,
    )
    campaign_config = CampaignConfig(
        repair_interval=4.0, probes_per_sample=20, cooldown=40.0
    )
    plan = FaultPlan(crash_rate=0.5, mean_downtime=15.0)
    final: List[float] = []
    minimum: List[float] = []
    for timeout in TIMEOUT_SWEEP:
        finals = []
        minima = []
        for offset in range(trials):
            report = run_campaign(
                architecture,
                attack,
                RepairPolicy(detection_probability=1.0),
                campaign_config,
                seed=seed + offset,
                fault_plan=plan,
                detector_config=DetectorConfig(timeout=timeout),
                retry_policy=RetryPolicy(max_attempts_per_hop=3),
            )
            finals.append(report.final)
            minima.append(report.minimum)
        final.append(sum(finals) / len(finals))
        minimum.append(sum(minima) / len(minima))

    claims = [
        Claim(
            "instantaneous detection ends the engagement at least as "
            "healthy as the slowest detector",
            final[0] >= final[-1] - 0.05,
        ),
        Claim(
            "every timeout still leaves a visible damage trough "
            "(detection latency cannot prevent the attack, only shorten it)",
            all(value < 1.0 for value in minimum),
        ),
    ]
    return FigureResult(
        figure_id="res-detect",
        title="Campaign P_S vs failure-detection timeout "
        "(churn rate 0.5, repair every 4)",
        x_label="detection timeout",
        x_values=list(TIMEOUT_SWEEP),
        series={"final P_S": final, "min P_S": minimum},
        claims=claims,
        notes=f"Mean over {trials} campaign seeds; heartbeat detector "
        "feeds the repairing defender, bounded per-hop retry (3 attempts) "
        "on every probe.",
    )


def resilience_flooding(
    trials: int = 6,
    seed: int = 47,
    fast: bool = True,
    workers: int = 1,
) -> FigureResult:
    """Packet-level delivery ratio vs flooded fraction of the first layer.

    ``fast=True`` (default) runs the vectorized engine from
    :mod:`repro.perf.fastsim`; ``fast=False`` runs the event-driven
    oracle — both are statistically equivalent on matched seeds, so the
    claims below must pass either way.
    """
    from repro.perf.fastsim import mean_delivery_ratio, run_packet_replicas
    from repro.simulation.packet_sim import PacketSimConfig

    architecture = _architecture()
    sim_config = PacketSimConfig(
        duration=12.0, warmup=2.0, clients=6, client_rate=2.0
    )
    delivery: List[float] = []
    absorbed: List[float] = []
    for fraction in FLOOD_SWEEP:
        reports = run_packet_replicas(
            architecture,
            sim_config,
            replicas=trials,
            flood_layer_index=1 if fraction > 0 else None,
            flood_fraction=fraction if fraction > 0 else 1.0,
            seed=seed,
            workers=workers,
            fast=fast,
        )
        delivery.append(mean_delivery_ratio(reports))
        absorbed.append(
            sum(r.attack_packets_absorbed for r in reports) / len(reports)
        )

    claims = [
        Claim(
            "an un-flooded deployment delivers essentially all "
            "legitimate traffic",
            delivery[0] >= 0.99,
        ),
        Claim(
            "flooding the whole first layer collapses delivery to a "
            "small fraction of the un-flooded level",
            delivery[-1] <= 0.5 * delivery[0],
        ),
        Claim(
            "delivery degrades monotonically as more of the entry layer "
            "is flooded (up to replica noise)",
            non_increasing(delivery, slack=0.05),
        ),
    ]
    return FigureResult(
        figure_id="res-flood",
        title="Legitimate delivery ratio vs flooded fraction of the "
        "first SOS layer (packet-level)",
        x_label="flooded fraction of layer 1",
        x_values=list(FLOOD_SWEEP),
        series={"delivery ratio": delivery, "attack packets": absorbed},
        claims=claims,
        notes=f"{trials} independent deployments per point; "
        f"{'vectorized fast' if fast else 'event-driven'} engine, "
        "Poisson clients at rate 2 per unit time, flood rate 500 per "
        "target node.",
    )
