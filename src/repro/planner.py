"""Defense planning: from attacker intelligence to an operated posture.

Composes the library's layers into the question an operator actually has:
*given what we know about the attacker and our hardware, what should we
deploy, and how good must our monitoring be?*

1. :class:`repro.core.budget` converts attacker bandwidth and intrusion
   tempo into the model's ``N_C`` / ``N_T``;
2. :mod:`repro.core.design_space` picks the best architecture for that
   attack;
3. :func:`required_detection` inverts the §5 repair model: the minimum
   per-round detection probability whose repaired ``P_S`` reaches the
   operator's availability target (binary search over the monotone
   average-case model);
4. :func:`plan_defense` bundles it into a :class:`DefensePlan` report.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.budget import BreakInCampaign, CongestionCostModel
from repro.core.design_space import enumerate_designs, evaluate_designs
from repro.core.latency import latency_availability_tradeoff
from repro.core.model import evaluate
from repro.errors import ConfigurationError
from repro.repair.analysis import analyze_successive_with_repair


def required_detection(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    target_p_s: float,
    tolerance: float = 1e-4,
    final_scan: bool = False,
) -> Optional[float]:
    """Minimum per-round detection probability reaching ``target_p_s``.

    The target is evaluated at the attack's *peak*: the defender scans
    between break-in rounds, but the final congestion wave has just landed
    (``final_scan=False``). That is the moment availability is worst and
    the guarantee that matters; with ``final_scan=True`` the question
    becomes post-attack recovery, where perfect detection trivially
    restores everything.

    Uses the average-case repair model, which is monotone in the detection
    probability; binary search converges to ``tolerance``. Returns 0.0
    when no repair is needed, ``None`` when even perfect per-round
    detection cannot hold the target through the congestion wave.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> rho = required_detection(
    ...     SOSArchitecture(layers=4, mapping="one-to-two"),
    ...     SuccessiveAttack(), target_p_s=0.8)
    >>> 0.0 < rho < 1.0
    True
    """
    if not 0.0 <= target_p_s <= 1.0:
        raise ConfigurationError("target_p_s must be in [0, 1]")
    if not 0.0 < tolerance < 0.1:
        raise ConfigurationError("tolerance must be in (0, 0.1)")

    def repaired(rho: float) -> float:
        return analyze_successive_with_repair(
            architecture, attack, rho, final_scan=final_scan
        ).p_s

    if evaluate(architecture, attack).p_s >= target_p_s:
        return 0.0
    if repaired(1.0) < target_p_s:
        return None
    low, high = 0.0, 1.0
    while high - low > tolerance:
        mid = (low + high) / 2
        if repaired(mid) >= target_p_s:
            high = mid
        else:
            low = mid
    return high


@dataclasses.dataclass(frozen=True)
class DefensePlan:
    """The planner's recommendation and its supporting numbers."""

    attack: SuccessiveAttack
    architecture: SOSArchitecture
    unrepaired_p_s: float
    target_p_s: float
    required_detection: Optional[float]
    expected_latency: float
    baseline_latency: float

    @property
    def achievable(self) -> bool:
        """True when the availability target is reachable at all."""
        return self.required_detection is not None

    @property
    def needs_repair(self) -> bool:
        return self.achievable and self.required_detection > 0.0

    def summary(self) -> str:
        lines = [
            f"anticipated attack : N_T={self.attack.n_t:g} over "
            f"R={self.attack.rounds} rounds, N_C={self.attack.n_c:g}, "
            f"P_B={self.attack.p_b:g}, P_E={self.attack.p_e:g}",
            f"recommended design : {self.architecture.describe()}",
            f"P_S without repair : {self.unrepaired_p_s:.4f}",
            f"availability target: {self.target_p_s:.4f}",
        ]
        if not self.achievable:
            lines.append(
                "verdict            : UNACHIEVABLE even with perfect "
                "per-round repair; provision capacity or add nodes"
            )
        elif self.needs_repair:
            lines.append(
                f"verdict            : needs per-round detection >= "
                f"{self.required_detection:.3f}"
            )
        else:
            lines.append("verdict            : met without repair")
        lines.append(
            f"expected latency   : {self.expected_latency:.2f} hop-units "
            f"(baseline {self.baseline_latency:.2f})"
        )
        return "\n".join(lines)


def plan_defense(
    attacker_bandwidth: float,
    campaign: BreakInCampaign = BreakInCampaign(),
    cost_model: CongestionCostModel = CongestionCostModel(),
    target_p_s: float = 0.9,
    prior_knowledge: float = 0.2,
    rounds: int = 3,
    break_in_success: float = 0.5,
    layers: Sequence[int] = range(1, 9),
    total_overlay_nodes: int = 10_000,
    sos_nodes: int = 100,
    filters: int = 10,
) -> DefensePlan:
    """Produce a full defense plan from operational attacker estimates."""
    attack = SuccessiveAttack(
        break_in_budget=campaign.total_attempts,
        congestion_budget=cost_model.nodes_congestable(attacker_bandwidth),
        break_in_success=break_in_success,
        rounds=rounds,
        prior_knowledge=prior_knowledge,
    )
    designs = enumerate_designs(
        layers=layers,
        distributions=("even", "increasing"),
        total_overlay_nodes=total_overlay_nodes,
        sos_nodes=sos_nodes,
        filters=filters,
    )
    best = evaluate_designs(designs, {"anticipated": attack})[0]
    latency = latency_availability_tradeoff([best.architecture], attack)[0]
    return DefensePlan(
        attack=attack,
        architecture=best.architecture,
        unrepaired_p_s=best.aggregate,
        target_p_s=target_p_s,
        required_detection=required_detection(
            best.architecture, attack, target_p_s
        ),
        expected_latency=latency.expected_latency,
        baseline_latency=latency.baseline_latency,
    )
