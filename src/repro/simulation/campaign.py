"""Campaign simulation: the attack/repair race on a simulated clock.

The analytical model collapses the whole engagement into one number. This
module replays it in time: break-in rounds land at a configurable cadence,
the congestion phase fires when the break-in budget is spent, the defender
scans periodically, and a measurement process probes client success
throughout — producing the ``P_S(t)`` trajectory of the engagement.

Built on :class:`~repro.simulation.engine.EventScheduler`; attack rounds
reuse the exact Algorithm 1 case logic via
:class:`~repro.attacks.strategies.SuccessiveStrategy` internals (one round
per event), so the campaign's endpoint matches the one-shot executable
attack.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.attacks.knowledge import AttackerKnowledge
from repro.attacks.strategies import (
    _attempt_break_ins,
    _congestion_phase,
    _random_break_in_pool,
    _sample,
)
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.errors import SimulationError
from repro.perf.compiled import get_kernels, resolve_tier
from repro.repair.defender import RepairingDefender
from repro.repair.policy import NO_REPAIR, RepairPolicy
from repro.resilience.detector import DetectorConfig, FailureDetector
from repro.resilience.faults import ZERO_CHURN, FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.simulation.engine import EventScheduler
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedLike, SeedSequenceFactory


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """Timing of the engagement."""

    round_interval: float = 10.0  # time between break-in rounds
    repair_interval: float = 4.0  # time between defender scans
    probe_interval: float = 1.0  # time between P_S measurements
    probes_per_sample: int = 25  # client attempts per measurement
    cooldown: float = 30.0  # observation time after the congestion phase

    def __post_init__(self) -> None:
        for name in ("round_interval", "repair_interval", "probe_interval"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be > 0")
        if self.probes_per_sample < 1:
            raise SimulationError("probes_per_sample must be >= 1")
        if self.cooldown < 0:
            raise SimulationError("cooldown must be >= 0")


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Time series produced by one campaign run.

    ``crashes_injected`` / ``benign_recoveries`` count fault-injector
    activity (0 without churn); ``false_alarms`` counts healthy nodes the
    failure detector flagged (0 without a detector). ``p_s_mean`` /
    ``p_s_variance`` summarize the measured ``P_S`` series with a
    streaming Welford fold (empty series: 1.0 / 0.0); the fold is
    bit-identical across tiers.
    """

    times: Tuple[float, ...]
    p_s: Tuple[float, ...]
    round_times: Tuple[float, ...]
    congestion_time: float
    repairs_total: int
    crashes_injected: int = 0
    benign_recoveries: int = 0
    false_alarms: int = 0
    p_s_mean: float = 1.0
    p_s_variance: float = 0.0

    def p_s_at(self, time: float) -> float:
        """The last measured ``P_S`` at or before ``time``."""
        value = 1.0
        for t, p in zip(self.times, self.p_s):
            if t > time:
                break
            value = p
        return value

    @property
    def minimum(self) -> float:
        return min(self.p_s) if self.p_s else 1.0

    @property
    def final(self) -> float:
        return self.p_s[-1] if self.p_s else 1.0


class CampaignSimulation:
    """One engagement: successive attack vs periodic repair, over time."""

    def __init__(
        self,
        architecture: SOSArchitecture,
        attack: SuccessiveAttack,
        repair_policy: RepairPolicy = NO_REPAIR,
        config: CampaignConfig = CampaignConfig(),
        seed: SeedLike = None,
        fault_plan: FaultPlan = ZERO_CHURN,
        detector_config: Optional[DetectorConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tier: str = "scalar",
    ) -> None:
        self.architecture = architecture
        self.attack = attack
        self.config = config
        self.tier = resolve_tier(tier)
        factory = SeedSequenceFactory(seed)
        self._rng = factory.generator()
        self.deployment = SOSDeployment.deploy(architecture, rng=factory.generator())
        self.protocol = SOSProtocol(self.deployment)
        defender_rng = factory.generator()
        self.scheduler = EventScheduler()
        # Resilience streams are spawned after the seed's three, so runs
        # without churn/detector stay bit-identical to the seed.
        self.injector = FaultInjector(
            fault_plan, self.deployment, self.scheduler, rng=factory.generator()
        )
        self.detector = (
            FailureDetector(detector_config, rng=factory.generator())
            if detector_config is not None
            else None
        )
        self.retry_policy = retry_policy
        self.defender = RepairingDefender(
            repair_policy, rng=defender_rng, detector=self.detector
        )
        self.knowledge = AttackerKnowledge()

        self._budget = int(round(attack.n_t))
        self._quotas = [
            (self._budget * j) // attack.rounds
            - (self._budget * (j - 1)) // attack.rounds
            for j in range(1, attack.rounds + 1)
        ]
        self._round_index = 0
        self._round_times: List[float] = []
        self._congestion_time: float = float("nan")
        self._times: List[float] = []
        self._ps: List[float] = []
        self._done_attacking = False

    # ------------------------------------------------------------------
    # Attack process (Algorithm 1, one round per event)
    # ------------------------------------------------------------------
    def _prior_knowledge_phase(self) -> None:
        first_layer = self.deployment.layer_members(1)
        count = int(round(self.attack.p_e * len(first_layer)))
        self.knowledge.learn_prior(_sample(self._rng, first_layer, count))

    def _attack_round(self) -> None:
        if self._done_attacking:
            return
        self._round_index += 1
        self._round_times.append(self.scheduler.now)
        known = sorted(self.knowledge.known_unattacked)
        quota = self._quotas[self._round_index - 1]
        stop = False
        if len(known) >= self._budget:
            attacked = _sample(self._rng, known, self._budget)
            self.knowledge.forfeit(set(known) - set(attacked))
            _attempt_break_ins(
                self.deployment, self.knowledge, attacked, self.attack.p_b, self._rng
            )
            self._budget = 0
            stop = True
        elif self._budget <= quota:
            extra = _sample(
                self._rng,
                _random_break_in_pool(self.deployment, self.knowledge),
                self._budget - len(known),
            )
            _attempt_break_ins(
                self.deployment, self.knowledge, known + extra,
                self.attack.p_b, self._rng,
            )
            self._budget = 0
            stop = True
        elif len(known) >= quota:
            _attempt_break_ins(
                self.deployment, self.knowledge, known, self.attack.p_b, self._rng
            )
            self._budget -= len(known)
        else:
            extra = _sample(
                self._rng,
                _random_break_in_pool(self.deployment, self.knowledge),
                quota - len(known),
            )
            _attempt_break_ins(
                self.deployment, self.knowledge, known + extra,
                self.attack.p_b, self._rng,
            )
            self._budget -= quota

        if stop or self._budget <= 0 or self._round_index >= self.attack.rounds:
            self._done_attacking = True
            self.scheduler.schedule_after(
                self.config.round_interval, self._congestion_phase_event
            )
        else:
            self.scheduler.schedule_after(
                self.config.round_interval, self._attack_round
            )

    def _congestion_phase_event(self) -> None:
        self._congestion_time = self.scheduler.now
        _congestion_phase(
            self.deployment,
            self.knowledge,
            int(round(self.attack.n_c)),
            self._rng,
        )

    # ------------------------------------------------------------------
    # Defender and measurement processes
    # ------------------------------------------------------------------
    def _repair_scan(self, horizon: float) -> None:
        self.defender.scan_and_repair(
            self.deployment, self.knowledge, now=self.scheduler.now
        )
        if self.scheduler.now + self.config.repair_interval <= horizon:
            self.scheduler.schedule_after(
                self.config.repair_interval, lambda: self._repair_scan(horizon)
            )

    def _probe(self, horizon: float) -> None:
        hits = 0
        for _ in range(self.config.probes_per_sample):
            contacts = self.deployment.sample_client_contacts(self._rng)
            receipt = self.protocol.send(
                "probe",
                "target",
                contacts=contacts,
                rng=self._rng,
                retry_policy=self.retry_policy,
            )
            hits += int(receipt.delivered)
        self._times.append(self.scheduler.now)
        self._ps.append(hits / self.config.probes_per_sample)
        if self.scheduler.now + self.config.probe_interval <= horizon:
            self.scheduler.schedule_after(
                self.config.probe_interval, lambda: self._probe(horizon)
            )

    def _fold_p_s(self) -> Tuple[float, float]:
        """Welford mean/variance of the ``P_S`` series at ``self.tier``.

        The scalar loop performs the exact float operations of the
        compiled kernel in the same order, so the two tiers agree bit
        for bit.
        """
        if not self._ps:
            return 1.0, 0.0
        values = np.asarray(self._ps, dtype=np.float64)
        kernels = get_kernels(self.tier)
        if kernels is not None:
            count, mean, m2, _ = kernels.welford(
                values, 0, 0.0, 0.0, float("-inf")
            )
        else:
            count, mean, m2 = 0, 0.0, 0.0
            for value in values.tolist():
                delta = value - mean
                count += 1
                mean += delta / float(count)
                m2 += delta * (value - mean)
        return mean, m2 / float(count)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Execute the engagement; returns the measured trajectory."""
        horizon = (
            self.config.round_interval * (self.attack.rounds + 1)
            + self.config.cooldown
        )
        self._prior_knowledge_phase()
        self.scheduler.schedule_at(0.0, lambda: self._probe(horizon))
        self.scheduler.schedule_after(self.config.round_interval, self._attack_round)
        if not self.defender.policy.is_noop:
            self.scheduler.schedule_after(
                self.config.repair_interval, lambda: self._repair_scan(horizon)
            )
        self.injector.install(horizon)
        self.scheduler.run(until=horizon)
        p_s_mean, p_s_variance = self._fold_p_s()
        return CampaignReport(
            times=tuple(self._times),
            p_s=tuple(self._ps),
            round_times=tuple(self._round_times),
            congestion_time=self._congestion_time,
            repairs_total=self.defender.total_repaired,
            crashes_injected=self.injector.crashes_injected,
            benign_recoveries=self.injector.recoveries,
            false_alarms=(
                self.detector.false_alarms if self.detector is not None else 0
            ),
            p_s_mean=p_s_mean,
            p_s_variance=p_s_variance,
        )


def run_campaign(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    repair_policy: RepairPolicy = NO_REPAIR,
    config: CampaignConfig = CampaignConfig(),
    seed: Optional[int] = None,
    fault_plan: FaultPlan = ZERO_CHURN,
    detector_config: Optional[DetectorConfig] = None,
    retry_policy: Optional[RetryPolicy] = None,
    tier: str = "scalar",
) -> CampaignReport:
    """Convenience wrapper: build and run one :class:`CampaignSimulation`."""
    return CampaignSimulation(
        architecture,
        attack,
        repair_policy,
        config,
        seed,
        fault_plan=fault_plan,
        detector_config=detector_config,
        retry_policy=retry_policy,
        tier=tier,
    ).run()
