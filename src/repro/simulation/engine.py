"""A minimal discrete-event simulation engine.

The packet-level simulation (:mod:`repro.simulation.packet_sim`) needs an
ordered event loop with deterministic tie-breaking; this module provides
exactly that and nothing more: schedule callables at absolute or relative
times, run until a horizon, and inspect the clock.

Events scheduled at the same timestamp execute in scheduling order
(FIFO), which keeps seeded simulations bit-for-bit reproducible.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

Action = Callable[[], Any]


@dataclasses.dataclass(frozen=True, order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    action: Action = dataclasses.field(compare=False)
    cancelled: bool = dataclasses.field(compare=False, default=False)

    def cancel(self) -> None:
        """Tombstone the event; the loop skips it without executing.

        The dataclass is frozen so heap ordering stays immutable; the
        tombstone is the one field the loop is allowed to flip.
        """
        object.__setattr__(self, "cancelled", True)


class EventScheduler:
    """Priority-queue event loop with a monotonically advancing clock.

    Examples
    --------
    >>> scheduler = EventScheduler()
    >>> log = []
    >>> _ = scheduler.schedule_at(2.0, lambda: log.append("b"))
    >>> _ = scheduler.schedule_at(1.0, lambda: log.append("a"))
    >>> scheduler.run()
    >>> log
    ['a', 'b']
    """

    #: Queues shorter than this are never compacted — rebuilding a
    #: handful of entries costs more than the tombstones it reclaims.
    COMPACTION_MIN_QUEUE = 64

    def __init__(self) -> None:
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._tombstones = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def queued(self) -> int:
        """Raw heap size, cancelled tombstones included."""
        return len(self._queue)

    @property
    def tombstones(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._tombstones

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, action: Action) -> _ScheduledEvent:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = _ScheduledEvent(time=time, sequence=next(self._sequence), action=action)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, action: Action) -> _ScheduledEvent:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, action)

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a scheduled event; the loop will skip it.

        Cancelling an already-executed or already-cancelled event is a
        no-op, so races between a cancel and the event firing are benign
        (the fault injector cancels pending recover events when a node
        crashes again before its scheduled recovery).

        Tombstoned events used to sit in the heap until popped; a
        cancel-heavy workload (churn injection under frequent
        re-crashes) could grow the queue without bound. The heap is now
        compacted whenever tombstones outnumber live events.
        """
        if not event.cancelled:
            event.cancel()
            self._tombstones += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap without tombstones once they dominate it.

        Triggered when more than half the queue is cancelled (and the
        queue is big enough to be worth the O(n) rebuild), keeping heap
        memory proportional to *live* events.
        """
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._tombstones > len(self._queue) // 2
        ):
            self._queue = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._tombstones = 0

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Drain the queue, stopping at time ``until`` if given.

        ``max_events`` guards against runaway self-rescheduling loops.
        Cancelled events are discarded without executing and without
        advancing the clock.
        """
        executed = 0
        while self._queue:
            if self._queue[0].cancelled:
                heapq.heappop(self._queue)
                self._tombstones = max(0, self._tombstones - 1)
                continue
            if until is not None and self._queue[0].time > until:
                break
            event = heapq.heappop(self._queue)
            self._now = event.time
            event.action()
            self._processed += 1
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway event loop?"
                )
        if until is not None and self._now < until:
            self._now = until

    def step(self) -> bool:
        """Execute exactly one event; returns False when the queue is empty.

        Cancelled events are silently discarded on the way to the next
        live event.
        """
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._tombstones = max(0, self._tombstones - 1)
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        event.action()
        self._processed += 1
        return True
