"""Statistical containers for simulation estimates."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Tuple

from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class PsEstimate:
    """A Monte Carlo estimate of the path-availability probability ``P_S``.

    Attributes
    ----------
    mean:
        Sample mean of per-trial success indicators (or fractions).
    variance:
        Sample variance (unbiased) of the per-trial values.
    trials:
        Number of independent trials that completed.
    mean_bad_per_layer:
        Average bad-node count per layer across trials, comparable to the
        analytical ``s_i``.
    failed_trials:
        Trials that raised and were isolated rather than aborting the
        campaign; they contribute nothing to the aggregates, so a nonzero
        count means degraded coverage.
    """

    mean: float
    variance: float
    trials: int
    mean_bad_per_layer: Dict[int, float] = dataclasses.field(default_factory=dict)
    failed_trials: int = 0

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SimulationError("an estimate needs at least one trial")
        if not 0.0 <= self.mean <= 1.0:
            raise SimulationError(f"P_S estimate out of range: {self.mean}")
        if self.variance < 0:
            raise SimulationError(f"negative variance: {self.variance}")
        if self.failed_trials < 0:
            raise SimulationError(
                f"negative failed_trials: {self.failed_trials}"
            )

    @property
    def coverage(self) -> float:
        """Fraction of attempted trials that completed."""
        return self.trials / (self.trials + self.failed_trials)

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        return math.sqrt(self.variance / self.trials)

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval, clipped to [0,1]."""
        half = 1.96 * self.std_error
        return (max(0.0, self.mean - half), min(1.0, self.mean + half))

    def agrees_with(self, analytical: float, tolerance: float = 0.05) -> bool:
        """True when ``analytical`` lies within the CI widened by ``tolerance``.

        The analytical model is an average-case approximation, not the exact
        expectation, so validation allows a modeling-error margin on top of
        the sampling error.
        """
        lo, hi = self.ci95
        return lo - tolerance <= analytical <= hi + tolerance


def summarize_indicators(values, bad_counts=None, failed_trials=0) -> PsEstimate:
    """Build a :class:`PsEstimate` from per-trial success values.

    ``values`` are per-trial success fractions in ``[0, 1]``;
    ``bad_counts`` is an optional iterable of per-trial ``{layer: bad}``
    dictionaries averaged into ``mean_bad_per_layer``; ``failed_trials``
    counts trials that errored and were excluded.
    """
    values = list(values)
    if not values:
        raise SimulationError("no trials to summarize")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    mean_bad: Dict[int, float] = {}
    if bad_counts:
        totals: Dict[int, float] = {}
        count = 0
        for per_layer in bad_counts:
            count += 1
            for layer, bad in per_layer.items():
                totals[layer] = totals.get(layer, 0.0) + bad
        if count:
            mean_bad = {layer: total / count for layer, total in totals.items()}
    return PsEstimate(
        mean=mean,
        variance=variance,
        trials=n,
        mean_bad_per_layer=mean_bad,
        failed_trials=failed_trials,
    )
