"""Node capacity and congestion dynamics for the packet-level simulation.

The paper's congestion attack floods a node with traffic until it "becomes
non functional" (§2) — it still refuses to *forward* attack traffic (hop
verification drops it), but the flood exhausts its processing capacity so
legitimate packets are lost too. :class:`NodeCapacity` models this with a
token bucket: each node processes at most ``capacity`` packets per unit
time; sustained arrivals beyond that overflow the queue and are dropped,
and a node whose drop rate stays above ``congestion_threshold`` over a
window is flagged congested — the packet-level analogue of the analytical
model's binary congested state.
"""

from __future__ import annotations

import dataclasses

from repro.errors import SimulationError


@dataclasses.dataclass
class NodeCapacity:
    """Token-bucket processing capacity for one node.

    Parameters
    ----------
    capacity:
        Packets processed per unit time (token refill rate).
    burst:
        Maximum tokens accumulated while idle (queue headroom).
    congestion_threshold:
        Fraction of dropped packets over the observation window above which
        the node is considered congested.
    """

    capacity: float = 100.0
    burst: float = 200.0
    congestion_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {self.capacity}")
        if self.burst < self.capacity:
            raise SimulationError("burst must be >= capacity")
        if not 0.0 < self.congestion_threshold <= 1.0:
            raise SimulationError("congestion_threshold must be in (0, 1]")
        self._tokens = self.burst
        self._last_refill = 0.0
        self._accepted = 0
        self._dropped = 0

    # ------------------------------------------------------------------
    # Token bucket
    # ------------------------------------------------------------------
    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise SimulationError("time moved backwards in capacity model")
        elapsed = now - self._last_refill
        self._tokens = min(self.burst, self._tokens + elapsed * self.capacity)
        self._last_refill = now

    def offer(self, now: float, packets: float = 1.0) -> bool:
        """Offer ``packets`` units of work at time ``now``.

        Returns True when accepted (tokens available), False when dropped.
        """
        self._refill(now)
        if self._tokens >= packets:
            self._tokens -= packets
            self._accepted += 1
            return True
        self._dropped += 1
        return False

    # ------------------------------------------------------------------
    # Congestion observation
    # ------------------------------------------------------------------
    @property
    def accepted(self) -> int:
        return self._accepted

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def drop_rate(self) -> float:
        total = self._accepted + self._dropped
        return 0.0 if total == 0 else self._dropped / total

    @property
    def is_congested(self) -> bool:
        """True when the observed drop rate exceeds the threshold."""
        return (
            self._accepted + self._dropped >= 10
            and self.drop_rate >= self.congestion_threshold
        )

    def reset_window(self) -> None:
        """Start a fresh observation window (keeps the token state)."""
        self._accepted = 0
        self._dropped = 0
