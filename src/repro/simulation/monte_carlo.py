"""Monte Carlo estimation of ``P_S`` on concrete deployments.

Each trial deploys a fresh generalized-SOS instance (new role assignment
and neighbor tables) over a reusable overlay population, executes the
intelligent attack with :class:`~repro.attacks.IntelligentAttacker`, and
then measures client success. Averaging over trials yields an unbiased
estimate of the true ``P_S`` under the exact attack semantics — the
cross-check for the paper's average-case analytical approximation.

Two success metrics are supported (see :mod:`repro.sos.protocol`):

* ``"forward"`` — per-hop retry forwarding, the semantics Eq. (1) prices;
* ``"reachability"`` — existence of any all-good path (upper bound).

Trials are embarrassingly parallel: every trial draws from its own
:class:`~numpy.random.SeedSequence` stream, pre-spawned in the parent in
trial order, so dispatching chunks of trials over a
:class:`~concurrent.futures.ProcessPoolExecutor`
(``MonteCarloConfig.workers``) yields aggregates **bit-identical** to the
serial path regardless of worker count or completion order. See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import dataclasses
import math
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.attacks.attacker import IntelligentAttacker
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import CampaignInterrupted, SimulationError
from repro.overlay.network import OverlayNetwork
from repro.resilience.checkpoint import CampaignCheckpoint, fingerprint
from repro.simulation.results import PsEstimate, summarize_indicators
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedSequenceFactory, make_rng

Attack = Union[OneBurstAttack, SuccessiveAttack]

#: ``(trial_index, success, per_layer_bad, error)`` — exactly one of the
#: result pair / error string is populated.
TrialOutcome = Tuple[int, Optional[float], Optional[Dict[int, int]], Optional[str]]

#: ``(trial_index, trial_seed)`` jobs handed to the execution paths.
TrialJob = Tuple[int, np.random.SeedSequence]


@dataclasses.dataclass(frozen=True)
class MonteCarloConfig:
    """Tuning knobs for the estimator.

    ``churn_fraction`` crashes that fraction of the SOS membership
    (benignly, before the attack) in every trial; the crash sets are
    *nested* across churn levels under a fixed seed, so per-trial
    reachability is monotone in the fraction. ``error_isolation`` records
    a failing trial instead of aborting the whole campaign;
    ``checkpoint_path`` persists per-trial results as JSON so an
    interrupted campaign resumes — with per-trial RNG streams, resumption
    is bit-identical to an uninterrupted run with the same seed.

    ``workers`` dispatches trials over a process pool (``0`` means "all
    cores"); results are bit-identical to ``workers=1`` because every
    trial's RNG stream is pre-spawned in the parent. ``chunk_size``
    overrides the trials-per-task batching (default: enough chunks for
    ~4 tasks per worker). ``checkpoint_every`` batches checkpoint writes
    so a long campaign is not O(trials²) in checkpoint I/O; the
    checkpoint always flushes on completion or on an interrupting
    exception, and each write is atomic (temp file + ``os.replace``).
    """

    trials: int = 200
    clients_per_trial: int = 5
    metric: str = "forward"  # or "reachability"
    seed: Optional[int] = None
    churn_fraction: float = 0.0
    error_isolation: bool = True
    checkpoint_path: Optional[str] = None
    workers: int = 1
    chunk_size: Optional[int] = None
    checkpoint_every: int = 32

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SimulationError("trials must be >= 1")
        if self.clients_per_trial < 1:
            raise SimulationError("clients_per_trial must be >= 1")
        if self.metric not in ("forward", "reachability"):
            raise SimulationError(
                f"metric must be 'forward' or 'reachability', got {self.metric!r}"
            )
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise SimulationError(
                f"churn_fraction must be in [0, 1], got {self.churn_fraction}"
            )
        if self.workers < 0:
            raise SimulationError(
                f"workers must be >= 0 (0 means all cores), got {self.workers}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SimulationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.checkpoint_every < 1:
            raise SimulationError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )

    @property
    def resolved_workers(self) -> int:
        """Worker-process count with ``0`` resolved to the core count."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return self.workers


# ----------------------------------------------------------------------
# Trial execution — module-level so worker processes can run it.
# ----------------------------------------------------------------------


def _run_trial(
    architecture: SOSArchitecture,
    attack: Attack,
    config: MonteCarloConfig,
    network: OverlayNetwork,
    attacker: Any,
    rng: np.random.Generator,
) -> Tuple[float, Dict[int, int]]:
    """Deploy, attack, and measure one trial on its own RNG stream."""
    deployment = SOSDeployment.deploy(architecture, network=network, rng=rng)
    _inject_churn(config, deployment, rng)
    attacker.execute(deployment, attack, rng=rng)
    success = _client_success(config, deployment, rng)
    return success, deployment.bad_counts()


def _inject_churn(
    config: MonteCarloConfig, deployment: SOSDeployment, rng: np.random.Generator
) -> None:
    """Benignly crash a nested fraction of the SOS membership.

    A full permutation is drawn whenever churn is enabled, so runs
    differing only in ``churn_fraction`` consume identical RNG draws
    and crash *nested* node sets — that is what makes ``P_S``
    monotone in the churn level under a fixed seed.
    """
    if config.churn_fraction <= 0.0:
        return
    members = deployment.sos_member_ids()
    order = rng.permutation(len(members))
    count = int(round(config.churn_fraction * len(members)))
    for index in order[:count]:
        deployment.resolve(members[int(index)]).crash()


def _client_success(
    config: MonteCarloConfig, deployment: SOSDeployment, rng: np.random.Generator
) -> float:
    """Fraction of sampled clients that reach the target this trial."""
    protocol = SOSProtocol(deployment)
    hits = 0
    for _ in range(config.clients_per_trial):
        contacts = deployment.sample_client_contacts(rng)
        if config.metric == "forward":
            receipt = protocol.send(
                "mc-client", "mc-target", contacts=contacts, rng=rng
            )
            hits += int(receipt.delivered)
        else:
            hits += int(protocol.path_exists(contacts))
    return hits / config.clients_per_trial


#: Per-worker-process state installed by :func:`_init_worker`. The overlay
#: population is rebuilt once per worker from the campaign's network seed,
#: so every worker sees the identical structure the serial path builds.
_WORKER_STATE: Dict[str, Any] = {}


def _init_worker(
    architecture: SOSArchitecture,
    attack: Attack,
    config: MonteCarloConfig,
    network_seed: np.random.SeedSequence,
    attacker: Any,
) -> None:
    _WORKER_STATE["architecture"] = architecture
    _WORKER_STATE["attack"] = attack
    _WORKER_STATE["config"] = config
    _WORKER_STATE["attacker"] = attacker
    _WORKER_STATE["network"] = OverlayNetwork(
        architecture.total_overlay_nodes, rng=make_rng(network_seed)
    )


def _run_trial_chunk(jobs: List[TrialJob]) -> List[TrialOutcome]:
    """Run a chunk of trials inside a worker process.

    With error isolation on, a failing trial becomes an error outcome;
    with it off, the original exception propagates through the future
    and aborts the campaign exactly like the serial path.
    """
    architecture = _WORKER_STATE["architecture"]
    attack = _WORKER_STATE["attack"]
    config: MonteCarloConfig = _WORKER_STATE["config"]
    network = _WORKER_STATE["network"]
    attacker = _WORKER_STATE["attacker"]
    outcomes: List[TrialOutcome] = []
    for trial, seed in jobs:
        rng = make_rng(seed)
        try:
            success, per_layer_bad = _run_trial(
                architecture, attack, config, network, attacker, rng
            )
        except Exception as exc:  # noqa: BLE001 — per-trial isolation
            if not config.error_isolation:
                raise
            outcomes.append((trial, None, None, f"{type(exc).__name__}: {exc}"))
            continue
        outcomes.append((trial, success, per_layer_bad, None))
    return outcomes


class MonteCarloEstimator:
    """Estimates ``P_S`` by repeated deployment + attack + routing."""

    def __init__(self, config: MonteCarloConfig = MonteCarloConfig()) -> None:
        self.config = config
        self._attacker = IntelligentAttacker()
        #: ``(trial_index, error)`` pairs isolated during the last estimate.
        self.last_failures: List[Tuple[int, str]] = []

    def _checkpoint_for(
        self, architecture: SOSArchitecture, attack: Attack
    ) -> Optional[CampaignCheckpoint]:
        if self.config.checkpoint_path is None:
            return None
        # Execution knobs (workers, chunking, checkpoint cadence) stay out
        # of the fingerprint: a checkpoint resumes under any of them.
        payload = {
            "architecture": repr(architecture),
            "attack": repr(attack),
            "trials": self.config.trials,
            "clients_per_trial": self.config.clients_per_trial,
            "metric": self.config.metric,
            "seed": self.config.seed,
            "churn_fraction": self.config.churn_fraction,
        }
        return CampaignCheckpoint.load_or_create(
            self.config.checkpoint_path, fingerprint(payload)
        )

    def estimate(
        self,
        architecture: SOSArchitecture,
        attack: Attack,
        abort_check: Optional[Callable[[], bool]] = None,
    ) -> PsEstimate:
        """Run the configured number of trials and summarize.

        Failing trials are isolated (recorded, excluded from aggregates)
        rather than fatal; with a checkpoint, completed trials are loaded
        instead of re-run and previously *failed* trials are retried on
        their original RNG streams. With ``workers > 1`` pending trials
        are dispatched over a process pool; because trial streams are
        pre-spawned here in trial order and results are aggregated in
        trial order, the estimate is bit-identical to the serial path.

        ``abort_check`` makes the campaign cooperatively cancellable: it
        is polled between trials (serial) or completed chunks (parallel),
        and when it returns True the run flushes every completed trial to
        the checkpoint and raises
        :class:`~repro.errors.CampaignInterrupted`. A later ``estimate``
        with the same checkpoint resumes the remaining trials on their
        original RNG streams, so the final aggregates stay bit-identical
        to an uninterrupted run.
        """
        config = self.config
        factory = SeedSequenceFactory(config.seed)
        # Stream 0 seeds the reusable overlay population; streams 1..T are
        # the per-trial streams, spawned unconditionally and in order so
        # that skipped (checkpointed) trials leave later streams unchanged
        # and every worker replays exactly the serial draws.
        network_seed = factory.spawn()
        trial_seeds = [factory.spawn() for _ in range(config.trials)]

        checkpoint = self._checkpoint_for(architecture, attack)
        results: Dict[int, Tuple[float, Dict[int, int]]] = {}
        pending: List[TrialJob] = []
        for trial in range(config.trials):
            record = checkpoint.completed(trial) if checkpoint is not None else None
            if record is not None:
                results[trial] = (
                    float(record["p"]),
                    {int(layer): count for layer, count in record["bad"].items()},
                )
            else:
                pending.append((trial, trial_seeds[trial]))

        self.last_failures = []
        dirty = 0
        try:
            if pending:
                if config.resolved_workers > 1:
                    outcomes = self._run_parallel(
                        architecture, attack, network_seed, pending, abort_check
                    )
                else:
                    outcomes = self._run_serial(
                        architecture, attack, network_seed, pending, abort_check
                    )
                for trial, success, per_layer_bad, error in outcomes:
                    if error is not None or success is None or per_layer_bad is None:
                        self.last_failures.append((trial, error or "unknown error"))
                        if checkpoint is not None:
                            checkpoint.record_failure(trial, error or "unknown error")
                            dirty += 1
                    else:
                        results[trial] = (success, per_layer_bad)
                        if checkpoint is not None:
                            checkpoint.record_success(trial, success, per_layer_bad)
                            dirty += 1
                    if checkpoint is not None and dirty >= config.checkpoint_every:
                        checkpoint.save()
                        dirty = 0
        finally:
            # Flush the tail batch — also on an interrupting exception, so
            # a killed campaign never loses more than the in-flight batch.
            if checkpoint is not None and dirty > 0:
                checkpoint.save()

        # Parallel chunks complete out of order; sorting restores trial
        # order so the aggregation consumes values exactly like serial.
        self.last_failures.sort()
        if not results:
            raise SimulationError(
                f"all {config.trials} trials failed; first error: "
                f"{self.last_failures[0][1]}"
            )
        ordered = sorted(results)
        return summarize_indicators(
            [results[trial][0] for trial in ordered],
            [results[trial][1] for trial in ordered],
            failed_trials=len(self.last_failures),
        )

    def _run_serial(
        self,
        architecture: SOSArchitecture,
        attack: Attack,
        network_seed: np.random.SeedSequence,
        jobs: List[TrialJob],
        abort_check: Optional[Callable[[], bool]] = None,
    ) -> Iterator[TrialOutcome]:
        """Run pending trials in-process, yielding outcomes in order."""
        # One overlay population reused across trials; deploy() rewires
        # roles and neighbor tables per trial, so trials stay independent
        # in everything the model cares about.
        network = OverlayNetwork(
            architecture.total_overlay_nodes, rng=make_rng(network_seed)
        )
        for trial, seed in jobs:
            if abort_check is not None and abort_check():
                raise CampaignInterrupted(
                    f"campaign aborted before trial {trial} "
                    f"({len(jobs)} were pending); completed trials are "
                    "checkpointed and resumable"
                )
            rng = make_rng(seed)
            try:
                success, per_layer_bad = _run_trial(
                    architecture, attack, self.config, network, self._attacker, rng
                )
            except Exception as exc:  # noqa: BLE001 — per-trial isolation
                if not self.config.error_isolation:
                    raise
                yield trial, None, None, f"{type(exc).__name__}: {exc}"
                continue
            yield trial, success, per_layer_bad, None

    def _run_parallel(
        self,
        architecture: SOSArchitecture,
        attack: Attack,
        network_seed: np.random.SeedSequence,
        jobs: List[TrialJob],
        abort_check: Optional[Callable[[], bool]] = None,
    ) -> Iterator[TrialOutcome]:
        """Dispatch pending trials over a process pool in chunks.

        The attacker travels to each worker by pickling (so injected test
        doubles keep working); chunks default to ~4 tasks per worker to
        amortize task overhead while keeping the pool busy. Cancellation
        granularity is one chunk: ``abort_check`` is polled between
        completed chunks, and an abort cancels every not-yet-started
        chunk before raising.
        """
        workers = self.config.resolved_workers
        chunk = self.config.chunk_size or max(
            1, math.ceil(len(jobs) / (workers * 4))
        )
        chunks = [jobs[i : i + chunk] for i in range(0, len(jobs), chunk)]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(chunks)),
            initializer=_init_worker,
            initargs=(architecture, attack, self.config, network_seed, self._attacker),
        ) as pool:
            futures = [pool.submit(_run_trial_chunk, part) for part in chunks]
            for future in as_completed(futures):
                if abort_check is not None and abort_check():
                    for pending_future in futures:
                        pending_future.cancel()
                    raise CampaignInterrupted(
                        "campaign aborted between parallel chunks; "
                        "completed trials are checkpointed and resumable"
                    )
                for outcome in future.result():
                    yield outcome


def estimate_ps(
    architecture: SOSArchitecture,
    attack: Attack,
    trials: int = 200,
    clients_per_trial: int = 5,
    metric: str = "forward",
    seed: Optional[int] = None,
    churn_fraction: float = 0.0,
    checkpoint_path: Optional[str] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint_every: int = 32,
) -> PsEstimate:
    """Convenience wrapper around :class:`MonteCarloEstimator`.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, OneBurstAttack
    >>> arch = SOSArchitecture(layers=2, mapping="one-to-half",
    ...                        total_overlay_nodes=1000, sos_nodes=40)
    >>> result = estimate_ps(arch, OneBurstAttack(break_in_budget=20,
    ...                                           congestion_budget=200),
    ...                      trials=20, seed=1)
    >>> 0.0 <= result.mean <= 1.0
    True
    """
    config = MonteCarloConfig(
        trials=trials,
        clients_per_trial=clients_per_trial,
        metric=metric,
        seed=seed,
        churn_fraction=churn_fraction,
        checkpoint_path=checkpoint_path,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_every=checkpoint_every,
    )
    return MonteCarloEstimator(config).estimate(architecture, attack)
