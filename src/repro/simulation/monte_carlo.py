"""Monte Carlo estimation of ``P_S`` on concrete deployments.

Each trial deploys a fresh generalized-SOS instance (new role assignment
and neighbor tables) over a reusable overlay population, executes the
intelligent attack with :class:`~repro.attacks.IntelligentAttacker`, and
then measures client success. Averaging over trials yields an unbiased
estimate of the true ``P_S`` under the exact attack semantics — the
cross-check for the paper's average-case analytical approximation.

Two success metrics are supported (see :mod:`repro.sos.protocol`):

* ``"forward"`` — per-hop retry forwarding, the semantics Eq. (1) prices;
* ``"reachability"`` — existence of any all-good path (upper bound).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from repro.attacks.attacker import IntelligentAttacker
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import SimulationError
from repro.overlay.network import OverlayNetwork
from repro.resilience.checkpoint import CampaignCheckpoint, fingerprint
from repro.simulation.results import PsEstimate, summarize_indicators
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedSequenceFactory

Attack = Union[OneBurstAttack, SuccessiveAttack]


@dataclasses.dataclass(frozen=True)
class MonteCarloConfig:
    """Tuning knobs for the estimator.

    ``churn_fraction`` crashes that fraction of the SOS membership
    (benignly, before the attack) in every trial; the crash sets are
    *nested* across churn levels under a fixed seed, so per-trial
    reachability is monotone in the fraction. ``error_isolation`` records
    a failing trial instead of aborting the whole campaign;
    ``checkpoint_path`` persists per-trial results as JSON so an
    interrupted campaign resumes — with per-trial RNG streams, resumption
    is bit-identical to an uninterrupted run with the same seed.
    """

    trials: int = 200
    clients_per_trial: int = 5
    metric: str = "forward"  # or "reachability"
    seed: Optional[int] = None
    churn_fraction: float = 0.0
    error_isolation: bool = True
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SimulationError("trials must be >= 1")
        if self.clients_per_trial < 1:
            raise SimulationError("clients_per_trial must be >= 1")
        if self.metric not in ("forward", "reachability"):
            raise SimulationError(
                f"metric must be 'forward' or 'reachability', got {self.metric!r}"
            )
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise SimulationError(
                f"churn_fraction must be in [0, 1], got {self.churn_fraction}"
            )


class MonteCarloEstimator:
    """Estimates ``P_S`` by repeated deployment + attack + routing."""

    def __init__(self, config: MonteCarloConfig = MonteCarloConfig()) -> None:
        self.config = config
        self._attacker = IntelligentAttacker()
        #: ``(trial_index, error)`` pairs isolated during the last estimate.
        self.last_failures: List[Tuple[int, str]] = []

    def _checkpoint_for(
        self, architecture: SOSArchitecture, attack: Attack
    ) -> Optional[CampaignCheckpoint]:
        if self.config.checkpoint_path is None:
            return None
        payload = {
            "architecture": repr(architecture),
            "attack": repr(attack),
            "trials": self.config.trials,
            "clients_per_trial": self.config.clients_per_trial,
            "metric": self.config.metric,
            "seed": self.config.seed,
            "churn_fraction": self.config.churn_fraction,
        }
        return CampaignCheckpoint.load_or_create(
            self.config.checkpoint_path, fingerprint(payload)
        )

    def estimate(
        self, architecture: SOSArchitecture, attack: Attack
    ) -> PsEstimate:
        """Run the configured number of trials and summarize.

        Failing trials are isolated (recorded, excluded from aggregates)
        rather than fatal; with a checkpoint, completed trials are loaded
        instead of re-run and previously *failed* trials are retried on
        their original RNG streams.
        """
        factory = SeedSequenceFactory(self.config.seed)
        # One overlay population reused across trials; deploy() rewires
        # roles and neighbor tables per trial, so trials stay independent
        # in everything the model cares about.
        network = OverlayNetwork(
            architecture.total_overlay_nodes, rng=factory.generator()
        )
        checkpoint = self._checkpoint_for(architecture, attack)
        successes: List[float] = []
        bad_counts: List[Dict[int, int]] = []
        self.last_failures = []
        for trial in range(self.config.trials):
            # Spawned unconditionally so that skipping a checkpointed
            # trial leaves every later trial's stream unchanged.
            trial_rng = factory.generator()
            if checkpoint is not None:
                record = checkpoint.completed(trial)
                if record is not None:
                    successes.append(float(record["p"]))
                    bad_counts.append(
                        {int(layer): count for layer, count in record["bad"].items()}
                    )
                    continue
            try:
                deployment = SOSDeployment.deploy(
                    architecture, network=network, rng=trial_rng
                )
                self._inject_churn(deployment, trial_rng)
                self._attacker.execute(deployment, attack, rng=trial_rng)
                success = self._client_success(deployment, trial_rng)
                per_layer_bad = deployment.bad_counts()
            except Exception as exc:  # noqa: BLE001 — per-trial isolation
                if not self.config.error_isolation:
                    raise
                error = f"{type(exc).__name__}: {exc}"
                self.last_failures.append((trial, error))
                if checkpoint is not None:
                    checkpoint.record_failure(trial, error)
                    checkpoint.save()
                continue
            successes.append(success)
            bad_counts.append(per_layer_bad)
            if checkpoint is not None:
                checkpoint.record_success(trial, success, per_layer_bad)
                checkpoint.save()
        if not successes:
            raise SimulationError(
                f"all {self.config.trials} trials failed; first error: "
                f"{self.last_failures[0][1]}"
            )
        return summarize_indicators(
            successes, bad_counts, failed_trials=len(self.last_failures)
        )

    def _inject_churn(self, deployment: SOSDeployment, rng) -> None:
        """Benignly crash a nested fraction of the SOS membership.

        A full permutation is drawn whenever churn is enabled, so runs
        differing only in ``churn_fraction`` consume identical RNG draws
        and crash *nested* node sets — that is what makes ``P_S``
        monotone in the churn level under a fixed seed.
        """
        if self.config.churn_fraction <= 0.0:
            return
        members = deployment.sos_member_ids()
        order = rng.permutation(len(members))
        count = int(round(self.config.churn_fraction * len(members)))
        for index in order[:count]:
            deployment.resolve(members[int(index)]).crash()

    def _client_success(self, deployment: SOSDeployment, rng) -> float:
        """Fraction of sampled clients that reach the target this trial."""
        protocol = SOSProtocol(deployment)
        hits = 0
        for _ in range(self.config.clients_per_trial):
            contacts = deployment.sample_client_contacts(rng)
            if self.config.metric == "forward":
                receipt = protocol.send(
                    "mc-client", "mc-target", contacts=contacts, rng=rng
                )
                hits += int(receipt.delivered)
            else:
                hits += int(protocol.path_exists(contacts))
        return hits / self.config.clients_per_trial


def estimate_ps(
    architecture: SOSArchitecture,
    attack: Attack,
    trials: int = 200,
    clients_per_trial: int = 5,
    metric: str = "forward",
    seed: Optional[int] = None,
    churn_fraction: float = 0.0,
    checkpoint_path: Optional[str] = None,
) -> PsEstimate:
    """Convenience wrapper around :class:`MonteCarloEstimator`.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, OneBurstAttack
    >>> arch = SOSArchitecture(layers=2, mapping="one-to-half",
    ...                        total_overlay_nodes=1000, sos_nodes=40)
    >>> result = estimate_ps(arch, OneBurstAttack(break_in_budget=20,
    ...                                           congestion_budget=200),
    ...                      trials=20, seed=1)
    >>> 0.0 <= result.mean <= 1.0
    True
    """
    config = MonteCarloConfig(
        trials=trials,
        clients_per_trial=clients_per_trial,
        metric=metric,
        seed=seed,
        churn_fraction=churn_fraction,
        checkpoint_path=checkpoint_path,
    )
    return MonteCarloEstimator(config).estimate(architecture, attack)
