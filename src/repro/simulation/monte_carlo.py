"""Monte Carlo estimation of ``P_S`` on concrete deployments.

Each trial deploys a fresh generalized-SOS instance (new role assignment
and neighbor tables) over a reusable overlay population, executes the
intelligent attack with :class:`~repro.attacks.IntelligentAttacker`, and
then measures client success. Averaging over trials yields an unbiased
estimate of the true ``P_S`` under the exact attack semantics — the
cross-check for the paper's average-case analytical approximation.

Two success metrics are supported (see :mod:`repro.sos.protocol`):

* ``"forward"`` — per-hop retry forwarding, the semantics Eq. (1) prices;
* ``"reachability"`` — existence of any all-good path (upper bound).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.attacks.attacker import IntelligentAttacker
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import SimulationError
from repro.overlay.network import OverlayNetwork
from repro.simulation.results import PsEstimate, summarize_indicators
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedSequenceFactory

Attack = Union[OneBurstAttack, SuccessiveAttack]


@dataclasses.dataclass(frozen=True)
class MonteCarloConfig:
    """Tuning knobs for the estimator."""

    trials: int = 200
    clients_per_trial: int = 5
    metric: str = "forward"  # or "reachability"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise SimulationError("trials must be >= 1")
        if self.clients_per_trial < 1:
            raise SimulationError("clients_per_trial must be >= 1")
        if self.metric not in ("forward", "reachability"):
            raise SimulationError(
                f"metric must be 'forward' or 'reachability', got {self.metric!r}"
            )


class MonteCarloEstimator:
    """Estimates ``P_S`` by repeated deployment + attack + routing."""

    def __init__(self, config: MonteCarloConfig = MonteCarloConfig()) -> None:
        self.config = config
        self._attacker = IntelligentAttacker()

    def estimate(
        self, architecture: SOSArchitecture, attack: Attack
    ) -> PsEstimate:
        """Run the configured number of trials and summarize."""
        factory = SeedSequenceFactory(self.config.seed)
        # One overlay population reused across trials; deploy() rewires
        # roles and neighbor tables per trial, so trials stay independent
        # in everything the model cares about.
        network = OverlayNetwork(
            architecture.total_overlay_nodes, rng=factory.generator()
        )
        successes = []
        bad_counts = []
        for _ in range(self.config.trials):
            trial_rng = factory.generator()
            deployment = SOSDeployment.deploy(
                architecture, network=network, rng=trial_rng
            )
            self._attacker.execute(deployment, attack, rng=trial_rng)
            successes.append(self._client_success(deployment, trial_rng))
            bad_counts.append(deployment.bad_counts())
        return summarize_indicators(successes, bad_counts)

    def _client_success(self, deployment: SOSDeployment, rng) -> float:
        """Fraction of sampled clients that reach the target this trial."""
        protocol = SOSProtocol(deployment)
        hits = 0
        for _ in range(self.config.clients_per_trial):
            contacts = deployment.sample_client_contacts(rng)
            if self.config.metric == "forward":
                receipt = protocol.send(
                    "mc-client", "mc-target", contacts=contacts, rng=rng
                )
                hits += int(receipt.delivered)
            else:
                hits += int(protocol.path_exists(contacts))
        return hits / self.config.clients_per_trial


def estimate_ps(
    architecture: SOSArchitecture,
    attack: Attack,
    trials: int = 200,
    clients_per_trial: int = 5,
    metric: str = "forward",
    seed: Optional[int] = None,
) -> PsEstimate:
    """Convenience wrapper around :class:`MonteCarloEstimator`.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, OneBurstAttack
    >>> arch = SOSArchitecture(layers=2, mapping="one-to-half",
    ...                        total_overlay_nodes=1000, sos_nodes=40)
    >>> result = estimate_ps(arch, OneBurstAttack(break_in_budget=20,
    ...                                           congestion_budget=200),
    ...                      trials=20, seed=1)
    >>> 0.0 <= result.mean <= 1.0
    True
    """
    config = MonteCarloConfig(
        trials=trials,
        clients_per_trial=clients_per_trial,
        metric=metric,
        seed=seed,
    )
    return MonteCarloEstimator(config).estimate(architecture, attack)
