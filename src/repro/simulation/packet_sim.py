"""Packet-level simulation of a deployed SOS under flooding attacks.

The analytical model abstracts congestion into a binary per-node state.
This simulation grounds that abstraction: legitimate clients emit Poisson
traffic through the overlay hop by hop; the attacker floods chosen nodes at
a configurable rate; every node has finite processing capacity
(:class:`~repro.simulation.capacity.NodeCapacity`). Flooded nodes drop most
of what they receive — including legitimate packets — which is exactly how
a "congested" node degrades path availability in the paper.

The headline check (see ``tests/simulation/test_packet_sim.py`` and the
``flooding_dynamics`` example): delivery ratio with flooding at a layer's
nodes collapses toward the analytical ``P_S`` with those nodes marked
congested, while un-flooded runs deliver ~100%.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.capacity import NodeCapacity
from repro.simulation.engine import EventScheduler
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng


@dataclasses.dataclass(frozen=True)
class PacketSimConfig:
    """Knobs for the packet-level run."""

    duration: float = 50.0
    hop_latency: float = 0.05
    client_rate: float = 5.0  # legitimate packets per unit time per client
    clients: int = 4
    node_capacity: float = 50.0
    flood_rate: float = 500.0  # attack packets per unit time per flooded node
    warmup: float = 5.0

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise SimulationError("duration must exceed warmup")
        for name in ("hop_latency", "client_rate", "node_capacity", "flood_rate"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be > 0")
        if self.clients < 1:
            raise SimulationError("clients must be >= 1")


@dataclasses.dataclass
class PacketSimReport:
    """Aggregate statistics of one packet-level run."""

    sent: int = 0
    delivered: int = 0
    dropped_at_congested: int = 0
    dropped_no_neighbor: int = 0
    attack_packets_absorbed: int = 0
    latencies: List[float] = dataclasses.field(default_factory=list)
    congested_nodes: List[int] = dataclasses.field(default_factory=list)
    arrivals_per_layer: Dict[int, int] = dataclasses.field(default_factory=dict)
    drops_per_layer: Dict[int, int] = dataclasses.field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        return 0.0 if self.sent == 0 else self.delivered / self.sent

    @property
    def mean_latency(self) -> float:
        return 0.0 if not self.latencies else sum(self.latencies) / len(self.latencies)

    def bottleneck_layer(self) -> Optional[int]:
        """The layer absorbing the most legitimate-traffic drops."""
        if not self.drops_per_layer:
            return None
        return max(self.drops_per_layer, key=lambda k: self.drops_per_layer[k])


class PacketLevelSimulation:
    """Drives clients, floods, and forwarding over a deployment."""

    def __init__(
        self,
        deployment: SOSDeployment,
        config: PacketSimConfig = PacketSimConfig(),
        rng: SeedLike = None,
    ) -> None:
        self.deployment = deployment
        self.config = config
        self.rng = make_rng(rng)
        self.scheduler = EventScheduler()
        self.report = PacketSimReport()
        self._capacities: Dict[int, NodeCapacity] = {}
        for layer in range(1, deployment.architecture.layers + 2):
            for node_id in deployment.layer_members(layer):
                self._capacities[node_id] = NodeCapacity(
                    capacity=config.node_capacity,
                    burst=2 * config.node_capacity,
                )
        self._client_contacts = [
            deployment.sample_client_contacts(self.rng)
            for _ in range(config.clients)
        ]

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    def _poisson_gap(self, rate: float) -> float:
        return float(self.rng.exponential(1.0 / rate))

    def _start_client(self, client_index: int) -> None:
        def emit():
            if self.scheduler.now >= self.config.duration:
                return
            self._inject_client_packet(client_index)
            self.scheduler.schedule_after(
                self._poisson_gap(self.config.client_rate), emit
            )

        self.scheduler.schedule_after(
            self._poisson_gap(self.config.client_rate), emit
        )

    def _start_flood(self, node_id: int) -> None:
        def flood():
            if self.scheduler.now >= self.config.duration:
                return
            # Attack traffic consumes the node's capacity but is never
            # forwarded: hop verification rejects it (paper §2).
            self._capacities[node_id].offer(self.scheduler.now)
            self.report.attack_packets_absorbed += 1
            self.scheduler.schedule_after(
                self._poisson_gap(self.config.flood_rate), flood
            )

        self.scheduler.schedule_after(
            self._poisson_gap(self.config.flood_rate), flood
        )

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _inject_client_packet(self, client_index: int) -> None:
        if self.scheduler.now < self.config.warmup:
            return
        self.report.sent += 1
        contacts = self._client_contacts[client_index]
        entry = contacts[int(self.rng.integers(0, len(contacts)))]
        self._forward(entry, layer=1, sent_at=self.scheduler.now)

    def _forward(self, node_id: int, layer: int, sent_at: float) -> None:
        def arrive():
            self.report.arrivals_per_layer[layer] = (
                self.report.arrivals_per_layer.get(layer, 0) + 1
            )
            capacity = self._capacities[node_id]
            if not capacity.offer(self.scheduler.now):
                self.report.dropped_at_congested += 1
                self.report.drops_per_layer[layer] = (
                    self.report.drops_per_layer.get(layer, 0) + 1
                )
                return
            node = self.deployment.resolve(node_id)
            if node.is_bad:
                self.report.dropped_at_congested += 1
                self.report.drops_per_layer[layer] = (
                    self.report.drops_per_layer.get(layer, 0) + 1
                )
                return
            if layer == self.deployment.architecture.layers + 1:
                self.report.delivered += 1
                self.report.latencies.append(self.scheduler.now - sent_at)
                return
            neighbors = node.neighbors
            live = [
                n
                for n in neighbors
                if not self.deployment.resolve(n).is_bad
                and not self._capacities[n].is_congested
            ]
            if not live:
                self.report.dropped_no_neighbor += 1
                self.report.drops_per_layer[layer + 1] = (
                    self.report.drops_per_layer.get(layer + 1, 0) + 1
                )
                return
            next_id = live[int(self.rng.integers(0, len(live)))]
            self._forward(next_id, layer + 1, sent_at)

        self.scheduler.schedule_after(self.config.hop_latency, arrive)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(self, flood_targets: Optional[Sequence[int]] = None) -> PacketSimReport:
        """Simulate ``duration`` time units, flooding ``flood_targets``."""
        for target in flood_targets or ():
            if target not in self._capacities:
                raise SimulationError(
                    f"flood target {target} is not an SOS node or filter"
                )
            self._start_flood(target)
        for client_index in range(self.config.clients):
            self._start_client(client_index)
        self.scheduler.run(until=self.config.duration + 10.0)
        self.report.congested_nodes = sorted(
            node_id
            for node_id, capacity in self._capacities.items()
            if capacity.is_congested
        )
        return self.report


def flood_layer(
    deployment: SOSDeployment,
    layer: int,
    fraction: float = 1.0,
    rng: SeedLike = None,
) -> List[int]:
    """Pick a ``fraction`` of ``layer``'s members as flood targets."""
    if not 0.0 < fraction <= 1.0:
        raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
    generator = make_rng(rng)
    members = deployment.layer_members(layer)
    count = max(1, int(round(fraction * len(members))))
    chosen = generator.choice(len(members), size=min(count, len(members)), replace=False)
    return sorted(members[int(i)] for i in chosen)
