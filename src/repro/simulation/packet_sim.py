"""Packet-level simulation of a deployed SOS under flooding attacks.

The analytical model abstracts congestion into a binary per-node state.
This simulation grounds that abstraction: legitimate clients emit Poisson
traffic through the overlay hop by hop; the attacker floods chosen nodes at
a configurable rate; every node has finite processing capacity
(:class:`~repro.simulation.capacity.NodeCapacity`). Flooded nodes drop most
of what they receive — including legitimate packets — which is exactly how
a "congested" node degrades path availability in the paper.

The headline check (see ``tests/simulation/test_packet_sim.py`` and the
``flooding_dynamics`` example): delivery ratio with flooding at a layer's
nodes collapses toward the analytical ``P_S`` with those nodes marked
congested, while un-flooded runs deliver ~100%.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.errors import SimulationError
from repro.simulation.capacity import NodeCapacity
from repro.simulation.engine import EventScheduler
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng

if TYPE_CHECKING:  # imported lazily to keep repro.detection optional here
    from repro.detection.marking import MarkCollector
    from repro.detection.monitor import TrafficMonitor
    from repro.scenarios.schedule import InjectionSchedule


def uniform_index(u: float, count: int) -> int:
    """Map one uniform draw in ``[0, 1)`` to an index in ``[0, count)``.

    Both packet engines route with this exact arithmetic (``u * count``
    truncated, clamped for the rare upward rounding near 1.0), so a
    shared per-packet uniform yields the same pick whenever the two
    engines agree on the candidate set.
    """
    return min(int(u * count), count - 1)


@dataclasses.dataclass(frozen=True)
class PacketSimConfig:
    """Knobs for the packet-level run."""

    duration: float = 50.0
    hop_latency: float = 0.05
    client_rate: float = 5.0  # legitimate packets per unit time per client
    clients: int = 4
    node_capacity: float = 50.0
    flood_rate: float = 500.0  # attack packets per unit time per flooded node
    warmup: float = 5.0
    #: When the flood sources switch on. The default ``0.0`` reproduces
    #: the historical behavior exactly (``0.0 + gap == gap`` bit for
    #: bit); a later start gives online detectors a clean pre-attack
    #: baseline to estimate normal load from.
    flood_start: float = 0.0
    #: Retain every per-packet latency in ``PacketSimReport.latencies``.
    #: Off by default so long runs stay O(1) memory; the streaming
    #: count/mean/max statistics are always maintained.
    keep_latencies: bool = False
    #: Kernel tier for the fast engine: ``"scalar"`` replays every hot
    #: recursion in per-event Python (the readable reference),
    #: ``"numpy"`` is the vectorized default and oracle, ``"compiled"``
    #: dispatches to :mod:`repro.perf.compiled` machine-code kernels
    #: (bit-identical; degrades to numpy with a one-time warning when no
    #: compiled backend is available). The event engine ignores it.
    tier: str = "numpy"

    def __post_init__(self) -> None:
        if self.duration <= self.warmup:
            raise SimulationError("duration must exceed warmup")
        for name in ("hop_latency", "client_rate", "node_capacity", "flood_rate"):
            if getattr(self, name) <= 0:
                raise SimulationError(f"{name} must be > 0")
        if self.clients < 0:
            raise SimulationError("clients must be >= 0")
        if self.tier not in ("scalar", "numpy", "compiled"):
            raise SimulationError(
                "tier must be one of ('scalar', 'numpy', 'compiled'), "
                f"got {self.tier!r}"
            )
        if not 0.0 <= self.flood_start < self.duration:
            raise SimulationError(
                "flood_start must lie in [0, duration), got "
                f"{self.flood_start}"
            )


@dataclasses.dataclass
class PacketSimReport:
    """Aggregate statistics of one packet-level run.

    Latency is summarized *streaming* (Welford's online algorithm:
    count / mean / M2 / max), so memory stays O(1) no matter how many
    packets are delivered. The raw per-packet ``latencies`` list is
    populated only when the run opted in via
    ``PacketSimConfig.keep_latencies``.
    """

    sent: int = 0
    delivered: int = 0
    dropped_at_congested: int = 0
    dropped_no_neighbor: int = 0
    attack_packets_absorbed: int = 0
    latency_count: int = 0
    latency_mean: float = 0.0
    latency_m2: float = 0.0
    max_latency: float = 0.0
    latencies: List[float] = dataclasses.field(default_factory=list)
    congested_nodes: List[int] = dataclasses.field(default_factory=list)
    arrivals_per_layer: Dict[int, int] = dataclasses.field(default_factory=dict)
    drops_per_layer: Dict[int, int] = dataclasses.field(default_factory=dict)

    def record_latency(self, value: float, keep: bool = False) -> None:
        """Fold one delivered-packet latency into the streaming stats."""
        self.latency_count += 1
        delta = value - self.latency_mean
        self.latency_mean += delta / self.latency_count
        self.latency_m2 += delta * (value - self.latency_mean)
        if value > self.max_latency:
            self.max_latency = value
        if keep:
            self.latencies.append(value)

    @property
    def delivery_ratio(self) -> float:
        return 0.0 if self.sent == 0 else self.delivered / self.sent

    @property
    def mean_latency(self) -> float:
        return 0.0 if self.latency_count == 0 else self.latency_mean

    @property
    def latency_variance(self) -> float:
        """Population variance of delivered-packet latencies."""
        if self.latency_count < 2:
            return 0.0
        return self.latency_m2 / self.latency_count

    def bottleneck_layer(self) -> Optional[int]:
        """The layer absorbing the most legitimate-traffic drops."""
        if not self.drops_per_layer:
            return None
        return max(self.drops_per_layer, key=lambda k: self.drops_per_layer[k])


class PacketLevelSimulation:
    """Drives clients, floods, and forwarding over a deployment."""

    def __init__(
        self,
        deployment: SOSDeployment,
        config: PacketSimConfig = PacketSimConfig(),
        rng: SeedLike = None,
        monitor: "Optional[TrafficMonitor]" = None,
        marking: "Optional[MarkCollector]" = None,
    ) -> None:
        self.deployment = deployment
        self.config = config
        self.monitor = monitor
        self.marking = marking
        self.rng = make_rng(rng)
        self.scheduler = EventScheduler()
        self.report = PacketSimReport()
        self._capacities: Dict[int, NodeCapacity] = {}
        for layer in range(1, deployment.architecture.layers + 2):
            for node_id in deployment.layer_members(layer):
                self._capacities[node_id] = NodeCapacity(
                    capacity=config.node_capacity,
                    burst=2 * config.node_capacity,
                )
        self._client_contacts = [
            deployment.sample_client_contacts(self.rng)
            for _ in range(config.clients)
        ]
        # Dedicated RNG sub-streams (the PR-3 spawn pattern): one arrival
        # stream per client, one routing stream, and a master that spawns
        # one stream per flood target at run time. Both engines consume
        # the same streams source by source, which is what makes the fast
        # path's injection schedule — and every no-drop report — bit-
        # identical to this event-driven oracle.
        streams = self.rng.spawn(config.clients + 2)
        self._arrival_streams = streams[: config.clients]
        self._routing_rng = streams[config.clients]
        self._flood_master = streams[config.clients + 1]
        # Spawned only when marking is enabled, strictly *after* the
        # streams above: numpy's spawn-key fan-out means later children
        # never perturb earlier ones, so disabling detection leaves every
        # existing stream — and thus every report bit — unchanged.
        self._mark_master = self.rng.spawn(1)[0] if marking is not None else None

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    @staticmethod
    def _poisson_gap(stream, rate: float) -> float:
        return float(stream.exponential(1.0 / rate))

    def _start_client(self, client_index: int) -> None:
        stream = self._arrival_streams[client_index]

        def emit():
            if self.scheduler.now >= self.config.duration:
                return
            self._inject_client_packet(client_index)
            self.scheduler.schedule_after(
                self._poisson_gap(stream, self.config.client_rate), emit
            )

        self.scheduler.schedule_after(
            self._poisson_gap(stream, self.config.client_rate), emit
        )

    def _start_flood(self, node_id: int, stream, mark_stream=None) -> None:
        def flood():
            if self.scheduler.now >= self.config.duration:
                return
            # Attack traffic consumes the node's capacity but is never
            # forwarded: hop verification rejects it (paper §2).
            accepted = self._capacities[node_id].offer(self.scheduler.now)
            self.report.attack_packets_absorbed += 1
            if self.monitor is not None:
                self.monitor.observe(node_id, self.scheduler.now, accepted)
            if mark_stream is not None and self.marking is not None:
                # Two uniforms per flood packet (source pick + edge
                # sampling) from the target's dedicated mark stream; the
                # fast engine draws the same stream as an (n, 2) block.
                u = mark_stream.random(2)
                self.marking.observe(node_id, float(u[0]), float(u[1]))
            self.scheduler.schedule_after(
                self._poisson_gap(stream, self.config.flood_rate), flood
            )

        self.scheduler.schedule_after(
            self.config.flood_start
            + self._poisson_gap(stream, self.config.flood_rate),
            flood,
        )

    # ------------------------------------------------------------------
    # Scheduled sources (precompiled scenario vectors)
    # ------------------------------------------------------------------
    def _clip_times(self, times) -> List[float]:
        """Absolute instants < duration, as plain floats. Both engines
        apply this same mask, so a schedule compiled for a longer run
        replays identically under a shorter config."""
        return [
            float(value)
            for value in times.tolist()
            if float(value) < self.config.duration
        ]

    def _start_scheduled_attack(self, node_id: int, times) -> None:
        """Chain one attack-offer event per precompiled instant.

        Like :meth:`_start_flood` the packets consume capacity and feed
        the monitor but are never forwarded; unlike it, the instants are
        data — no RNG draw happens here, which is what keeps scheduled
        vectors bit-identical across engines.
        """
        instants = self._clip_times(times)

        def offer(index: int) -> None:
            accepted = self._capacities[node_id].offer(self.scheduler.now)
            self.report.attack_packets_absorbed += 1
            if self.monitor is not None:
                self.monitor.observe(node_id, self.scheduler.now, accepted)
            if index + 1 < len(instants):
                self.scheduler.schedule_at(
                    instants[index + 1], lambda: offer(index + 1)
                )

        if instants:
            self.scheduler.schedule_at(instants[0], lambda: offer(0))

    def _start_scheduled_source(self, source) -> None:
        """Chain one legitimate injection per precompiled surge instant."""
        contacts = list(source.contacts)
        instants = self._clip_times(source.times)

        def emit(index: int) -> None:
            self._inject_from(contacts)
            if index + 1 < len(instants):
                self.scheduler.schedule_at(
                    instants[index + 1], lambda: emit(index + 1)
                )

        if instants:
            self.scheduler.schedule_at(instants[0], lambda: emit(0))

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def _inject_from(self, contacts: Sequence[int]) -> None:
        if self.scheduler.now < self.config.warmup:
            return
        self.report.sent += 1
        # One uniform per decision the packet could ever face — entry
        # pick plus one forwarding pick per SOS layer — drawn as a block
        # at injection time. Pre-assigning the whole vector makes the
        # routing stream's consumption independent of how in-flight
        # packets interleave, so the fast engine reproduces it exactly.
        choices = self._routing_rng.random(
            self.deployment.architecture.layers + 1
        )
        entry = contacts[uniform_index(float(choices[0]), len(contacts))]
        self._forward(
            entry, layer=1, sent_at=self.scheduler.now, choices=choices
        )

    def _inject_client_packet(self, client_index: int) -> None:
        self._inject_from(self._client_contacts[client_index])

    def _forward(
        self, node_id: int, layer: int, sent_at: float, choices
    ) -> None:
        def arrive():
            self.report.arrivals_per_layer[layer] = (
                self.report.arrivals_per_layer.get(layer, 0) + 1
            )
            capacity = self._capacities[node_id]
            accepted = capacity.offer(self.scheduler.now)
            if self.monitor is not None:
                self.monitor.observe(node_id, self.scheduler.now, accepted)
            if not accepted:
                self.report.dropped_at_congested += 1
                self.report.drops_per_layer[layer] = (
                    self.report.drops_per_layer.get(layer, 0) + 1
                )
                return
            node = self.deployment.resolve(node_id)
            if node.is_bad:
                self.report.dropped_at_congested += 1
                self.report.drops_per_layer[layer] = (
                    self.report.drops_per_layer.get(layer, 0) + 1
                )
                return
            if layer == self.deployment.architecture.layers + 1:
                self.report.delivered += 1
                self.report.record_latency(
                    self.scheduler.now - sent_at,
                    keep=self.config.keep_latencies,
                )
                return
            neighbors = node.neighbors
            live = [
                n
                for n in neighbors
                if not self.deployment.resolve(n).is_bad
                and not self._capacities[n].is_congested
            ]
            if not live:
                self.report.dropped_no_neighbor += 1
                self.report.drops_per_layer[layer + 1] = (
                    self.report.drops_per_layer.get(layer + 1, 0) + 1
                )
                return
            next_id = live[uniform_index(float(choices[layer]), len(live))]
            self._forward(next_id, layer + 1, sent_at, choices)

        self.scheduler.schedule_after(self.config.hop_latency, arrive)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def drain_horizon(self) -> float:
        """Time by which every in-flight packet has resolved.

        Sources stop injecting strictly before ``duration``; a packet
        injected at ``duration - ε`` still has ``layers + 1`` hops to
        traverse (SOS layers plus the filter), each costing exactly
        ``hop_latency``. One extra ``hop_latency`` of slack absorbs the
        boundary case, replacing the former magic ``duration + 10.0``.
        """
        layers = self.deployment.architecture.layers
        return self.config.duration + (layers + 2) * self.config.hop_latency

    def run(
        self,
        flood_targets: Optional[Sequence[int]] = None,
        fast: bool = False,
        schedule: "Optional[InjectionSchedule]" = None,
    ) -> PacketSimReport:
        """Simulate ``duration`` time units, flooding ``flood_targets``.

        ``fast=True`` dispatches to the vectorized engine in
        :mod:`repro.perf.fastsim` (hop-synchronous numpy batches instead
        of one event per packet per hop). Both engines draw from the
        same per-source RNG sub-streams, so injection schedules —
        ``sent`` and ``attack_packets_absorbed`` — are bit-identical on
        a matched seed, and any run where no packet drops (including
        the degenerate single-packet case) produces a bit-identical
        report. Once drops occur the engines' congestion views can
        diverge (the fast path approximates next-hop congestion from
        timelines, see :mod:`repro.perf.fastsim`), so flooded runs are
        statistically equivalent rather than identical. The
        event-driven path remains the oracle.

        ``schedule`` (an :class:`~repro.scenarios.schedule.InjectionSchedule`
        from :func:`~repro.scenarios.schedule.compile_scenario`) adds
        precompiled vector traffic: per-node attack offer instants and
        extra legitimate surge sources. Scheduled times are *data* — no
        engine-side draw — so they are identical across engines by
        construction and compose freely with a classic ``flood_targets``
        flood. Packet marking covers only the classic flood graph, so
        combining ``marking`` with a schedule is rejected.
        """
        targets = sorted(flood_targets or ())
        for target in targets:
            if target not in self._capacities:
                raise SimulationError(
                    f"flood target {target} is not an SOS node or filter"
                )
        if schedule is not None:
            for node in schedule.attack_targets:
                if node not in self._capacities:
                    raise SimulationError(
                        f"scheduled attack target {node} is not an SOS "
                        "node or filter"
                    )
            for source in schedule.surge_sources:
                for contact in source.contacts:
                    if contact not in self._capacities:
                        raise SimulationError(
                            f"surge contact {contact} is not an SOS node "
                            "or filter"
                        )
            if self.marking is not None:
                from repro.errors import DetectionError

                raise DetectionError(
                    "packet marking does not support scheduled scenario "
                    "vectors; run marking against a classic flood instead"
                )
        if self.marking is not None and targets:
            uncovered = set(targets) - set(self.marking.graph.victims())
            if uncovered:
                from repro.errors import DetectionError

                raise DetectionError(
                    "marking attack graph does not cover flood targets "
                    f"{sorted(uncovered)}"
                )
        if fast:
            from repro.perf.fastsim import run_fast

            self.report = run_fast(
                self.deployment,
                self.config,
                self.rng,
                flood_targets,
                client_contacts=self._client_contacts,
                streams=(
                    self._arrival_streams,
                    self._routing_rng,
                    self._flood_master,
                ),
                monitor=self.monitor,
                marking=self.marking,
                mark_master=self._mark_master,
                schedule=schedule,
            )
            return self.report
        # One dedicated stream per flood target, spawned in sorted-target
        # order — the same order the fast path uses — so each target's
        # flood schedule matches across engines. Mark streams mirror the
        # pattern from their own master, keeping marking randomness fully
        # decoupled from flood-timing randomness.
        flood_streams = self._flood_master.spawn(len(targets)) if targets else []
        if self.marking is not None and self._mark_master is not None and targets:
            mark_streams: List = list(self._mark_master.spawn(len(targets)))
        else:
            mark_streams = [None] * len(targets)
        for target, stream, mark_stream in zip(
            targets, flood_streams, mark_streams
        ):
            self._start_flood(target, stream, mark_stream)
        if schedule is not None:
            for node in schedule.attack_targets:
                self._start_scheduled_attack(node, schedule.attack_times[node])
            for source in schedule.surge_sources:
                self._start_scheduled_source(source)
        for client_index in range(self.config.clients):
            self._start_client(client_index)
        self.scheduler.run(until=self.drain_horizon())
        self.report.congested_nodes = sorted(
            node_id
            for node_id, capacity in self._capacities.items()
            if capacity.is_congested
        )
        return self.report


def flood_layer(
    deployment: SOSDeployment,
    layer: int,
    fraction: float = 1.0,
    rng: SeedLike = None,
) -> List[int]:
    """Pick a ``fraction`` of ``layer``'s members as flood targets."""
    if not 0.0 < fraction <= 1.0:
        raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
    generator = make_rng(rng)
    members = deployment.layer_members(layer)
    count = max(1, int(round(fraction * len(members))))
    chosen = generator.choice(len(members), size=min(count, len(members)), replace=False)
    return sorted(members[int(i)] for i in chosen)
