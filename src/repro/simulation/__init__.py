"""Simulation substrates: Monte Carlo validation and packet-level dynamics."""

from repro.simulation.campaign import (
    CampaignConfig,
    CampaignReport,
    CampaignSimulation,
    run_campaign,
)
from repro.simulation.capacity import NodeCapacity
from repro.simulation.engine import EventScheduler
from repro.simulation.monte_carlo import (
    MonteCarloConfig,
    MonteCarloEstimator,
    estimate_ps,
)
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    PacketSimReport,
    flood_layer,
)
from repro.simulation.results import PsEstimate, summarize_indicators

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "CampaignSimulation",
    "run_campaign",
    "NodeCapacity",
    "EventScheduler",
    "MonteCarloConfig",
    "MonteCarloEstimator",
    "estimate_ps",
    "PacketLevelSimulation",
    "PacketSimConfig",
    "PacketSimReport",
    "flood_layer",
    "PsEstimate",
    "summarize_indicators",
]
