"""Circuit breaker: windowed failure-rate tripping with half-open probes.

Wraps an unreliable dependency (the evaluation service's worker pool)
in the classic three-state machine:

* **closed** — requests flow; outcomes land in a sliding window of the
  last ``window`` calls. When the window holds at least ``min_volume``
  outcomes and the failure fraction reaches ``failure_threshold``, the
  breaker opens.
* **open** — requests are refused instantly (the caller degrades:
  stale cache, 503). After ``reset_timeout`` seconds the next
  :meth:`allow` transitions to half-open.
* **half-open** — up to ``half_open_max_calls`` probe requests pass;
  ``half_open_successes`` consecutive successes close the breaker, any
  failure re-opens it (and restarts the timeout).

Transitions are **monotone** along the recovery path: the only edges
are closed→open, open→half-open, half-open→closed and half-open→open —
never open→closed directly, never closed→half-open. The full transition
history is recorded for tests and the service's metrics endpoint.

The clock is injected so tests can script time; nothing here sleeps.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Callable, Deque, List, Tuple

from repro.errors import ConfigurationError

#: Breaker state names (strings so they serialize straight into JSON).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: The only legal (from, to) edges; tests assert every recorded
#: transition is one of these.
LEGAL_TRANSITIONS = frozenset(
    {
        (CLOSED, OPEN),
        (OPEN, HALF_OPEN),
        (HALF_OPEN, CLOSED),
        (HALF_OPEN, OPEN),
    }
)


@dataclasses.dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs for :class:`CircuitBreaker`."""

    window: int = 32
    failure_threshold: float = 0.5
    min_volume: int = 8
    reset_timeout: float = 5.0
    half_open_max_calls: int = 2
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigurationError(
                f"failure_threshold must be in (0, 1], "
                f"got {self.failure_threshold}"
            )
        if self.min_volume < 1:
            raise ConfigurationError(
                f"min_volume must be >= 1, got {self.min_volume}"
            )
        if self.reset_timeout <= 0:
            raise ConfigurationError(
                f"reset_timeout must be > 0, got {self.reset_timeout}"
            )
        if self.half_open_max_calls < 1:
            raise ConfigurationError(
                f"half_open_max_calls must be >= 1, "
                f"got {self.half_open_max_calls}"
            )
        if self.half_open_successes < 1:
            raise ConfigurationError(
                f"half_open_successes must be >= 1, "
                f"got {self.half_open_successes}"
            )


class CircuitBreaker:
    """Three-state breaker over a sliding outcome window.

    Usage::

        breaker = CircuitBreaker(BreakerConfig())
        if not breaker.allow():
            ...degrade (serve stale / 503)...
        else:
            try:
                result = call_dependency()
            except Exception:
                breaker.record_failure()
                raise
            else:
                breaker.record_success()
    """

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._state = CLOSED
        self._window: Deque[bool] = deque(maxlen=config.window)
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_streak = 0
        #: ``(time, from_state, to_state)`` history, oldest first.
        self.transitions: List[Tuple[float, str, str]] = []
        self._open_count = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def open_count(self) -> int:
        """How many times the breaker has tripped over its lifetime."""
        return self._open_count

    def failure_rate(self) -> float:
        """Failure fraction over the current window (0.0 when empty)."""
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    def _transition(self, to_state: str) -> None:
        from_state = self._state
        if from_state == to_state:
            return
        if (from_state, to_state) not in LEGAL_TRANSITIONS:
            raise ConfigurationError(
                f"illegal breaker transition {from_state} -> {to_state}"
            )
        self._state = to_state
        self.transitions.append((self._clock(), from_state, to_state))
        if to_state == OPEN:
            self._open_count += 1
            self._opened_at = self._clock()
            self._half_open_inflight = 0
            self._half_open_streak = 0
        elif to_state == HALF_OPEN:
            self._half_open_inflight = 0
            self._half_open_streak = 0
        elif to_state == CLOSED:
            self._window.clear()

    def allow(self) -> bool:
        """May a request proceed right now?

        In the open state this is where the reset timeout is observed:
        once it elapses the breaker moves to half-open and admits up to
        ``half_open_max_calls`` concurrent probes.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self._clock() - self._opened_at < self.config.reset_timeout:
                return False
            self._transition(HALF_OPEN)
        # half-open: meter the probes.
        if self._half_open_inflight >= self.config.half_open_max_calls:
            return False
        self._half_open_inflight += 1
        return True

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)
            self._half_open_streak += 1
            if self._half_open_streak >= self.config.half_open_successes:
                self._transition(CLOSED)
            return
        self._window.append(True)

    def record_discard(self) -> None:
        """An allowed call was never executed (shed by backpressure).

        Sheds say nothing about dependency health, so the window is left
        alone — but a half-open probe slot must be released, or discarded
        probes would wedge the breaker open forever.
        """
        if self._state == HALF_OPEN:
            self._half_open_inflight = max(0, self._half_open_inflight - 1)

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            # One bad probe is enough evidence the dependency is still
            # sick; re-open and restart the timeout.
            self._transition(OPEN)
            return
        if self._state == OPEN:
            # Late failure from a call admitted before the trip: the
            # breaker is already open, nothing more to learn.
            return
        self._window.append(False)
        if (
            len(self._window) >= self.config.min_volume
            and self.failure_rate() >= self.config.failure_threshold
        ):
            self._transition(OPEN)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def seconds_until_half_open(self) -> float:
        """Time left before an open breaker admits a probe (0 otherwise)."""
        if self._state != OPEN:
            return 0.0
        remaining = self.config.reset_timeout - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def snapshot(self) -> dict:
        """JSON-ready view for health/metrics endpoints."""
        return {
            "state": self._state,
            "failure_rate": self.failure_rate(),
            "window_size": len(self._window),
            "open_count": self._open_count,
            "seconds_until_half_open": self.seconds_until_half_open(),
            "transitions": len(self.transitions),
        }
