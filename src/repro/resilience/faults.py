"""Fault injection: benign crash, recover, and partition events.

A :class:`FaultPlan` describes churn declaratively; a
:class:`FaultInjector` compiles it onto an
:class:`~repro.simulation.engine.EventScheduler`, so benign failures
interleave with attack rounds, repair scans, and probes on the same
deterministic clock. Crashes only ever hit GOOD nodes (a node that is
already compromised or congested is down regardless), and benign recovery
never undoes attack damage — that separation is what keeps ``P_S``
monotone in the churn rate.

For the un-clocked executable attacks (:mod:`repro.attacks.strategies`),
:class:`RoundChurn` provides the same churn semantics as an
``on_round_end`` hook, composable with the repairing defender via
:func:`compose_round_hooks`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.overlay.arrays import HEALTH_CRASHED, HEALTH_GOOD
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # runtime import would cycle: simulation -> resilience
    from repro.simulation.engine import EventScheduler, _ScheduledEvent


@dataclasses.dataclass(frozen=True)
class PartitionEvent:
    """A correlated outage: a fraction of one layer crashes together.

    At ``time`` the injector crashes ``ceil(fraction * layer_size)``
    currently-good members of ``layer``; at ``time + duration`` exactly
    those nodes are restored (nodes the defender repaired in between are
    left alone).
    """

    time: float
    layer: int
    fraction: float
    duration: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError(f"partition time must be >= 0, got {self.time}")
        if self.layer < 1:
            raise SimulationError(f"partition layer must be >= 1, got {self.layer}")
        check_probability("fraction", self.fraction)
        if self.duration <= 0:
            raise SimulationError(
                f"partition duration must be > 0, got {self.duration}"
            )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Declarative churn model for one engagement.

    Attributes
    ----------
    crash_rate:
        Expected benign crashes per unit of simulation time across the
        whole SOS membership (a Poisson process; 0 disables churn).
    mean_downtime:
        Mean of the exponential downtime after a crash; ``math.inf``
        makes crashes permanent.
    partitions:
        Scheduled correlated layer outages.
    """

    crash_rate: float = 0.0
    mean_downtime: float = 10.0
    partitions: Tuple[PartitionEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.crash_rate < 0:
            raise SimulationError(
                f"crash_rate must be >= 0, got {self.crash_rate}"
            )
        if not self.mean_downtime > 0:
            raise SimulationError(
                f"mean_downtime must be > 0 (math.inf = permanent), "
                f"got {self.mean_downtime}"
            )

    @property
    def is_noop(self) -> bool:
        """True when the plan can never inject a fault."""
        return self.crash_rate <= 0.0 and not self.partitions


#: The default plan: no benign failures, seed behavior exactly.
ZERO_CHURN = FaultPlan()


class FaultInjector:
    """Compiles a :class:`FaultPlan` onto a scheduler for one deployment.

    The injector owns a dedicated RNG stream, so enabling churn never
    perturbs the attack, probe, or defender streams — a zero-churn plan
    schedules nothing and the engagement is bit-identical to a run
    without an injector.
    """

    def __init__(
        self,
        plan: FaultPlan,
        deployment: SOSDeployment,
        scheduler: EventScheduler,
        rng: SeedLike = None,
    ) -> None:
        self.plan = plan
        self.deployment = deployment
        self.scheduler = scheduler
        self._rng = make_rng(rng)
        self.crashes_injected = 0
        self.recoveries = 0
        self._pending_recover: Dict[int, _ScheduledEvent] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, horizon: float) -> int:
        """Schedule every fault event up to ``horizon``; returns the count."""
        if self.plan.is_noop:
            return 0
        scheduled = 0
        if self.plan.crash_rate > 0:
            time = self.scheduler.now
            while True:
                time += float(self._rng.exponential(1.0 / self.plan.crash_rate))
                if time > horizon:
                    break
                self.scheduler.schedule_at(time, self._crash_random_node)
                scheduled += 1
        for partition in self.plan.partitions:
            if partition.time > horizon:
                continue
            self.scheduler.schedule_at(
                partition.time,
                lambda p=partition: self._partition_start(p),
            )
            scheduled += 1
        return scheduled

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _crash_random_node(self) -> None:
        # The cached member column replaces the historical per-event
        # sos_member_ids() list rebuild; the draw is unchanged.
        members = self.deployment.sos_member_array()
        victim = int(members[int(self._rng.integers(0, len(members)))])
        self._crash(victim)

    def _crash(self, node_id: int) -> None:
        node = self.deployment.resolve(node_id)
        if not node.crash():
            return
        self.crashes_injected += 1
        # A stale recover (left over from an earlier crash whose node the
        # defender repaired in the meantime) must not resurrect this crash
        # early: cancel it before scheduling the fresh recovery.
        stale = self._pending_recover.pop(node_id, None)
        if stale is not None:
            self.scheduler.cancel(stale)
        if math.isinf(self.plan.mean_downtime):
            return
        downtime = float(self._rng.exponential(self.plan.mean_downtime))
        self._pending_recover[node_id] = self.scheduler.schedule_after(
            downtime, lambda: self._recover(node_id)
        )

    def _recover(self, node_id: int) -> None:
        self._pending_recover.pop(node_id, None)
        if self.deployment.resolve(node_id).restore():
            self.recoveries += 1

    def _partition_start(self, partition: PartitionEvent) -> None:
        # good_members is the columnar twin of the historical
        # resolve-every-member filter (same sorted order), and every
        # chosen node is GOOD so its crash() always succeeds — the whole
        # outage lands as one bulk health write.
        members = self.deployment.good_members(partition.layer)
        count = min(
            len(members), int(math.ceil(partition.fraction * len(members)))
        )
        if count == 0:
            return
        chosen = self._rng.choice(len(members), size=count, replace=False)
        victims = [members[int(index)] for index in chosen]
        store = self._store_of(partition.layer)
        store.set_health_many(
            store.rows_of(np.asarray(victims, dtype=np.int64)), HEALTH_CRASHED
        )
        self.crashes_injected += len(victims)
        for node_id in victims:
            stale = self._pending_recover.pop(node_id, None)
            if stale is not None:
                self.scheduler.cancel(stale)
        self.scheduler.schedule_after(
            partition.duration, lambda: self._partition_end(victims)
        )

    def _store_of(self, layer: int):
        if layer == self.deployment.architecture.layers + 1:
            return self.deployment.filters.store
        return self.deployment.network.store

    def _partition_end(self, victims: List[int]) -> None:
        for node_id in victims:
            if self.deployment.resolve(node_id).restore():
                self.recoveries += 1


class RoundChurn:
    """Per-round churn for the un-clocked attack strategies.

    Matches the ``on_round_end(deployment, knowledge, round_index)``
    signature of :class:`~repro.attacks.strategies.SuccessiveStrategy`:
    after every break-in round each good SOS member crashes with
    ``crash_probability``, and each crashed member recovers with
    ``recover_probability``.
    """

    def __init__(
        self,
        crash_probability: float,
        recover_probability: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        check_probability("crash_probability", crash_probability)
        check_probability("recover_probability", recover_probability)
        self.crash_probability = crash_probability
        self.recover_probability = recover_probability
        self._rng = make_rng(rng)
        self.crashes_injected = 0
        self.recoveries = 0

    def __call__(self, deployment: SOSDeployment, knowledge, round_index: int) -> None:
        # One vectorized pass over the health column. The historical
        # scalar loop drew one uniform per *eligible* node (crashed with
        # recovery enabled, good with crashing enabled) in member order,
        # and a block ``random(k)`` consumes the stream exactly like k
        # sequential ``random()`` calls — so churn outcomes stay
        # bit-identical while a million-member round costs two gathers
        # and two bulk health writes.
        store = deployment.network.store
        rows = np.concatenate(
            [
                deployment.member_rows(layer)
                for layer in range(1, deployment.architecture.layers + 1)
            ]
        )
        health = store.health[rows]
        crashed = health == HEALTH_CRASHED
        good = health == HEALTH_GOOD
        eligible = np.zeros(len(rows), dtype=bool)
        if self.recover_probability > 0:
            eligible |= crashed
        if self.crash_probability > 0:
            eligible |= good
        drawn = np.flatnonzero(eligible)
        if len(drawn) == 0:
            return
        draws = self._rng.random(len(drawn))
        recover = crashed[drawn] & (draws < self.recover_probability)
        crash = good[drawn] & (draws < self.crash_probability)
        store.set_health_many(rows[drawn[recover]], HEALTH_GOOD)
        store.set_health_many(rows[drawn[crash]], HEALTH_CRASHED)
        self.recoveries += int(recover.sum())
        self.crashes_injected += int(crash.sum())


def compose_round_hooks(*hooks) -> Optional[object]:
    """Chain several ``on_round_end`` hooks into one callable.

    ``None`` entries are skipped; with no live hooks the result is
    ``None`` (so callers can pass it straight through to
    ``SuccessiveStrategy.execute``).
    """
    live = [hook for hook in hooks if hook is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(deployment, knowledge, round_index):
        for hook in live:
            hook(deployment, knowledge, round_index)

    return chained
