"""Benign-failure modeling: churn, failure detection, retry, checkpoints.

The paper's model only ever marks nodes *bad* through attacker action.
Real overlay deployments also lose nodes to benign causes — process
crashes, host reboots, network partitions — and detect those losses with
latency, not omnisciently. This package adds that missing resilience
layer:

* :mod:`repro.resilience.faults` — :class:`FaultPlan` /
  :class:`FaultInjector` schedule crash, recover, and layer-partition
  events on the campaign clock, independent of the attack;
* :mod:`repro.resilience.detector` — a heartbeat-style
  :class:`FailureDetector` with a configurable detection timeout and
  false-positive rate, feeding the repairing defender *detected* (rather
  than omnisciently known) bad nodes;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, bounded per-hop
  retry with deterministic seeded backoff for
  :meth:`~repro.sos.protocol.SOSProtocol.send`;
* :mod:`repro.resilience.checkpoint` — JSON checkpoint/resume state for
  crash-tolerant Monte-Carlo campaigns (corrupt files are quarantined,
  never fatal);
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  windowed closed/open/half-open state machine the evaluation service
  (:mod:`repro.service`) wraps around its worker pool.

Everything here is strictly opt-in: with a zero-churn plan, no detector,
and no retry policy, every simulation reproduces the seed behavior
bit-for-bit.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.resilience.detector import DetectorConfig, FailureDetector
from repro.resilience.faults import (
    ZERO_CHURN,
    FaultInjector,
    FaultPlan,
    PartitionEvent,
    RoundChurn,
    compose_round_hooks,
)
from repro.resilience.retry import DEFAULT_RETRY, RetryPolicy

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "LEGAL_TRANSITIONS",
    "CampaignCheckpoint",
    "DetectorConfig",
    "FailureDetector",
    "FaultInjector",
    "FaultPlan",
    "PartitionEvent",
    "RetryPolicy",
    "RoundChurn",
    "DEFAULT_RETRY",
    "ZERO_CHURN",
    "compose_round_hooks",
]
