"""Heartbeat-style failure detection with latency and false alarms.

The seed's :class:`~repro.repair.defender.RepairingDefender` detects bad
nodes omnisciently (an i.i.d. coin per bad node per scan). Real monitors
observe missed heartbeats: a node must be continuously unresponsive for a
*detection timeout* before it is flagged, and healthy nodes are
occasionally flagged by mistake. :class:`FailureDetector` models exactly
that and plugs into the defender, so repair acts on *detected* rather
than known-bad nodes.

With ``timeout=0`` and ``false_positive_rate=0`` the detector flags every
currently-bad node at every scan — identical to an omniscient scan with
detection probability 1, which is what keeps resilience-enabled runs
bit-compatible with the seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.errors import SimulationError
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng
from repro.utils.validation import check_probability


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Tuning of the heartbeat monitor.

    Attributes
    ----------
    timeout:
        How long a node must be continuously unresponsive (bad) before
        the detector confirms the failure. ``0`` = instantaneous.
    false_positive_rate:
        Per-scan probability that a healthy node is flagged anyway
        (spurious repair work that eats defender capacity).
    """

    timeout: float = 0.0
    false_positive_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout < 0:
            raise SimulationError(f"timeout must be >= 0, got {self.timeout}")
        check_probability("false_positive_rate", self.false_positive_rate)


#: Perfect monitoring: every bad node flagged immediately, no false alarms.
INSTANT_DETECTION = DetectorConfig()


class FailureDetector:
    """Tracks when each SOS member was first seen unresponsive.

    The detector owns its RNG stream (for false positives), so installing
    one never perturbs defender, attacker, or probe randomness.
    """

    def __init__(
        self, config: DetectorConfig = INSTANT_DETECTION, rng: SeedLike = None
    ) -> None:
        self.config = config
        self._rng = make_rng(rng)
        self._suspected_since: Dict[int, float] = {}
        self.false_alarms = 0
        self.scans = 0

    def scan(self, deployment: SOSDeployment, now: float) -> List[int]:
        """One heartbeat sweep at time ``now``; returns detected node ids.

        Detected = bad for at least ``timeout`` time units, in
        layer-membership order (the same order the omniscient scan uses),
        plus any false-positive healthy nodes.
        """
        self.scans += 1
        detected: List[int] = []
        seen_bad = set()
        for layer in range(1, deployment.architecture.layers + 2):
            for node_id in deployment.layer_members(layer):
                node = deployment.resolve(node_id)
                if node.is_bad:
                    seen_bad.add(node_id)
                    since = self._suspected_since.setdefault(node_id, now)
                    if now - since >= self.config.timeout:
                        detected.append(node_id)
                else:
                    self._suspected_since.pop(node_id, None)
                    if (
                        self.config.false_positive_rate > 0
                        and self._rng.random() < self.config.false_positive_rate
                    ):
                        self.false_alarms += 1
                        detected.append(node_id)
        # Drop suspicion timestamps for nodes that disappeared from the
        # membership (re-enrollment via reassign_membership).
        for node_id in list(self._suspected_since):
            if node_id not in seen_bad:
                self._suspected_since.pop(node_id, None)
        return detected

    def forget(self, node_id: int) -> None:
        """Clear suspicion state after a node was repaired or restored."""
        self._suspected_since.pop(node_id, None)
