"""Crash-tolerant campaign state: JSON checkpoint and resume.

A long Monte-Carlo campaign should survive both a failing trial and a
dying process. :class:`CampaignCheckpoint` persists per-trial outcomes
(success fraction + per-layer bad counts, or the error that killed the
trial) keyed by trial index, plus a fingerprint of the experiment
configuration so a checkpoint can never be resumed against different
parameters.

Because every trial draws from its own
:class:`~repro.utils.seeding.SeedSequenceFactory` stream, a resumed run
replays the *exact* streams of the trials it skips or retries — resuming
an interrupted campaign yields bit-identical aggregates to an
uninterrupted run with the same seed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import warnings
from typing import Any, Dict, Optional

from repro.errors import SimulationError

_FORMAT_VERSION = 1

_LOG = logging.getLogger(__name__)


def fingerprint(payload: Dict[str, Any]) -> str:
    """Stable hash of an experiment configuration dictionary."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class CampaignCheckpoint:
    """Per-trial campaign state persisted as one JSON file.

    Trial records are either ``{"p": float, "bad": {layer: count}}`` for a
    completed trial or ``{"error": str}`` for a failed one; failed trials
    are retried on resume (their RNG streams are reproducible, so a
    transient failure heals without skewing the estimate).
    """

    def __init__(self, path: str, config_fingerprint: str) -> None:
        self.path = path
        self.config_fingerprint = config_fingerprint
        self.trials: Dict[int, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load_or_create(
        cls, path: str, config_fingerprint: str
    ) -> "CampaignCheckpoint":
        """Resume from ``path`` when compatible, else start fresh.

        A checkpoint written under a *different* configuration raises
        :class:`SimulationError` rather than silently mixing results.

        A checkpoint that cannot be *parsed* — truncated by a crash that
        beat the atomic rename of a prior format, a disk-full partial
        write, stray bytes — is not fatal: the bad file is quarantined to
        ``<path>.corrupt`` and the campaign starts fresh with a
        degraded-coverage warning. Losing checkpointed trials only costs
        recomputation; per-trial RNG streams keep the rerun bit-identical.
        """
        checkpoint = cls(path, config_fingerprint)
        if not os.path.exists(path):
            return checkpoint
        try:
            with open(path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
            trials = {
                int(index): record for index, record in state["trials"].items()
            }
        except (
            json.JSONDecodeError,
            UnicodeDecodeError,
            KeyError,
            TypeError,
            ValueError,
            AttributeError,
        ) as exc:
            cls._quarantine(path, exc)
            return checkpoint
        if state.get("fingerprint") != config_fingerprint:
            raise SimulationError(
                f"checkpoint {path} was written by a different experiment "
                f"configuration (fingerprint {state.get('fingerprint')!r} != "
                f"{config_fingerprint!r}); delete it or change the path"
            )
        checkpoint.trials = trials
        return checkpoint

    @staticmethod
    def _quarantine(path: str, cause: Exception) -> None:
        """Move an unparseable checkpoint aside and warn about coverage."""
        quarantine_path = f"{path}.corrupt"
        try:
            os.replace(path, quarantine_path)
        except OSError:
            # Quarantine is best-effort: if even the rename fails the next
            # save() will overwrite the bad file atomically anyway.
            quarantine_path = "<unmovable>"
        message = (
            f"checkpoint {path} is corrupt ({type(cause).__name__}: {cause}); "
            f"quarantined to {quarantine_path} and starting fresh — "
            "previously checkpointed trials will be recomputed (degraded "
            "coverage until the campaign catches back up)"
        )
        _LOG.warning(message)
        warnings.warn(message, RuntimeWarning, stacklevel=4)

    def save(self) -> None:
        """Atomically persist current state (write temp file, then rename)."""
        state = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.config_fingerprint,
            "trials": {
                str(index): record for index, record in sorted(self.trials.items())
            },
        }
        temp_path = f"{self.path}.tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(state, handle)
        os.replace(temp_path, self.path)

    # ------------------------------------------------------------------
    # Trial bookkeeping
    # ------------------------------------------------------------------
    def record_success(
        self, trial: int, p: float, bad_counts: Dict[int, int]
    ) -> None:
        self.trials[trial] = {
            "p": p,
            "bad": {str(layer): count for layer, count in bad_counts.items()},
        }

    def record_failure(self, trial: int, error: str) -> None:
        self.trials[trial] = {"error": error}

    def completed(self, trial: int) -> Optional[Dict[str, Any]]:
        """The stored success record for ``trial``, or None.

        Failed trials return None so the estimator retries them.
        """
        record = self.trials.get(trial)
        if record is None or "error" in record:
            return None
        return record

    @property
    def failed_trials(self) -> Dict[int, str]:
        return {
            trial: record["error"]
            for trial, record in sorted(self.trials.items())
            if "error" in record
        }
