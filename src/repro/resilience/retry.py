"""Bounded retry with deterministic seeded backoff for SOS forwarding.

The seed's forwarder picks uniformly among the *good* nodes of a
neighbor table — an omniscient shortcut. Under churn a node does not
know which neighbors are up; it tries one, times out, backs off, and
tries another. :class:`RetryPolicy` bounds that loop (per-hop attempt
budget, exponential backoff with optional seeded jitter) and
:meth:`~repro.sos.protocol.SOSProtocol.send` uses it to produce
receipts that record attempts, retries, accumulated backoff, and a
failure-cause taxonomy. All randomness flows through the caller's
generator, so a fixed seed yields an identical ``hop_trail`` and retry
count every run.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How hard one hop tries before declaring the next layer unreachable.

    Attributes
    ----------
    max_attempts_per_hop:
        Total neighbor picks per hop, first try included. The effective
        budget never exceeds the table size (each neighbor is tried at
        most once).
    backoff_base:
        Delay charged before the first retry.
    backoff_factor:
        Multiplier applied to the delay on each further retry.
    jitter:
        Width of the uniform jitter added to every retry delay, drawn
        from the send RNG (deterministic under a fixed seed).
    decorrelated:
        When True, replace the exponential schedule with *decorrelated
        jitter* (Exponential Backoff And Jitter, AWS Architecture blog):
        each delay is drawn uniformly from ``[backoff_base,
        previous_delay * backoff_factor]`` and capped at ``max_backoff``.
        A population of retriers on independent streams spreads out
        instead of synchronizing into retry storms — the failure mode the
        deterministic schedule exhibits under shared-fate outages. Draws
        flow through the caller's generator, so fixed seeds stay
        reproducible.
    max_backoff:
        Upper cap on any single decorrelated delay (ignored by the
        deterministic schedule, whose growth the attempt budget bounds).
    failover_all_contacts:
        When True, the access layer ignores the per-hop budget and fails
        over across the client's *entire* ``m_1`` contact list.
    """

    max_attempts_per_hop: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    jitter: float = 0.0
    decorrelated: bool = False
    max_backoff: float = 30.0
    failover_all_contacts: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts_per_hop < 1:
            raise ConfigurationError(
                f"max_attempts_per_hop must be >= 1, "
                f"got {self.max_attempts_per_hop}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.max_backoff <= 0:
            raise ConfigurationError(
                f"max_backoff must be > 0, got {self.max_backoff}"
            )
        if self.decorrelated and self.backoff_base <= 0:
            raise ConfigurationError(
                "decorrelated jitter needs backoff_base > 0 "
                f"(got {self.backoff_base}): the base is the lower bound "
                "of every uniform draw"
            )

    def delay(
        self, retry_index: int, generator, previous: "float | None" = None
    ) -> float:
        """Backoff before retry number ``retry_index`` (0-based).

        ``previous`` is the delay charged for the *prior* retry of the
        same operation (None on the first). The deterministic schedule
        ignores it; decorrelated jitter feeds on it, so callers running a
        retry loop should thread each returned delay back in.
        """
        if self.decorrelated:
            anchor = self.backoff_base if previous is None else previous
            high = max(self.backoff_base, anchor * self.backoff_factor)
            span = high - self.backoff_base
            delay = self.backoff_base + span * float(generator.random())
            return min(self.max_backoff, delay)
        delay = self.backoff_base * (self.backoff_factor**retry_index)
        if self.jitter > 0:
            delay += self.jitter * float(generator.random())
        return delay

    def budget_for(self, table_size: int, access_layer: bool) -> int:
        """Attempt budget for one hop over a table of ``table_size``."""
        if access_layer and self.failover_all_contacts:
            return table_size
        return min(self.max_attempts_per_hop, table_size)


#: A sane default: three tries per hop, full access-point failover.
DEFAULT_RETRY = RetryPolicy()
