"""System-compiler backend for the compiled hot-path tier.

When numba is not installed (it is an *optional* extra — see
``repro[compiled]``), the compiled tier can still run anywhere a C
toolchain exists: the kernels below are compiled once per machine with
the system ``cc`` into a small shared library and bound through
:mod:`ctypes`. The build is hermetic — one translation unit, no headers
beyond the C standard library, no network — and cached on a hash of the
source, so the first ``tier="compiled"`` run pays ~1 second of compile
and every later run (or process) reuses the ``.so``.

Bit-identity is the whole point, so the C code replays the numpy tier's
arithmetic operation for operation on IEEE doubles: the same multiplies,
the same left-to-right additions, the same comparisons. Two compiler
flags guard that contract:

* ``-ffp-contract=off`` — no fused multiply-adds; a contracted
  ``a * b + c`` rounds once where numpy rounds twice, which is exactly
  the kind of last-bit drift the equality property tests would catch;
* no ``-ffast-math`` — reassociation would break the Lindley recursion's
  accumulated deficits.

The grouping stage deliberately avoids ``np.lexsort``: events are
counting-sorted by slot (stable, O(n)) and each group is then checked
for time order. The fast engine's event streams arrive as at most two
sorted runs per slot (time-ordered legitimate arrivals plus one
pre-sorted flood row), so the common case is an O(k) check + merge; a
stable bottom-up mergesort covers arbitrary inputs. The resulting
permutation is element-for-element the one ``np.lexsort((times, slots))``
produces (slot, then time, then original index), so downstream accept
decisions see events in the identical order.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

__all__ = ["load_library", "build_error"]

C_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <float.h>

/* ------------------------------------------------------------------ */
/* Stable per-group time sort over an index array.                     */
/* ------------------------------------------------------------------ */

static void merge_runs(const double *t, int64_t *idx, int64_t lo,
                       int64_t mid, int64_t hi, int64_t *tmp)
{
    int64_t i = lo, j = mid, k = 0;
    while (i < mid && j < hi) {
        /* strict < from the right keeps equal keys in left-run order:
           stable, matching np.lexsort's tie behaviour. */
        if (t[idx[j]] < t[idx[i]])
            tmp[k++] = idx[j++];
        else
            tmp[k++] = idx[i++];
    }
    while (i < mid)
        tmp[k++] = idx[i++];
    while (j < hi)
        tmp[k++] = idx[j++];
    memcpy(idx + lo, tmp, (size_t)k * sizeof(int64_t));
}

static void sort_group(const double *t, int64_t *idx, int64_t k,
                       int64_t *tmp)
{
    int64_t d = 1, e;
    if (k < 2)
        return;
    while (d < k && t[idx[d]] >= t[idx[d - 1]])
        d++;
    if (d == k)
        return; /* already sorted: the overwhelmingly common case */
    e = d + 1;
    while (e < k && t[idx[e]] >= t[idx[e - 1]])
        e++;
    if (e == k) { /* two sorted runs: one O(k) merge */
        merge_runs(t, idx, 0, d, k, tmp);
        return;
    }
    { /* arbitrary input: stable bottom-up mergesort */
        int64_t width, lo, mid, hi;
        for (width = 1; width < k; width *= 2) {
            for (lo = 0; lo < k; lo += 2 * width) {
                mid = lo + width;
                if (mid >= k)
                    break;
                hi = lo + 2 * width;
                if (hi > k)
                    hi = k;
                merge_runs(t, idx, lo, mid, hi, tmp);
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Grouped token-bucket Lindley replay (fastsim._grouped_bucket_scan). */
/* ------------------------------------------------------------------ */

void repro_bucket_scan(
    const int64_t *slots, const double *times, int64_t n, int64_t m,
    double capacity, double burst, int32_t want_flags,
    uint8_t *accept,   /* n, input order, pre-zeroed */
    int64_t *offered,  /* m, pre-zeroed */
    int64_t *accepted, /* m, pre-zeroed */
    int64_t *offsets,  /* m + 1 */
    int64_t *order,    /* n out: event index in grouped, time-sorted order */
    uint8_t *flags,    /* n out (grouped order); only written if want_flags */
    double *tsorted,   /* n out (grouped order) */
    int64_t *cursor,   /* m scratch */
    int64_t *tmp,      /* n scratch */
    double *svals      /* n scratch */
)
{
    int64_t i, s;
    double limit = burst - 1.0;

    /* counting sort by slot, stable in input order */
    memset(offsets, 0, (size_t)(m + 1) * sizeof(int64_t));
    for (i = 0; i < n; i++)
        offsets[slots[i] + 1]++;
    for (s = 0; s < m; s++)
        offsets[s + 1] += offsets[s];
    memcpy(cursor, offsets, (size_t)m * sizeof(int64_t));
    for (i = 0; i < n; i++)
        order[cursor[slots[i]]++] = i;

    for (s = 0; s < m; s++) {
        int64_t lo = offsets[s];
        int64_t k = offsets[s + 1] - lo;
        int64_t j;
        double w, zmax;
        if (k == 0)
            continue;
        sort_group(times, order + lo, k, tmp);
        offered[s] = k;

        /* all-accept closed form: w_i = max(w_{i-1}, s_i - i),
           z_i = (w_i + (i + 1)) - s_i — numpy's
           maximum.accumulate(s - arange) and w + arange(1,..) - s. */
        w = -DBL_MAX;
        zmax = -DBL_MAX;
        for (j = 0; j < k; j++) {
            double sv = times[order[lo + j]] * capacity;
            double cand = sv - (double)j;
            double z;
            svals[lo + j] = sv;
            tsorted[lo + j] = times[order[lo + j]];
            if (cand > w)
                w = cand;
            z = (w + (double)(j + 1)) - sv;
            if (z > zmax)
                zmax = z;
        }
        if (zmax <= burst) {
            for (j = 0; j < k; j++)
                accept[order[lo + j]] = 1;
            accepted[s] = k;
        } else {
            /* exact Lindley replay with run-skipping, the numpy tier's
               per-group fallback loop verbatim */
            double z = 0.0, y = 0.0;
            int64_t acc = 0;
            j = 0;
            while (j < k) {
                double si = svals[lo + j];
                double zp = z - (si - y);
                if (zp < 0.0)
                    zp = 0.0;
                if (zp <= limit) {
                    accept[order[lo + j]] = 1;
                    z = zp + 1.0;
                    y = si;
                    acc++;
                    j++;
                } else {
                    /* bisect_left over svals for y + (z - limit) */
                    double target = y + (z - limit);
                    int64_t a = j, b = k;
                    while (a < b) {
                        int64_t mid = a + (b - a) / 2;
                        if (svals[lo + mid] < target)
                            a = mid + 1;
                        else
                            b = mid;
                    }
                    j = a;
                }
            }
            accepted[s] = acc;
        }

        if (want_flags) {
            /* NodeCapacity.is_congested after every event:
               total >= 10 and drops / total >= 0.5 */
            int64_t drops = 0;
            for (j = 0; j < k; j++) {
                int64_t total = j + 1;
                if (!accept[order[lo + j]])
                    drops++;
                flags[lo + j] =
                    (total >= 10 &&
                     ((double)drops / (double)total) >= 0.5)
                        ? 1
                        : 0;
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* Fused congestion lookup + uniform routing (fastsim._congested_at +  */
/* fastsim._route_uniform).                                            */
/* ------------------------------------------------------------------ */

void repro_route(
    const double *u, const int64_t *nbr, const uint8_t *healthy,
    const double *decision_t, int64_t rows, int64_t cols, int64_t m,
    const int64_t *tl_offsets, /* m + 1; NULL-free: pass zeros for none */
    const double *tl_times, const uint8_t *tl_flags,
    int64_t *cursor,       /* m scratch */
    uint8_t *live_scratch, /* cols scratch */
    uint8_t *routable,     /* rows out */
    int64_t *chosen        /* rows out */
)
{
    int64_t r, c, s;
    int64_t have_events = tl_offsets[m];
    /* Decision times arrive nondecreasing from the hop-synchronous
       engine, so each slot's timeline can be consumed by a marching
       cursor instead of a fresh binary search per (row, col):
       amortized O(rows * cols + events) instead of
       O(rows * cols * log events). Unsorted inputs keep the exact
       searchsorted semantics via the fallback branch. */
    int monotone = 1;
    for (r = 1; r < rows; r++) {
        if (decision_t[r] < decision_t[r - 1]) {
            monotone = 0;
            break;
        }
    }
    if (monotone && have_events) {
        for (s = 0; s < m; s++)
            cursor[s] = tl_offsets[s];
    }
    for (r = 0; r < rows; r++) {
        double t = decision_t[r];
        int64_t live_count = 0;
        int64_t pick, seen, col;
        for (c = 0; c < cols; c++) {
            int64_t slot = nbr[r * cols + c];
            uint8_t ok = healthy[r * cols + c];
            if (ok && have_events) {
                /* searchsorted(times, t, side="right") - 1, then flag */
                int64_t base = tl_offsets[slot];
                int64_t b = tl_offsets[slot + 1];
                int64_t a;
                if (monotone) {
                    a = cursor[slot];
                    while (a < b && tl_times[a] <= t)
                        a++;
                    cursor[slot] = a;
                } else {
                    a = base;
                    while (a < b) {
                        int64_t mid = a + (b - a) / 2;
                        if (tl_times[mid] <= t)
                            a = mid + 1;
                        else
                            b = mid;
                    }
                }
                if (a > base && tl_flags[a - 1])
                    ok = 0;
            }
            live_scratch[c] = ok;
            live_count += ok;
        }
        if (live_count == 0) {
            routable[r] = 0;
            chosen[r] = -1;
            continue;
        }
        routable[r] = 1;
        /* min(int(u * k), k - 1): identical truncation to
           (u * counts).astype(int64) */
        pick = (int64_t)(u[r] * (double)live_count);
        if (pick > live_count - 1)
            pick = live_count - 1;
        seen = 0;
        col = cols - 1;
        for (c = 0; c < cols; c++) {
            seen += live_scratch[c];
            if (seen == pick + 1) {
                col = c;
                break;
            }
        }
        chosen[r] = nbr[r * cols + col];
    }
}

/* ------------------------------------------------------------------ */
/* Streaming Welford fold (PacketSimReport.record_latency).            */
/* ------------------------------------------------------------------ */

void repro_welford(
    const double *values, int64_t n,
    int64_t *count, double *mean, double *m2, double *maxv)
{
    int64_t i;
    int64_t c = *count;
    double mu = *mean, acc = *m2, mx = *maxv;
    for (i = 0; i < n; i++) {
        double v = values[i];
        double delta = v - mu;
        c++;
        mu += delta / (double)c;
        acc += delta * (v - mu);
        if (v > mx)
            mx = v;
    }
    *count = c;
    *mean = mu;
    *m2 = acc;
    *maxv = mx;
}

/* ------------------------------------------------------------------ */
/* Batched CUSUM/EWMA change-point scan (detection._detection_bin).    */
/* ------------------------------------------------------------------ */

void repro_detect(
    const double *series, int64_t rows, int64_t bins,
    const double *mean, const double *sigma,
    int64_t start, int32_t method, /* 0 = cusum, 1 = ewma */
    double threshold, double drift, double alpha,
    int64_t *out /* rows; -1 = never flagged */
)
{
    int64_t r, i;
    for (r = 0; r < rows; r++) {
        const double *row = series + r * bins;
        out[r] = -1;
        if (method == 0) {
            double statistic = 0.0;
            for (i = start; i < bins; i++) {
                double deviation = (row[i] - mean[r]) / sigma[r];
                double next = (statistic + deviation) - drift;
                statistic = next < 0.0 ? 0.0 : next;
                if (statistic > threshold) {
                    out[r] = i;
                    break;
                }
            }
        } else {
            double smoothed = mean[r];
            for (i = start; i < bins; i++) {
                smoothed = alpha * row[i] + (1.0 - alpha) * smoothed;
                if ((smoothed - mean[r]) / sigma[r] > threshold) {
                    out[r] = i;
                    break;
                }
            }
        }
    }
}
"""

#: Flags that pin IEEE semantics: no FMA contraction, no fast-math.
CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_LIBRARY: Optional[ctypes.CDLL] = None
_LOAD_ATTEMPTED = False
_BUILD_ERROR: Optional[str] = None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_CC_CACHE")
    if override:
        return override
    return os.path.join(
        tempfile.gettempdir(), f"repro-cc-{os.getuid()}"
    )


def _find_compiler() -> Optional[str]:
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(compiler: str, directory: str, target: str) -> None:
    os.makedirs(directory, exist_ok=True)
    source_path = os.path.join(directory, "repro_kernels.c")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(C_SOURCE)
    scratch = target + f".tmp{os.getpid()}"
    subprocess.run(
        [compiler, *CFLAGS, "-o", scratch, source_path],
        check=True,
        capture_output=True,
        text=True,
    )
    os.replace(scratch, target)  # atomic: concurrent builders converge


def _bind(library: ctypes.CDLL) -> ctypes.CDLL:
    i64p = ctypes.POINTER(ctypes.c_int64)
    f64p = ctypes.POINTER(ctypes.c_double)
    u8p = ctypes.POINTER(ctypes.c_uint8)
    library.repro_bucket_scan.restype = None
    library.repro_bucket_scan.argtypes = [
        i64p, f64p, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_double, ctypes.c_double, ctypes.c_int32,
        u8p, i64p, i64p, i64p, i64p, u8p, f64p, i64p, i64p, f64p,
    ]
    library.repro_route.restype = None
    library.repro_route.argtypes = [
        f64p, i64p, u8p, f64p,
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        i64p, f64p, u8p, i64p, u8p, u8p, i64p,
    ]
    library.repro_welford.restype = None
    library.repro_welford.argtypes = [f64p, ctypes.c_int64, i64p, f64p, f64p, f64p]
    library.repro_detect.restype = None
    library.repro_detect.argtypes = [
        f64p, ctypes.c_int64, ctypes.c_int64, f64p, f64p,
        ctypes.c_int64, ctypes.c_int32,
        ctypes.c_double, ctypes.c_double, ctypes.c_double, i64p,
    ]
    return library


def build_error() -> Optional[str]:
    """Why the last :func:`load_library` attempt failed (None = no failure)."""
    return _BUILD_ERROR


def load_library() -> Optional[ctypes.CDLL]:
    """Compile (once, cached on a source hash) and load the kernel library.

    Returns ``None`` when no C compiler is available or the build fails;
    the reason is kept for :func:`build_error` so the tier-resolution
    warning can say *why* the compiled tier degraded.
    """
    global _LIBRARY, _LOAD_ATTEMPTED, _BUILD_ERROR
    if _LOAD_ATTEMPTED:
        return _LIBRARY
    _LOAD_ATTEMPTED = True
    compiler = _find_compiler()
    if compiler is None:
        _BUILD_ERROR = "no C compiler on PATH (tried $REPRO_CC, cc, gcc, clang)"
        return None
    digest = hashlib.sha256(C_SOURCE.encode("utf-8")).hexdigest()[:16]
    directory = _cache_dir()
    target = os.path.join(directory, f"repro_kernels_{digest}.so")
    try:
        if not os.path.exists(target):
            _compile(compiler, directory, target)
        _LIBRARY = _bind(ctypes.CDLL(target))
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = ""
        if isinstance(exc, subprocess.CalledProcessError):
            detail = f": {exc.stderr}" if exc.stderr else ""
        _BUILD_ERROR = f"cc backend build failed ({exc}{detail})"
        _LIBRARY = None
    return _LIBRARY


def _reset_for_tests() -> None:
    """Forget the cached load attempt (test hook)."""
    global _LIBRARY, _LOAD_ATTEMPTED, _BUILD_ERROR
    _LIBRARY = None
    _LOAD_ATTEMPTED = False
    _BUILD_ERROR = None
