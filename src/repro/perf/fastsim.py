"""Vectorized fast path for the packet-level flooding simulation.

The event-driven engine in :mod:`repro.simulation.packet_sim` schedules
one closure per packet per hop; at production scale (thousands of
clients, hundreds of thousands of packets) the heap churn dominates the
run. This module replays the same physics in hop-synchronous numpy
batches:

1. **Pre-sampling** — every Poisson arrival time (client injections and
   per-node attack floods) is drawn up front with vectorized
   exponentials instead of one ``rng.exponential`` per event.
2. **Integer encoding** — the deployment is flattened into contiguous
   arrays: ``node_id -> slot`` indices, one neighbor matrix per layer,
   and flat float arrays for token-bucket state.
3. **Hop-synchronous advance** — all packets traverse layer ``h``
   together. Per-node token buckets are replayed exactly (floods and
   legitimate arrivals merged in time order, same accept/drop
   arithmetic as :class:`~repro.simulation.capacity.NodeCapacity`) by a
   grouped scan whose sequential axis is *events per node*, not total
   events.

Fidelity contract: both engines draw from the same per-source RNG
sub-streams (one arrival stream per client, one per flood target, one
routing stream consumed packet-major in injection order), so on a
matched seed the injection schedules — ``sent`` and
``attack_packets_absorbed`` — are bit-identical, and every run in
which no packet drops (the degenerate single-packet case included)
yields a bit-identical report. The one deliberate approximation: when
a forwarding node checks whether a *next-hop* neighbor is congested,
the fast path consults a congestion timeline rebuilt from the
neighbor's attack floods plus the current hop's tentative legitimate
arrivals (two-pass routing), not the exact per-packet interleaving —
the accept/drop decision at every node the packet actually visits is
still replayed exactly. Flooded runs are therefore statistically
equivalent rather than identical: delivery ratio, per-layer drops,
and latency agree within confidence bounds
(``tests/perf/test_fastsim_equivalence.py``). The event-driven engine
remains the oracle.

``run_packet_replicas`` scales multi-replica sweeps across cores with
the PR-3 worker pattern: per-replica ``SeedSequence`` streams are
pre-spawned in the parent in replica order, so aggregates are
bit-identical for any worker count.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.errors import SimulationError
from repro.overlay.arrays import attach_columns, share_columns
from repro.perf.compiled import (
    CongestionTable,
    KernelSet,
    get_kernels,
    resolve_tier,
)
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    PacketSimReport,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import make_rng

__all__ = [
    "DeploymentArrays",
    "SlotIndex",
    "encode_deployment",
    "run_fast",
    "run_packet_replicas",
    "mean_delivery_ratio",
]


# ----------------------------------------------------------------------
# Deployment encoding
# ----------------------------------------------------------------------


class SlotIndex:
    """Read-only ``node_id -> slot`` mapping over two sorted int64 columns.

    Replaces the per-node Python dict of the historical object encoder:
    scalar queries are binary searches and :meth:`lookup` translates
    whole identifier arrays in one vectorized pass, so building the
    index for a million-node deployment is one ``argsort`` instead of a
    million dict inserts. Supports ``in`` and ``[]`` like the dict it
    replaced.

    Duplicate identifiers are rejected at construction (a two-slot id
    would make every downstream slot array ambiguous). Identifiers too
    wide for int64 (e.g. raw 2^160 hash-space names) degrade to a plain
    dict index — correct, just without the vectorized fast path.
    """

    __slots__ = ("_sorted_ids", "_sorted_slots", "_fallback")

    def __init__(self, node_ids: np.ndarray) -> None:
        ids = np.asarray(node_ids)
        wide = ids.dtype == object or (
            ids.dtype == np.uint64
            and ids.size > 0
            and int(ids.max()) > np.iinfo(np.int64).max
        )
        if wide:
            mapping: Dict[int, int] = {}
            for slot, value in enumerate(ids.reshape(-1).tolist()):
                value = int(value)
                if value in mapping:
                    raise SimulationError(
                        f"duplicate node id {value} in deployment arrays"
                    )
                mapping[value] = slot
            self._fallback: Optional[Dict[int, int]] = mapping
            self._sorted_ids = np.empty(0, dtype=np.int64)
            self._sorted_slots = np.empty(0, dtype=np.int64)
            return
        self._fallback = None
        ids64 = np.asarray(ids, dtype=np.int64)
        order = np.argsort(ids64, kind="stable")
        self._sorted_ids = np.ascontiguousarray(ids64[order])
        self._sorted_slots = np.ascontiguousarray(order.astype(np.int64))
        if len(self._sorted_ids) > 1:
            same = self._sorted_ids[1:] == self._sorted_ids[:-1]
            if bool(same.any()):
                dup = int(self._sorted_ids[1:][same][0])
                raise SimulationError(
                    f"duplicate node id {dup} in deployment arrays"
                )

    def __len__(self) -> int:
        if self._fallback is not None:
            return len(self._fallback)
        return len(self._sorted_ids)

    def __contains__(self, node_id: object) -> bool:
        if self._fallback is not None:
            return node_id in self._fallback
        index = int(np.searchsorted(self._sorted_ids, node_id))
        return (
            index < len(self._sorted_ids)
            and int(self._sorted_ids[index]) == node_id
        )

    def __getitem__(self, node_id: int) -> int:
        if self._fallback is not None:
            return self._fallback[node_id]
        index = int(np.searchsorted(self._sorted_ids, node_id))
        if (
            index < len(self._sorted_ids)
            and int(self._sorted_ids[index]) == node_id
        ):
            return int(self._sorted_slots[index])
        raise KeyError(node_id)

    def lookup(self, node_ids: np.ndarray) -> np.ndarray:
        """Vectorized ``[]``: slots of ``node_ids`` (any shape)."""
        if self._fallback is not None:
            wanted = np.asarray(node_ids)
            out = np.empty(wanted.size, dtype=np.int64)
            for position, value in enumerate(wanted.reshape(-1).tolist()):
                value = int(value)
                if value not in self._fallback:
                    raise KeyError(value)
                out[position] = self._fallback[value]
            return out.reshape(wanted.shape)
        wanted = np.asarray(node_ids, dtype=np.int64)
        if len(self._sorted_ids) == 0:
            if wanted.size:
                raise KeyError(int(wanted.flat[0]))
            return np.zeros(wanted.shape, dtype=np.int64)
        index = np.searchsorted(self._sorted_ids, wanted)
        clipped = np.minimum(index, len(self._sorted_ids) - 1)
        found = self._sorted_ids[clipped] == wanted
        if not bool(found.all()):
            raise KeyError(int(wanted[~found].flat[0]))
        return self._sorted_slots[clipped]


@dataclasses.dataclass(frozen=True)
class DeploymentArrays:
    """A deployment flattened into contiguous integer/boolean arrays.

    ``slot`` indices are 0-based positions in ``node_ids`` (sorted layer
    by layer); ``neighbors[h]`` maps each layer-``h`` slot row to the
    slots of its next-layer neighbor table.
    """

    layers: int
    node_ids: np.ndarray  # (M,) original identifiers, per slot
    slot_of: SlotIndex  # node_id -> slot
    layer_of: np.ndarray  # (M,) 1-based layer per slot
    local_of: np.ndarray  # (M,) position within the slot's layer
    members: Dict[int, np.ndarray]  # layer -> slots of its members
    neighbors: Dict[int, np.ndarray]  # layer -> (size_h, m_{h+1}) slot matrix
    is_bad: np.ndarray  # (M,) health snapshot at encode time


def _encode_structure(deployment: SOSDeployment) -> Dict[str, Any]:
    """Health-independent encoding state, cached on the wiring epochs.

    Everything here is a pure function of layer membership and neighbor
    wiring, both of which bump their store's ``wiring_epoch`` on every
    mutation — so across the repeated encodes of a replica sweep or a
    detect→repair loop this is a dict probe, not a rebuild.
    """
    net_store = deployment.network.store
    filter_store = deployment.filters.store
    key = (net_store.wiring_epoch, filter_store.wiring_epoch)
    cached = deployment._fastsim_structure
    if cached is not None and cached[0] == key:
        return cached[1]
    layers = deployment.architecture.layers
    parts = [deployment.member_array(layer) for layer in range(1, layers + 2)]
    sizes = [len(part) for part in parts]
    node_ids = np.concatenate(parts)
    layer_of = np.repeat(np.arange(1, layers + 2, dtype=np.int64), sizes)
    local_of = np.concatenate(
        [np.arange(size, dtype=np.int64) for size in sizes]
    )
    members: Dict[int, np.ndarray] = {}
    start = 0
    for layer, size in enumerate(sizes, start=1):
        members[layer] = np.arange(start, start + size, dtype=np.int64)
        start += size
    slot_of = SlotIndex(node_ids)
    neighbors: Dict[int, np.ndarray] = {}
    for layer in range(1, layers + 1):
        rows = deployment.member_rows(layer)
        lens = net_store.neighbor_len[rows]
        degree = int(lens.max(initial=0))
        if len(rows) and bool((lens != degree).any()):
            raise SimulationError(
                f"layer {layer} has ragged neighbor tables; the fast "
                "engine needs one uniform degree per layer"
            )
        neighbor_ids = net_store.neighbor_matrix(rows, degree)
        neighbors[layer] = slot_of.lookup(neighbor_ids).reshape(
            len(rows), degree
        )
    structure = {
        "layers": layers,
        "node_ids": node_ids,
        "slot_of": slot_of,
        "layer_of": layer_of,
        "local_of": local_of,
        "members": members,
        "neighbors": neighbors,
    }
    deployment._fastsim_structure = (key, structure)
    return structure


def encode_deployment(deployment: SOSDeployment) -> DeploymentArrays:
    """Flatten ``deployment`` into :class:`DeploymentArrays`.

    Borrows the overlay/filter stores' columns directly: member arrays,
    neighbor tables, and the slot index are vectorized gathers (cached
    across calls on the stores' wiring epochs), and the ``is_bad``
    health snapshot is one comparison over the health columns. The
    historical object-walking encoder survives as
    :func:`_encode_deployment_objects`, the equivalence oracle.
    """
    structure = _encode_structure(deployment)
    layers = structure["layers"]
    net_store = deployment.network.store
    filter_store = deployment.filters.store
    bad_parts = [
        net_store.health[deployment.member_rows(layer)] != 0
        for layer in range(1, layers + 1)
    ]
    bad_parts.append(
        filter_store.health[deployment.member_rows(layers + 1)] != 0
    )
    return DeploymentArrays(
        layers=layers,
        node_ids=structure["node_ids"],
        slot_of=structure["slot_of"],
        layer_of=structure["layer_of"],
        local_of=structure["local_of"],
        members=structure["members"],
        neighbors=structure["neighbors"],
        is_bad=np.concatenate(bad_parts),
    )


def _encode_deployment_objects(deployment: SOSDeployment) -> DeploymentArrays:
    """The pre-SoA encoder: walk every node object. Kept as the oracle
    :func:`encode_deployment` is property-tested against."""
    layers = deployment.architecture.layers
    node_ids: List[int] = []
    layer_of: List[int] = []
    members: Dict[int, np.ndarray] = {}
    slot_of: Dict[int, int] = {}
    local_of: List[int] = []
    for layer in range(1, layers + 2):
        ids = deployment.layer_members(layer)
        start = len(node_ids)
        members[layer] = np.arange(start, start + len(ids), dtype=np.int64)
        for local, node_id in enumerate(ids):
            slot_of[node_id] = len(node_ids)
            node_ids.append(node_id)
            layer_of.append(layer)
            local_of.append(local)
    is_bad = np.array(
        [deployment.resolve(node_id).is_bad for node_id in node_ids], dtype=bool
    )
    neighbors: Dict[int, np.ndarray] = {}
    for layer in range(1, layers + 1):
        rows = [
            [slot_of[n] for n in deployment.resolve(node_id).neighbors]
            for node_id in deployment.layer_members(layer)
        ]
        matrix = np.asarray(rows, dtype=np.int64)
        if matrix.ndim == 1:  # no members: normalize to a (0, 0) matrix
            matrix = matrix.reshape(len(rows), 0)
        neighbors[layer] = matrix
    flat_ids = np.asarray(node_ids, dtype=np.int64)
    return DeploymentArrays(
        layers=layers,
        node_ids=flat_ids,
        slot_of=SlotIndex(flat_ids),
        layer_of=np.asarray(layer_of, dtype=np.int64),
        local_of=np.asarray(local_of, dtype=np.int64),
        members=members,
        neighbors=neighbors,
        is_bad=is_bad,
    )


# ----------------------------------------------------------------------
# Poisson pre-sampling
# ----------------------------------------------------------------------


def _poisson_row(
    stream: np.random.Generator, rate: float, duration: float,
    start: float = 0.0,
) -> np.ndarray:
    """Arrival times in ``(start, duration)`` for one Poisson source.

    Draws exponential gaps in blocks from the source's dedicated stream
    and cumulative-sums them. A block draw consumes the stream
    identically to the event engine's one-gap-at-a-time draws, and
    prepending ``start`` to the cumsum input adds left to right exactly
    like the scheduler's sequential ``start + gap`` then ``now + gap``
    additions (``0.0 + x == x`` bitwise, so the default changes
    nothing), so the kept times are bit-identical to the event-driven
    source's emission times. The unused tail of the final block is
    harmless: nothing else reads the stream.
    """
    expected = rate * max(duration - start, 0.0)
    width = max(4, int(expected + 10.0 * math.sqrt(expected) + 16.0))
    gaps = stream.exponential(1.0 / rate, size=width)
    times = np.cumsum(np.concatenate([[start], gaps]))[1:]
    while times[-1] < duration:
        gaps = np.concatenate(
            [gaps, stream.exponential(1.0 / rate, size=width)]
        )
        times = np.cumsum(np.concatenate([[start], gaps]))[1:]
    return times[times < duration]


# ----------------------------------------------------------------------
# Grouped token-bucket scan
# ----------------------------------------------------------------------


def _grouped_bucket_scan(
    slots: np.ndarray,
    times: np.ndarray,
    capacity: float,
    burst: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Replay per-node token buckets over grouped events.

    ``slots``/``times`` are flat parallel event arrays (any order).
    Events are grouped by slot and replayed chronologically with the
    exact :class:`~repro.simulation.capacity.NodeCapacity` arithmetic —
    continuous refill at ``capacity`` clipped to ``burst``, one token
    per accepted offer.

    The recursion is solved in *deficit* space (``z = burst - tokens``,
    rescaled so refill rate is 1): ``z_i = max(0, z_{i-1} - Δs) + 1`` on
    accept, a Lindley recursion whose all-accept trajectory has the
    closed form ``z_i = w_i + i - s_i`` with
    ``w_i = max(w_{i-1}, s_i - (i - 1))`` — one ``maximum.accumulate``
    per node. A node whose trajectory never exceeds ``burst`` therefore
    accepts everything with zero sequential work. Overloaded nodes fall
    back to an exact loop that is O(accepted) rather than O(events):
    rejections come in runs (the bucket must drain a full token before
    the next accept), and each run is skipped with one ``searchsorted``.

    Returns ``(accept, unique_slots, accepted_per, dropped_per)`` where
    ``accept`` aligns with the *input* event order and the per-group
    arrays align with ``unique_slots``.
    """
    order = np.lexsort((times, slots))
    s_sorted = slots[order]
    t_sorted = times[order]
    unique_slots, starts, counts = np.unique(
        s_sorted, return_index=True, return_counts=True
    )
    groups = len(unique_slots)
    accept_sorted = np.empty(len(s_sorted), dtype=bool)
    accepted_per = np.empty(groups, dtype=np.int64)
    limit = burst - 1.0
    for g in range(groups):
        lo = int(starts[g])
        hi = lo + int(counts[g])
        s = t_sorted[lo:hi] * capacity
        n = hi - lo
        # All-accept closed form; valid while the deficit stays <= burst
        # (pre-accept deficit <= burst - 1 for every event).
        w = np.maximum.accumulate(s - np.arange(n))
        z_all = w + np.arange(1, n + 1) - s
        if float(z_all.max()) <= burst:
            accept_sorted[lo:hi] = True
            accepted_per[g] = n
            continue
        # Exact replay with run-skipping: from deficit ``z`` at rescaled
        # time ``y``, every event before ``y + (z - limit)`` rejects.
        # Plain Python floats + ``bisect`` over a list: the arithmetic
        # is the same IEEE doubles in the same order as the numpy
        # scalars it replaces, but without per-iteration ufunc
        # dispatch — the loop runs O(accepted) times for a saturated
        # node, which is the hot case under flooding.
        out = accept_sorted[lo:hi]
        out[:] = False
        s_list = s.tolist()
        taken_idx: List[int] = []
        z = 0.0
        y = 0.0
        i = 0
        while i < n:
            si = s_list[i]
            zp = z - (si - y)
            if zp < 0.0:
                zp = 0.0
            if zp <= limit:
                taken_idx.append(i)
                z = zp + 1.0
                y = si
                i += 1
            else:
                i = bisect.bisect_left(s_list, y + (z - limit))
        out[np.asarray(taken_idx, dtype=np.int64)] = True
        accepted_per[g] = len(taken_idx)
    accept = np.empty(len(slots), dtype=bool)
    accept[order] = accept_sorted
    dropped_per = counts - accepted_per
    return accept, unique_slots, accepted_per, dropped_per


def _scalar_bucket_scan(
    slots: np.ndarray,
    times: np.ndarray,
    capacity: float,
    burst: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-event Python replay of the grouped token-bucket scan.

    The ``scalar`` tier reference: every event runs the Lindley deficit
    recursion one at a time in plain Python floats — no closed form, no
    run skipping. Same return convention and (property-tested) identical
    decisions to :func:`_grouped_bucket_scan`; rejected events leave the
    ``(z, y)`` state untouched because the clamp at zero makes the
    deficit a pure function of the last *accept*, not of intervening
    rejects.
    """
    n = len(slots)
    slot_list = [int(value) for value in slots.tolist()]
    time_list = [float(value) for value in times.tolist()]
    order = sorted(range(n), key=lambda i: (slot_list[i], time_list[i]))
    accept = np.zeros(n, dtype=bool)
    limit = burst - 1.0
    offered: Dict[int, int] = {}
    taken: Dict[int, int] = {}
    state: Dict[int, Tuple[float, float]] = {}
    for i in order:
        slot = slot_list[i]
        s = time_list[i] * capacity
        z, y = state.get(slot, (0.0, 0.0))
        zp = z - (s - y)
        if zp < 0.0:
            zp = 0.0
        offered[slot] = offered.get(slot, 0) + 1
        if zp <= limit:
            accept[i] = True
            state[slot] = (zp + 1.0, s)
            taken[slot] = taken.get(slot, 0) + 1
    unique = sorted(offered)
    unique_slots = np.asarray(unique, dtype=np.int64)
    accepted_per = np.asarray(
        [taken.get(slot, 0) for slot in unique], dtype=np.int64
    )
    dropped_per = np.asarray(
        [offered[slot] - taken.get(slot, 0) for slot in unique],
        dtype=np.int64,
    )
    return accept, unique_slots, accepted_per, dropped_per


#: Interpreter-tier scan implementations, keyed by resolved tier name.
#: The compiled tier dispatches through :class:`KernelSet` instead.
_SCAN_BY_TIER: Dict[str, Callable[..., Tuple[np.ndarray, ...]]] = {
    "scalar": _scalar_bucket_scan,
    "numpy": _grouped_bucket_scan,
}


def _congestion_timelines(
    slots: np.ndarray,
    times: np.ndarray,
    capacity: float,
    burst: float,
    scan: Callable[..., Tuple[np.ndarray, ...]] = _grouped_bucket_scan,
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Per slot: (chronological event times, congested-after-event flags).

    Replays the merged event stream of every slot through its token
    bucket and evaluates the :attr:`NodeCapacity.is_congested` predicate
    (>= 10 offers observed and cumulative drop rate >= 0.5) after every
    event, so forwarding decisions can look up a node's congestion state
    at any instant with one ``searchsorted``.
    """
    timelines: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    if len(slots) == 0:
        return timelines
    order = np.lexsort((times, slots))
    t_sorted = times[order]
    accept, unique_slots, _, _ = scan(slots, times, capacity, burst)
    a_sorted = accept[order]
    _, starts, counts = np.unique(
        slots[order], return_index=True, return_counts=True
    )
    for g, slot in enumerate(unique_slots):
        lo = int(starts[g])
        hi = lo + int(counts[g])
        node_times = t_sorted[lo:hi]
        node_accept = a_sorted[lo:hi]
        total = np.arange(1, len(node_times) + 1)
        drops = np.cumsum(~node_accept)
        flags = (total >= 10) & (drops / total >= 0.5)
        timelines[int(slot)] = (node_times, flags)
    return timelines


def _flood_events(
    flood_slots: Sequence[int],
    flood_times: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten per-target flood rows into parallel (slots, times) arrays."""
    populated = [
        (slot, times)
        for slot, times in zip(flood_slots, flood_times)
        if len(times)
    ]
    if not populated:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    slots = np.concatenate(
        [np.full(len(times), slot, dtype=np.int64) for slot, times in populated]
    )
    times_flat = np.concatenate([times for _, times in populated])
    return slots, times_flat


def _flood_congestion_timelines(
    flood_slots: Sequence[int],
    flood_times: Sequence[np.ndarray],
    capacity: float,
    burst: float,
    scan: Callable[..., Tuple[np.ndarray, ...]] = _grouped_bucket_scan,
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Flood-only congestion timelines, keyed by flooded slot."""
    slots, times_flat = _flood_events(flood_slots, flood_times)
    if len(slots) == 0:
        return {}
    return _congestion_timelines(slots, times_flat, capacity, burst, scan)


def _route_uniform(
    u: np.ndarray,
    neighbor_slots: np.ndarray,
    live: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniform pick among each row's live neighbors.

    ``u`` holds each packet's pre-assigned uniform draw for this hop;
    the pick is ``min(int(u * k), k - 1)`` over the row's ``k`` live
    neighbors in table order — the same arithmetic the event engine
    applies to the same per-packet uniform (see
    :func:`repro.simulation.packet_sim.uniform_index`), so matching
    live sets yield matching choices, and re-evaluating with a refined
    live set consumes nothing. Returns ``(routable, chosen)``: rows
    with no live neighbor are marked unroutable and their ``chosen``
    entry is meaningless — callers must mask with ``routable``.
    """
    options = live.sum(axis=1)
    routable = options > 0
    counts = np.maximum(options, 1)
    pick = np.minimum((u * counts).astype(np.int64), counts - 1)
    ranks = np.cumsum(live, axis=1)
    choice_col = (ranks <= pick[:, None]).sum(axis=1)
    np.minimum(choice_col, live.shape[1] - 1, out=choice_col)
    chosen = neighbor_slots[np.arange(len(options)), choice_col]
    return routable, chosen


def _congested_at(
    timelines: Dict[int, Tuple[np.ndarray, np.ndarray]],
    neighbor_slots: np.ndarray,
    decision_times: np.ndarray,
) -> np.ndarray:
    """Congestion mask for a ``(packets, m)`` neighbor matrix at the
    per-packet decision times."""
    congested = np.zeros(neighbor_slots.shape, dtype=bool)
    for slot, (times, flags) in timelines.items():
        hit = neighbor_slots == slot
        if not bool(hit.any()):
            continue
        index = np.searchsorted(times, decision_times, side="right") - 1
        state = np.where(index >= 0, flags[np.maximum(index, 0)], False)
        congested |= hit & state[:, None]
    return congested


# ----------------------------------------------------------------------
# Fast engine
# ----------------------------------------------------------------------


def run_fast(
    deployment: Optional[SOSDeployment],
    config: PacketSimConfig,
    rng: Any = None,
    flood_targets: Optional[Sequence[int]] = None,
    client_contacts: Optional[Sequence[Sequence[int]]] = None,
    streams: Optional[Tuple[Sequence[np.random.Generator], np.random.Generator, np.random.Generator]] = None,
    monitor: Optional[Any] = None,
    marking: Optional[Any] = None,
    mark_master: Optional[np.random.Generator] = None,
    arrays: Optional[DeploymentArrays] = None,
    schedule: Optional[Any] = None,
) -> PacketSimReport:
    """Run the vectorized packet engine; returns a :class:`PacketSimReport`.

    Semantics mirror :meth:`PacketLevelSimulation.run`: Poisson clients
    inject from ``warmup`` to ``duration``, floods consume capacity at
    their targets without being forwarded, every arrival offers one
    token, packets route uniformly among next-layer neighbors that are
    healthy and not congested, and filter-layer acceptances count as
    deliveries at ``(layers + 1) * hop_latency`` latency.

    ``streams`` is the ``(arrival_streams, routing_rng, flood_master)``
    triple :class:`PacketLevelSimulation` spawns; when absent it is
    spawned here from ``rng`` with the identical construction, so a
    standalone ``run_fast(dep, cfg, rng=seed)`` matches
    ``PacketLevelSimulation(dep, cfg, rng=seed).run(fast=True)``.

    ``monitor`` (a :class:`~repro.detection.monitor.TrafficMonitor`)
    receives every token-bucket offer in per-layer batches; ``marking``
    (a :class:`~repro.detection.marking.MarkCollector`) receives two
    uniforms per flood packet from per-target streams spawned off
    ``mark_master`` — the identical draws the event engine makes, in
    the identical order. Both default to ``None`` at zero cost: no
    extra stream is spawned and no draw is made, so a detection-free
    fast run is bit-identical to one from before the detection
    subsystem existed.

    ``arrays`` supplies a pre-encoded :class:`DeploymentArrays`
    (shared-memory replica workers run without any deployment object at
    all); when given, ``deployment`` is only consulted to sample client
    contacts, so ``deployment=None`` is legal as long as
    ``client_contacts`` is supplied.

    ``config.tier`` selects the kernel implementation for the token
    bucket replay, congestion lookups, routing picks, and the latency
    fold: ``scalar`` (per-event Python reference), ``numpy`` (default),
    or ``compiled`` (:mod:`repro.perf.compiled`; machine code via numba
    or the bundled C backend, degrading to numpy with a one-time
    warning when neither is available). All tiers make identical RNG
    draws and identical accept/drop/route decisions, so reports are
    bit-identical across tiers wherever the numpy path is exact.

    ``schedule`` (an :class:`~repro.scenarios.schedule.InjectionSchedule`)
    contributes precompiled vector traffic: per-node attack offer rows
    merged into the flood structures and surge sources appended to the
    client injection pipeline (their routing uniforms come from the
    shared routing stream in global time order, exactly like baseline
    clients). The instants are data, not draws, so the injected
    schedule matches the event engine bit for bit.
    """
    generator = make_rng(rng)
    if arrays is None:
        if deployment is None:
            raise SimulationError(
                "run_fast needs a deployment or pre-encoded arrays"
            )
        arrays = encode_deployment(deployment)
    layers = arrays.layers
    capacity = config.node_capacity
    burst = 2.0 * config.node_capacity
    tier = resolve_tier(config.tier)
    kernels = get_kernels(tier)
    scan = _SCAN_BY_TIER.get(tier, _grouped_bucket_scan)
    total_slots = len(arrays.node_ids)
    report = PacketSimReport()

    if client_contacts is None:
        if deployment is None:
            raise SimulationError(
                "client_contacts must be supplied when running from "
                "arrays alone"
            )
        client_contacts = [
            deployment.sample_client_contacts(generator)
            for _ in range(config.clients)
        ]
    if streams is None:
        spawned = generator.spawn(config.clients + 2)
        streams = (
            spawned[: config.clients],
            spawned[config.clients],
            spawned[config.clients + 1],
        )
        # Standalone marking runs spawn the mark master *after* the main
        # streams, mirroring PacketLevelSimulation.__init__ exactly.
        if marking is not None and mark_master is None:
            mark_master = generator.spawn(1)[0]
    arrival_streams, routing_rng, flood_master = streams

    # --- precompiled scenario traffic --------------------------------
    sched_attack: Dict[int, np.ndarray] = {}
    surge_sources: Tuple[Any, ...] = ()
    if schedule is not None:
        if marking is not None:
            from repro.errors import DetectionError

            raise DetectionError(
                "packet marking does not support scheduled scenario "
                "vectors; run marking against a classic flood instead"
            )
        for node in schedule.attack_targets:
            if node not in arrays.slot_of:
                raise SimulationError(
                    f"scheduled attack target {node} is not an SOS node "
                    "or filter"
                )
        # Clip to this config's horizon with the same mask the event
        # engine applies, so shorter replays of a longer schedule agree.
        for node in schedule.attack_targets:
            row = np.asarray(schedule.attack_times[node], dtype=np.float64)
            sched_attack[int(node)] = row[row < config.duration]
        surge_sources = tuple(schedule.surge_sources)

    contact_rows = [list(contacts) for contacts in client_contacts]
    contact_rows += [list(source.contacts) for source in surge_sources]
    if len({len(row) for row in contact_rows}) > 1:
        raise SimulationError(
            "surge sources and baseline clients must share one contact "
            "degree; was the schedule compiled against a different "
            "architecture?"
        )
    if contact_rows:
        contact_matrix = arrays.slot_of.lookup(
            np.asarray(contact_rows, dtype=np.int64)
        )
    else:
        # Zero clients: keep the matrix 2-D so the entry-choice
        # arithmetic below stays shape-correct on empty inputs.
        contact_matrix = np.zeros((0, 1), dtype=np.int64)

    targets = sorted(flood_targets or ())
    for target in targets:
        if target not in arrays.slot_of:
            raise SimulationError(
                f"flood target {target} is not an SOS node or filter"
            )
    target_slots = [arrays.slot_of[t] for t in targets]

    # --- pre-sample every Poisson source -----------------------------
    injection_rows = [
        _poisson_row(stream, config.client_rate, config.duration)
        for stream in arrival_streams
    ]
    flood_streams = flood_master.spawn(len(targets)) if targets else []
    flood_rows = [
        _poisson_row(
            stream,
            config.flood_rate,
            config.duration,
            start=config.flood_start,
        )
        for stream in flood_streams
    ]
    report.attack_packets_absorbed = int(sum(len(row) for row in flood_rows))
    if marking is not None and targets:
        uncovered = set(targets) - set(marking.graph.victims())
        if uncovered:
            from repro.errors import DetectionError

            raise DetectionError(
                "marking attack graph does not cover flood targets "
                f"{sorted(uncovered)}"
            )
        if mark_master is None:
            raise SimulationError(
                "marking requires a mark_master stream when streams are "
                "supplied externally"
            )
        # Per-target mark streams in sorted-target order; a ``(n, 2)``
        # block draw consumes a stream exactly like the event engine's n
        # sequential ``random(2)`` calls (row-major), so the collected
        # tallies are bit-identical across engines.
        mark_streams = mark_master.spawn(len(targets))
        for target, mark_stream, row in zip(targets, mark_streams, flood_rows):
            if len(row):
                marking.observe_batch(
                    target, mark_stream.random((len(row), 2))
                )
    flood_by_slot = {
        slot: times for slot, times in zip(target_slots, flood_rows)
    }
    # Merge scheduled attack rows into the same per-slot structure the
    # classic flood uses; downstream (bucket scans, timelines, monitor
    # batches) cannot tell the two apart, which is the point.
    for node, times in sched_attack.items():
        slot = arrays.slot_of[node]
        if slot in flood_by_slot:
            flood_by_slot[slot] = np.sort(
                np.concatenate([flood_by_slot[slot], times])
            )
        else:
            flood_by_slot[slot] = times
    attack_slots = sorted(flood_by_slot)
    attack_rows = [flood_by_slot[slot] for slot in attack_slots]
    report.attack_packets_absorbed += int(
        sum(len(times) for times in sched_attack.values())
    )
    timelines: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    flood_table = CongestionTable.empty(total_slots)
    if kernels is not None:
        fslots, ftimes = _flood_events(attack_slots, attack_rows)
        flood_table = kernels.timeline_table(
            fslots, ftimes, total_slots, capacity, burst
        )
    else:
        timelines = _flood_congestion_timelines(
            attack_slots, attack_rows, capacity, burst, scan
        )

    # Surge sources ride the client injection pipeline: rows appended
    # after the baseline clients, matching their contact-matrix rows.
    for source in surge_sources:
        row = np.asarray(source.times, dtype=np.float64)
        injection_rows.append(row[row < config.duration])

    client_index = np.concatenate(
        [
            np.full(len(row), index, dtype=np.int64)
            for index, row in enumerate(injection_rows)
        ]
    ) if injection_rows else np.zeros(0, dtype=np.int64)
    inject_t = (
        np.concatenate(injection_rows) if injection_rows else np.zeros(0)
    )
    warm = inject_t >= config.warmup
    inject_t = inject_t[warm]
    client_index = client_index[warm]
    # Global injection order: the event engine draws each packet's
    # choice vector at its injection instant, so row k of the block
    # below must belong to the k-th post-warmup injection in time order.
    order = np.argsort(inject_t, kind="stable")
    inject_t = inject_t[order]
    client_index = client_index[order]
    report.sent = int(len(inject_t))

    # One uniform per decision, pre-assigned per packet: column 0 picks
    # the entry contact, column h the forwarding target out of layer h.
    # The event engine draws the same (layers + 1)-vector per packet at
    # injection time, so this matrix is bit-identical to its draws.
    choice_u = routing_rng.random((len(inject_t), layers + 1))
    contact_count = contact_matrix.shape[1]
    entry_choice = np.minimum(
        (choice_u[:, 0] * contact_count).astype(np.int64),
        contact_count - 1,
    )
    current = contact_matrix[client_index, entry_choice]

    # --- per-node final capacity counters (for congested_nodes) ------
    final_offers: Dict[int, Tuple[int, int]] = {}

    # Arrival clocks accumulate one hop_latency per layer — the same
    # sequence of float additions the event scheduler performs — so the
    # degenerate single-packet report matches the oracle bit for bit.
    sent_t = inject_t
    arrive_t = inject_t

    # --- hop-synchronous advance -------------------------------------
    for layer in range(1, layers + 2):
        if len(arrive_t) == 0 and not any(
            arrays.layer_of[slot] == layer for slot in attack_slots
        ):
            continue
        arrive_t = arrive_t + config.hop_latency
        arrival_t = arrive_t
        if len(arrival_t):
            report.arrivals_per_layer[layer] = (
                report.arrivals_per_layer.get(layer, 0) + int(len(arrival_t))
            )

        # Merge this layer's legitimate arrivals with the floods aimed
        # at its members, then replay every member's token bucket.
        layer_flood_slots = [
            slot for slot in attack_slots if arrays.layer_of[slot] == layer
        ]
        event_slots = [current]
        event_times = [arrival_t]
        legit_count = len(arrival_t)
        for slot in layer_flood_slots:
            event_slots.append(
                np.full(len(flood_by_slot[slot]), slot, dtype=np.int64)
            )
            event_times.append(flood_by_slot[slot])
        slots_flat = np.concatenate(event_slots)
        times_flat = np.concatenate(event_times)
        if len(slots_flat) == 0:
            continue
        if kernels is not None:
            accept_flat, unique_slots, accepted_per, dropped_per = (
                kernels.bucket_scan(
                    slots_flat, times_flat, total_slots, capacity, burst
                )
            )
        else:
            accept_flat, unique_slots, accepted_per, dropped_per = scan(
                slots_flat, times_flat, capacity, burst
            )
        if monitor is not None:
            # Every offer this layer's buckets saw (legit + flood) with
            # its accept/drop outcome — the batch mirror of the event
            # engine's per-offer ``monitor.observe`` calls.
            monitor.observe_batch(
                arrays.node_ids[slots_flat], times_flat, accept_flat
            )
        for group, slot in enumerate(unique_slots):
            final_offers[int(slot)] = (
                int(accepted_per[group]),
                int(dropped_per[group]),
            )
        accept = accept_flat[:legit_count]

        ok = accept & ~arrays.is_bad[current]
        stage_drops = int(legit_count - int(ok.sum()))
        if stage_drops:
            report.dropped_at_congested += stage_drops
            report.drops_per_layer[layer] = (
                report.drops_per_layer.get(layer, 0) + stage_drops
            )

        if layer == layers + 1:
            delivered = int(ok.sum())
            report.delivered += delivered
            latency_values = arrive_t[ok] - sent_t[ok]
            if kernels is not None and not config.keep_latencies:
                (
                    report.latency_count,
                    report.latency_mean,
                    report.latency_m2,
                    report.max_latency,
                ) = kernels.welford(
                    latency_values,
                    report.latency_count,
                    report.latency_mean,
                    report.latency_m2,
                    report.max_latency,
                )
            else:
                for value in latency_values.tolist():
                    report.record_latency(value, keep=config.keep_latencies)
            break

        sent_t = sent_t[ok]
        arrive_t = arrive_t[ok]
        decision_t = arrival_t[ok]
        choice_u = choice_u[ok]
        survivors = current[ok]
        if len(survivors) == 0:
            current = survivors
            continue
        neighbor_slots = arrays.neighbors[layer][arrays.local_of[survivors]]
        healthy_next = ~arrays.is_bad[neighbor_slots]

        # Two-pass routing. Pass 1 routes against the flood-only
        # congestion view; pass 2 rebuilds the next layer's congestion
        # timelines from its floods *plus* the tentative legitimate
        # arrivals of pass 1, then re-routes. The refinement catches
        # nodes congested by legitimate overload alone, which the
        # flood-only view cannot see (the residual error is the
        # second-order effect of re-routing on those arrival streams).
        hop_u = choice_u[:, layer]
        if kernels is not None:
            routable, chosen = kernels.route(
                hop_u, neighbor_slots, healthy_next, decision_t, flood_table
            )
        else:
            live = healthy_next & ~_congested_at(
                timelines, neighbor_slots, decision_t
            )
            routable, chosen = _route_uniform(hop_u, neighbor_slots, live)
        tentative_arrival = arrive_t + config.hop_latency
        next_flood = [
            slot for slot in attack_slots
            if arrays.layer_of[slot] == layer + 1
        ]
        ev_slots = [chosen[routable]] + [
            np.full(len(flood_by_slot[slot]), slot, dtype=np.int64)
            for slot in next_flood
        ]
        ev_times = [tentative_arrival[routable]] + [
            flood_by_slot[slot] for slot in next_flood
        ]
        # Same per-packet uniforms, refined live sets: re-evaluating is
        # free (no stream consumption) and rows whose live set did not
        # change keep their pass-1 choice.
        if kernels is not None:
            refined_table = kernels.timeline_table(
                np.concatenate(ev_slots),
                np.concatenate(ev_times),
                total_slots,
                capacity,
                burst,
            )
            routable, chosen = kernels.route(
                hop_u, neighbor_slots, healthy_next, decision_t, refined_table
            )
        else:
            refined = _congestion_timelines(
                np.concatenate(ev_slots),
                np.concatenate(ev_times),
                capacity,
                burst,
                scan,
            )
            live = healthy_next & ~_congested_at(
                refined, neighbor_slots, decision_t
            )
            routable, chosen = _route_uniform(hop_u, neighbor_slots, live)

        stranded_count = int(len(routable) - int(routable.sum()))
        if stranded_count:
            report.dropped_no_neighbor += stranded_count
            report.drops_per_layer[layer + 1] = (
                report.drops_per_layer.get(layer + 1, 0) + stranded_count
            )
        sent_t = sent_t[routable]
        arrive_t = arrive_t[routable]
        choice_u = choice_u[routable]
        current = chosen[routable]

    report.congested_nodes = sorted(
        int(arrays.node_ids[slot])
        for slot, (accepted, dropped) in final_offers.items()
        if accepted + dropped >= 10
        and dropped / (accepted + dropped) >= 0.5
    )
    return report


# ----------------------------------------------------------------------
# Process-parallel replicas (PR-3 worker pattern)
# ----------------------------------------------------------------------

#: Per-worker-process state installed by :func:`_init_replica_worker`.
_REPLICA_STATE: Dict[str, Any] = {}


def _init_replica_worker(
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    layer: Optional[int],
    fraction: float,
    fast: bool,
) -> None:
    _REPLICA_STATE["architecture"] = architecture
    _REPLICA_STATE["config"] = config
    _REPLICA_STATE["layer"] = layer
    _REPLICA_STATE["fraction"] = fraction
    _REPLICA_STATE["fast"] = fast


def _run_one_replica(
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    layer: Optional[int],
    fraction: float,
    fast: bool,
    seed: np.random.SeedSequence,
) -> PacketSimReport:
    """Deploy, pick flood targets, and simulate one replica on its own
    pre-spawned RNG stream (fully determined by ``seed``)."""
    rng = make_rng(seed)
    deployment = SOSDeployment.deploy(architecture, rng=rng)
    targets: List[int] = []
    if layer is not None and fraction > 0.0:
        targets = flood_layer(deployment, layer, fraction, rng=rng)
    simulation = PacketLevelSimulation(deployment, config, rng=rng)
    return simulation.run(flood_targets=targets, fast=fast)


def _run_replica_chunk(
    jobs: List[Tuple[int, np.random.SeedSequence]],
) -> List[Tuple[int, PacketSimReport]]:
    return [
        (
            index,
            _run_one_replica(
                _REPLICA_STATE["architecture"],
                _REPLICA_STATE["config"],
                _REPLICA_STATE["layer"],
                _REPLICA_STATE["fraction"],
                _REPLICA_STATE["fast"],
                seed,
            ),
        )
        for index, seed in jobs
    ]


# ----------------------------------------------------------------------
# Shared-deployment replicas over multiprocessing.shared_memory
# ----------------------------------------------------------------------


def _arrays_to_columns(arrays: DeploymentArrays) -> Dict[str, np.ndarray]:
    """Flatten :class:`DeploymentArrays` into the named-column form
    :func:`repro.overlay.arrays.share_columns` ships to workers."""
    sizes = np.asarray(
        [len(arrays.members[layer]) for layer in range(1, arrays.layers + 2)],
        dtype=np.int64,
    )
    named = {
        "layer_sizes": sizes,
        "node_ids": arrays.node_ids,
        "layer_of": arrays.layer_of,
        "local_of": arrays.local_of,
        "is_bad": arrays.is_bad,
    }
    for layer in range(1, arrays.layers + 1):
        named[f"neighbors_{layer}"] = arrays.neighbors[layer]
    return named


def _arrays_from_columns(named: Dict[str, np.ndarray]) -> DeploymentArrays:
    """Rebuild :class:`DeploymentArrays` over attached column views.

    Everything except the (worker-local) slot index and member ranges
    stays a zero-copy view of the shared pages.
    """
    sizes = named["layer_sizes"]
    layers = len(sizes) - 1
    members: Dict[int, np.ndarray] = {}
    start = 0
    for layer, size in enumerate(sizes.tolist(), start=1):
        members[layer] = np.arange(start, start + size, dtype=np.int64)
        start += size
    return DeploymentArrays(
        layers=layers,
        node_ids=named["node_ids"],
        slot_of=SlotIndex(named["node_ids"]),
        layer_of=named["layer_of"],
        local_of=named["local_of"],
        members=members,
        neighbors={
            layer: named[f"neighbors_{layer}"]
            for layer in range(1, layers + 1)
        },
        is_bad=named["is_bad"],
    )


def _flood_layer_arrays(
    arrays: DeploymentArrays,
    layer: int,
    fraction: float,
    rng: np.random.Generator,
) -> List[int]:
    """:func:`~repro.simulation.packet_sim.flood_layer` over the encoded
    arrays — same draw (one ``choice`` over the sorted members), no
    deployment object needed."""
    if not 0.0 < fraction <= 1.0:
        raise SimulationError(f"fraction must be in (0, 1], got {fraction}")
    member_slots = arrays.members.get(layer)
    if member_slots is None:
        raise SimulationError(
            f"layer {layer} out of range 1..{arrays.layers + 1}"
        )
    members = arrays.node_ids[member_slots]
    count = max(1, int(round(fraction * len(members))))
    chosen = rng.choice(
        len(members), size=min(count, len(members)), replace=False
    )
    return sorted(int(members[int(i)]) for i in chosen)


def _client_contacts_arrays(
    arrays: DeploymentArrays,
    architecture: SOSArchitecture,
    clients: int,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Per-client ``m_1`` access-point draws, one ``choice`` per client —
    the array twin of :meth:`SOSDeployment.sample_client_contacts`."""
    members = arrays.node_ids[arrays.members[1]]
    degree = min(architecture.mapping_degree(1), len(members))
    contacts: List[List[int]] = []
    for _ in range(clients):
        chosen = rng.choice(len(members), size=degree, replace=False)
        contacts.append([int(members[int(i)]) for i in chosen])
    return contacts


def _run_one_shared_replica(
    arrays: DeploymentArrays,
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    layer: Optional[int],
    fraction: float,
    seed: np.random.SeedSequence,
) -> PacketSimReport:
    """One replica over a shared (read-only) deployment encoding: the
    flood-target, client-contact, and packet draws all come from the
    replica's own pre-spawned stream; the deployment state is common."""
    rng = make_rng(seed)
    targets: List[int] = []
    if layer is not None and fraction > 0.0:
        targets = _flood_layer_arrays(arrays, layer, fraction, rng)
    contacts = _client_contacts_arrays(
        arrays, architecture, config.clients, rng
    )
    return run_fast(
        None,
        config,
        rng=rng,
        flood_targets=targets,
        client_contacts=contacts,
        arrays=arrays,
    )


def _init_shared_worker(
    shm_name: str,
    meta: Dict[str, Any],
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    layer: Optional[int],
    fraction: float,
) -> None:
    named, shm = attach_columns(shm_name, meta)
    _REPLICA_STATE["shared_arrays"] = _arrays_from_columns(named)
    _REPLICA_STATE["shared_shm"] = shm  # keep the mapping alive
    _REPLICA_STATE["architecture"] = architecture
    _REPLICA_STATE["config"] = config
    _REPLICA_STATE["layer"] = layer
    _REPLICA_STATE["fraction"] = fraction


def _run_shared_chunk(
    jobs: List[Tuple[int, np.random.SeedSequence]],
) -> List[Tuple[int, PacketSimReport]]:
    return [
        (
            index,
            _run_one_shared_replica(
                _REPLICA_STATE["shared_arrays"],
                _REPLICA_STATE["architecture"],
                _REPLICA_STATE["config"],
                _REPLICA_STATE["layer"],
                _REPLICA_STATE["fraction"],
                seed,
            ),
        )
        for index, seed in jobs
    ]


def run_packet_replicas(
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    replicas: int,
    flood_layer_index: Optional[int] = None,
    flood_fraction: float = 1.0,
    seed: Optional[int] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    fast: bool = True,
    deployment: Optional[SOSDeployment] = None,
) -> List[PacketSimReport]:
    """Run independent packet-sim replicas, optionally across processes.

    Each replica deploys a fresh SOS instance, floods ``flood_fraction``
    of layer ``flood_layer_index`` (no flood when ``None``), and runs
    the selected engine. Replica RNG streams are pre-spawned here in
    replica order and reports are returned in replica order, so the
    result is bit-identical for any ``workers`` value — the same
    guarantee the parallel Monte Carlo estimator carries.

    ``deployment`` switches to **shared-deployment** mode: every replica
    runs over that one deployment's encoded arrays (health snapshot
    included) and only the flood-target, client-contact, and packet
    draws vary per replica. Across processes the encoding travels as
    one ``multiprocessing.shared_memory`` segment — workers map the
    parent's pages read-only, zero copies and no per-worker deployment
    pickling — which is what makes million-node replica sweeps fit in
    memory. Requires the fast engine; worker-count invariance holds
    exactly as in fresh-deployment mode.

    ``workers=0`` means "all cores"; ``workers=1`` runs in-process.
    """
    if replicas < 1:
        raise SimulationError(f"replicas must be >= 1, got {replicas}")
    if workers < 0:
        raise SimulationError(
            f"workers must be >= 0 (0 means all cores), got {workers}"
        )
    if chunk_size is not None and chunk_size < 1:
        raise SimulationError(f"chunk_size must be >= 1, got {chunk_size}")
    if deployment is not None and not fast:
        raise SimulationError(
            "shared-deployment replicas require the fast engine (fast=True)"
        )
    if deployment is not None and deployment.architecture != architecture:
        raise SimulationError(
            "deployment was built for a different architecture"
        )
    root = np.random.SeedSequence(seed)
    seeds = root.spawn(replicas)
    jobs = list(enumerate(seeds))
    resolved = workers
    if workers == 0:
        import os

        resolved = os.cpu_count() or 1
    if deployment is not None:
        arrays = encode_deployment(deployment)
        if resolved <= 1:
            results = [
                (
                    index,
                    _run_one_shared_replica(
                        arrays,
                        architecture,
                        config,
                        flood_layer_index,
                        flood_fraction,
                        seed_seq,
                    ),
                )
                for index, seed_seq in jobs
            ]
        else:
            chunk = chunk_size or max(1, math.ceil(len(jobs) / (resolved * 4)))
            parts = [jobs[i : i + chunk] for i in range(0, len(jobs), chunk)]
            shared = share_columns(_arrays_to_columns(arrays))
            results = []
            try:
                with ProcessPoolExecutor(
                    max_workers=min(resolved, len(parts)),
                    initializer=_init_shared_worker,
                    initargs=(
                        shared.name,
                        shared.meta,
                        architecture,
                        config,
                        flood_layer_index,
                        flood_fraction,
                    ),
                ) as pool:
                    for part in pool.map(_run_shared_chunk, parts):
                        results.extend(part)
            finally:
                shared.close()
    elif resolved <= 1:
        results = _run_replica_chunk_serial(
            architecture, config, flood_layer_index, flood_fraction, fast, jobs
        )
    else:
        chunk = chunk_size or max(1, math.ceil(len(jobs) / (resolved * 4)))
        parts = [jobs[i : i + chunk] for i in range(0, len(jobs), chunk)]
        results = []
        with ProcessPoolExecutor(
            max_workers=min(resolved, len(parts)),
            initializer=_init_replica_worker,
            initargs=(
                architecture,
                config,
                flood_layer_index,
                flood_fraction,
                fast,
            ),
        ) as pool:
            for part in pool.map(_run_replica_chunk, parts):
                results.extend(part)
    results.sort(key=lambda pair: pair[0])
    return [report for _, report in results]


def _run_replica_chunk_serial(
    architecture: SOSArchitecture,
    config: PacketSimConfig,
    layer: Optional[int],
    fraction: float,
    fast: bool,
    jobs: List[Tuple[int, np.random.SeedSequence]],
) -> List[Tuple[int, PacketSimReport]]:
    return [
        (
            index,
            _run_one_replica(architecture, config, layer, fraction, fast, seed),
        )
        for index, seed in jobs
    ]


def mean_delivery_ratio(reports: Sequence[PacketSimReport]) -> float:
    """Average delivery ratio over replica reports (NaN-free: replicas
    that sent nothing contribute 0, matching ``delivery_ratio``)."""
    if not reports:
        raise SimulationError("no replica reports to summarize")
    return sum(report.delivery_ratio for report in reports) / len(reports)
