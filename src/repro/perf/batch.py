"""Vectorized batch evaluation of the analytical models.

The scalar kernels in :mod:`repro.core.one_burst` and
:mod:`repro.core.successive` evaluate one ``(architecture, attack)`` pair
per call; sweeps and design-space searches call them thousands of times.
This module evaluates whole grids at once: every per-layer quantity
becomes a numpy array over the batch axis, and the round loop of
Algorithm 1 runs with an *active mask* so grid points that exhaust their
budget early simply stop updating.

Fidelity contract: each vectorized expression reproduces the scalar
kernel's arithmetic **in the same operation order** (sums accumulate
column-by-column exactly like Python's left-to-right ``sum``), so batch
results match the scalar oracle to well within 1e-12 — property tests in
``tests/perf`` enforce that bound over randomized grids. The scalar path
stays authoritative: anything :func:`evaluate_batch` cannot group (exotic
attack subclasses, budgets that the scalar kernel rejects) falls back to
:func:`repro.core.model.evaluate` point by point, raising the exact same
errors.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.model import evaluate
from repro.errors import AnalysisError, ExperimentError
from repro.utils.validation import check_probabilities

Attack = Union[OneBurstAttack, SuccessiveAttack]
ArrayLike = Union[float, Sequence[float], np.ndarray]


def _ordered_sum(columns: np.ndarray) -> np.ndarray:
    """Sum a ``(B, k)`` array over its columns in strict left-to-right
    order, matching Python's ``sum(list)`` bit for bit (numpy's pairwise
    reduction would regroup the additions)."""
    total = np.zeros(columns.shape[0])
    for index in range(columns.shape[1]):
        total = total + columns[:, index]
    return total


def _clip(values: np.ndarray, lo: ArrayLike, hi: ArrayLike) -> np.ndarray:
    """``min(hi, max(lo, values))`` — the scalar ``clamp`` operation order."""
    return np.minimum(hi, np.maximum(lo, values))


def all_bad_probability_batch(
    x: ArrayLike, y: ArrayLike, z: ArrayLike
) -> np.ndarray:
    """Vectorized ``P(x, y, z)`` (continuous extension of Eq. 1's kernel).

    Broadcasts ``x`` (population sizes), ``y`` (bad-set sizes, clamped into
    ``[0, x]``), and ``z`` (integer sample sizes) against each other and
    evaluates the same clamped product as
    :func:`repro.core.probability.all_bad_probability`, factor by factor
    and in the same order, so results agree with the scalar kernel.

    Raises
    ------
    AnalysisError
        If any ``x`` is non-positive or non-finite, any ``z`` is negative
        or non-integral, or any ``z`` exceeds its ``x``.
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    z_in = np.asarray(z)
    if not np.issubdtype(z_in.dtype, np.integer):
        z_float = np.asarray(z_in, dtype=float)
        z_arr = z_float.astype(int)
        if np.any(z_arr != z_float):
            raise AnalysisError("sample sizes z must be integers")
    else:
        z_arr = z_in.astype(int)
    if np.any(z_arr < 0):
        raise AnalysisError("sample sizes z must be >= 0")
    if np.any(~np.isfinite(x_arr)) or np.any(x_arr <= 0.0):
        raise AnalysisError("population sizes x must be finite and > 0")
    x_arr, y_arr, z_arr = np.broadcast_arrays(x_arr, y_arr, z_arr)
    if np.any(z_arr > x_arr):
        raise AnalysisError("sample size z exceeds population x")

    y_arr = np.minimum(np.maximum(y_arr, 0.0), x_arr)
    result = np.ones(x_arr.shape)
    # Once a numerator hits <= 0 the scalar kernel returns 0; `dead`
    # freezes those elements at exactly 0 while the rest keep multiplying.
    dead = np.zeros(x_arr.shape, dtype=bool)
    for k in range(int(z_arr.max(initial=0))):
        in_range = k < z_arr
        numerator = y_arr - k
        dead |= in_range & (numerator <= 0.0)
        live = in_range & ~dead
        # z <= x guarantees x - k > 0 for live elements; the guard only
        # protects the dead/out-of-range lanes np.where still evaluates.
        denominator = np.where(live, x_arr - k, 1.0)
        factor = np.where(live, numerator / denominator, 1.0)
        result = result * factor
    result = np.where(dead, 0.0, result)
    return check_probabilities(
        "P(x, y, z)", np.minimum(1.0, np.maximum(0.0, result))
    )


def hop_success_probability_batch(
    n: ArrayLike, s: ArrayLike, m: ArrayLike
) -> np.ndarray:
    """Vectorized per-hop success ``P_i = 1 - P(n_i, s_i, m_i)`` (Eq. 1)."""
    return check_probabilities("P_i", 1.0 - all_bad_probability_batch(n, s, m))


def _no_fresh_disclosure_batch(
    m: np.ndarray, n: np.ndarray, breakins: np.ndarray
) -> np.ndarray:
    """Vectorized ``(1 - m/n)^breakins`` (Eq. 3) with the scalar clamps.

    ``base ** breakins`` covers both scalar sentinels: ``breakins = 0``
    yields 1 (``0**0 == 1`` under IEEE ``pow``) and ``base = 0`` with
    positive ``breakins`` yields 0.
    """
    if np.any(n <= 0.0):
        raise AnalysisError("layer sizes n must be > 0")
    if np.any(m < 0.0) or np.any(m > n):
        raise AnalysisError("mapping degrees m out of range [0, n]")
    exponent = np.maximum(0.0, breakins)
    base = np.minimum(1.0, np.maximum(0.0, 1.0 - m / n))
    return base**exponent


# ----------------------------------------------------------------------
# One-burst attack (Section 3.1), batched over grid points
# ----------------------------------------------------------------------


def _shared_congestion_batch(
    sizes: np.ndarray,
    total: np.ndarray,
    n_c: np.ndarray,
    broken: np.ndarray,
    disclosed: np.ndarray,
) -> np.ndarray:
    """Allocate congestion budgets (Eqs. 8-9 / 25-27), batched.

    Both attack models share this allocation: congest every disclosed node
    and spread any surplus over the remaining good overlay pool (filters
    excluded, footnote 2), else congest a proportional share of the
    disclosed sets.
    """
    last = sizes.shape[1] - 1
    n_d = _ordered_sum(disclosed)
    n_b_overlay = _ordered_sum(broken[:, :last])

    surplus = n_c - n_d
    pool = total - n_b_overlay - (n_d - disclosed[:, last])
    pool_open = pool > 0.0
    fraction = np.where(
        pool_open,
        np.minimum(1.0, surplus / np.where(pool_open, pool, 1.0)),
        0.0,
    )
    congested_full = np.zeros(sizes.shape)
    for i in range(last):
        remaining = np.maximum(0.0, sizes[:, i] - broken[:, i] - disclosed[:, i])
        congested_full[:, i] = disclosed[:, i] + fraction * remaining
    congested_full[:, last] = disclosed[:, last]

    has_disclosed = n_d > 0.0
    share = np.where(
        has_disclosed, n_c / np.where(has_disclosed, n_d, 1.0), 0.0
    )
    congested_partial = share[:, None] * disclosed

    congested = np.where(
        (n_c >= n_d)[:, None], congested_full, congested_partial
    )
    return _clip(congested, 0.0, sizes)


def _one_burst_ps_batch(
    sizes: np.ndarray,
    degrees: np.ndarray,
    total: np.ndarray,
    n_t: np.ndarray,
    n_c: np.ndarray,
    p_b: np.ndarray,
) -> np.ndarray:
    """Batched §3.1 derivation; mirrors ``analyze_one_burst_breakdown``."""
    slots = sizes.shape[1]
    sos = slots - 1

    attempted = np.zeros(sizes.shape)
    broken = np.zeros(sizes.shape)
    for i in range(sos):
        attempted[:, i] = _clip(sizes[:, i] / total * n_t, 0.0, sizes[:, i])
        broken[:, i] = p_b * attempted[:, i]
    # Filter layer: cannot be broken into (columns stay zero).

    d_n = np.zeros(sizes.shape)
    d_a = np.zeros(sizes.shape)
    for i in range(1, slots):
        n_i = sizes[:, i]
        survive = _no_fresh_disclosure_batch(
            degrees[:, i].astype(float), n_i, broken[:, i - 1]
        )
        untouched = _clip(1.0 - attempted[:, i] / n_i, 0.0, 1.0)
        z_i = n_i * (1.0 - survive * untouched)
        d_n[:, i] = _clip(z_i - attempted[:, i], 0.0, n_i)
        unsuccessful = np.maximum(0.0, attempted[:, i] - broken[:, i])
        d_a[:, i] = _clip(unsuccessful * (1.0 - survive), 0.0, n_i)

    congested = _shared_congestion_batch(
        sizes, total, n_c, broken, d_n + d_a
    )
    return _path_availability_batch(sizes, degrees, broken, congested)


# ----------------------------------------------------------------------
# Successive attack (Section 3.2, Algorithm 1), batched over grid points
# ----------------------------------------------------------------------


def _successive_ps_batch(
    sizes: np.ndarray,
    degrees: np.ndarray,
    total: np.ndarray,
    n_t: np.ndarray,
    n_c: np.ndarray,
    p_b: np.ndarray,
    rounds: np.ndarray,
    p_e: np.ndarray,
) -> np.ndarray:
    """Batched Algorithm 1; mirrors ``analyze_successive_breakdown``.

    Every grid point advances through the round loop under an ``active``
    mask: a point whose budget exhausts (or whose round quota terminates
    the break-in phase) freezes its accumulators and final-round sets
    while the rest of the batch keeps iterating.
    """
    batch, slots = sizes.shape
    sos = slots - 1

    cum_attacked = np.zeros((batch, slots))
    cum_forfeited = np.zeros((batch, slots))
    cum_broken = np.zeros((batch, slots))
    cum_survived_disclosed = np.zeros((batch, slots))
    cum_disclosed_survived_random = np.zeros((batch, slots))
    cum_filter_disclosed = np.zeros(batch)

    disclosed_prev = np.zeros((batch, slots))
    disclosed_prev[:, 0] = sizes[:, 0] * p_e
    budget = n_t.astype(float).copy()
    alpha = n_t / rounds
    active = np.ones(batch, dtype=bool)

    final_d_n = np.zeros((batch, slots))
    final_d_a = np.zeros((batch, slots))
    final_forfeited = np.zeros((batch, slots))

    for round_index in range(1, int(rounds.max(initial=0)) + 1):
        if not active.any():
            break
        known = _ordered_sum(disclosed_prev[:, :sos])
        # Algorithm 1's four cases, classified per grid point.
        exhausted = known >= budget
        final_budget = ~exhausted & (budget <= alpha)
        general = ~exhausted & ~final_budget & (known < alpha)
        heavy = ~exhausted & ~final_budget & ~general

        # EXHAUSTED: break into a budget-sized slice of the disclosed
        # nodes; the remainder is forfeited to the congestion phase.
        known_open = known > 0.0
        ratio = np.where(
            known_open, budget / np.where(known_open, known, 1.0), 0.0
        )
        attacked_disclosed_ex = disclosed_prev * ratio[:, None]
        forfeited_ex = disclosed_prev - attacked_disclosed_ex
        spent_ex = np.minimum(budget, known)

        # GENERAL / FINAL_BUDGET: random attempts over untouched nodes.
        spend_target = np.where(general, alpha, budget)
        spend = spend_target - known
        pool = total - known - _ordered_sum(cum_attacked[:, :sos])
        pool_open = (spend > 0.0) & (pool > 0.0)
        attacked_random = np.zeros((batch, slots))
        safe_pool = np.where(pool_open, pool, 1.0)
        for i in range(sos):
            untouched = np.maximum(
                0.0, sizes[:, i] - disclosed_prev[:, i] - cum_attacked[:, i]
            )
            value = np.where(pool_open, spend * untouched / safe_pool, 0.0)
            attacked_random[:, i] = _clip(value, 0.0, untouched)
        attacked_random = np.where(
            (general | final_budget)[:, None], attacked_random, 0.0
        )

        attacked_disclosed = np.where(
            exhausted[:, None], attacked_disclosed_ex, disclosed_prev
        )
        forfeited = np.where(exhausted[:, None], forfeited_ex, 0.0)
        spent = np.where(
            exhausted, spent_ex, np.where(heavy, known, spend_target)
        )

        broken_disclosed = p_b[:, None] * attacked_disclosed
        broken_random = p_b[:, None] * attacked_random
        survived_random = (1.0 - p_b)[:, None] * attacked_random
        round_broken = broken_disclosed + broken_random

        mask = active[:, None]
        cum_attacked = cum_attacked + np.where(
            mask, attacked_disclosed + attacked_random, 0.0
        )
        cum_forfeited = cum_forfeited + np.where(mask, forfeited, 0.0)
        cum_broken = cum_broken + np.where(mask, round_broken, 0.0)
        cum_survived_disclosed = cum_survived_disclosed + np.where(
            mask, (1.0 - p_b)[:, None] * attacked_disclosed, 0.0
        )

        # Disclosures (Eqs. 18-20, 24) read the *post-update* accumulators.
        d_n = np.zeros((batch, slots))
        d_a = np.zeros((batch, slots))
        for i in range(1, slots):
            n_i = sizes[:, i]
            survive = _no_fresh_disclosure_batch(
                degrees[:, i].astype(float), n_i, round_broken[:, i - 1]
            )
            touched = cum_attacked[:, i] + cum_forfeited[:, i]
            untouched_fraction = _clip(1.0 - touched / n_i, 0.0, 1.0)
            z_i = n_i * (1.0 - survive * untouched_fraction)
            d_n[:, i] = _clip(z_i - touched, 0.0, n_i)
            d_a[:, i] = _clip(
                survived_random[:, i] * (1.0 - survive), 0.0, n_i
            )
        cum_disclosed_survived_random = cum_disclosed_survived_random + (
            np.where(mask, d_a, 0.0)
        )
        cum_filter_disclosed = cum_filter_disclosed + np.where(
            active, d_n[:, -1], 0.0
        )

        # The last round an element executes is its terminal round.
        final_d_n = np.where(mask, d_n, final_d_n)
        final_d_a = np.where(mask, d_a, final_d_a)
        final_forfeited = np.where(mask, forfeited, final_forfeited)

        budget = np.where(active, np.maximum(0.0, budget - spent), budget)
        next_prev = np.zeros((batch, slots))
        next_prev[:, 1 : slots - 1] = d_n[:, 1 : slots - 1]
        disclosed_prev = np.where(mask, next_prev, disclosed_prev)

        terminal = final_budget | exhausted | (budget <= 0.0)
        active = active & ~terminal & (rounds > round_index)

    # Congestion phase (Eqs. 25-27) over the per-point terminal state.
    disclosed = np.zeros((batch, slots))
    for i in range(sos):
        disclosed[:, i] = (
            cum_survived_disclosed[:, i]
            + final_d_n[:, i]
            + cum_disclosed_survived_random[:, i]
            + final_forfeited[:, i]
        )
    disclosed[:, sos] = cum_filter_disclosed

    congested = _shared_congestion_batch(
        sizes, total, n_c, cum_broken, disclosed
    )
    return _path_availability_batch(sizes, degrees, cum_broken, congested)


def _path_availability_batch(
    sizes: np.ndarray,
    degrees: np.ndarray,
    broken: np.ndarray,
    congested: np.ndarray,
) -> np.ndarray:
    """``P_S = prod_i (1 - P(n_i, s_i, m_i))`` over the batch (Eq. 1)."""
    bad = _clip(broken + congested, 0.0, sizes)
    hops = hop_success_probability_batch(sizes, bad, degrees)
    p_s = np.ones(sizes.shape[0])
    for i in range(sizes.shape[1]):
        p_s = p_s * hops[:, i]
    return _clip(p_s, 0.0, 1.0)


# ----------------------------------------------------------------------
# Public grid evaluation
# ----------------------------------------------------------------------


def _group_key(
    architecture: SOSArchitecture, attack: Attack
) -> Union[Tuple[str, int], None]:
    """Batching key, or None when the pair must use the scalar path.

    Pairs whose budget the scalar kernel rejects also go to the scalar
    path so callers see the exact same :class:`ConfigurationError`.
    """
    if attack.n_t > architecture.total_overlay_nodes:
        return None
    if type(attack) is SuccessiveAttack:
        return ("successive", architecture.layers)
    if type(attack) is OneBurstAttack:
        return ("one-burst", architecture.layers)
    return None


def evaluate_batch(
    architectures: Sequence[SOSArchitecture], attacks: Sequence[Attack]
) -> np.ndarray:
    """``P_S`` for each paired ``(architectures[i], attacks[i])``.

    Pairs are grouped by attack model and layer count; each group is
    evaluated in one vectorized pass. Ungroupable pairs (attack-model
    subclasses, infeasible budgets) fall back to the scalar
    :func:`repro.core.model.evaluate`, raising exactly what it raises.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> archs = [SOSArchitecture(layers=4, mapping="one-to-two")] * 2
    >>> attacks = [SuccessiveAttack(rounds=r) for r in (1, 3)]
    >>> p = evaluate_batch(archs, attacks)
    >>> bool(p[1] <= p[0])
    True
    """
    if len(architectures) != len(attacks):
        raise ExperimentError(
            f"paired batch needs equal lengths, got {len(architectures)} "
            f"architectures and {len(attacks)} attacks"
        )
    if not architectures:
        return np.zeros(0)

    p_s = np.zeros(len(architectures))
    groups: Dict[Tuple[str, int], List[int]] = {}
    scalar_indices: List[int] = []
    for index, (architecture, attack) in enumerate(zip(architectures, attacks)):
        key = _group_key(architecture, attack)
        if key is None:
            scalar_indices.append(index)
        else:
            groups.setdefault(key, []).append(index)

    for (kind, _layers), indices in groups.items():
        sizes = np.array(
            [architectures[i].layer_sizes_with_filters for i in indices]
        )
        degrees = np.array(
            [architectures[i].mapping_degrees for i in indices], dtype=int
        )
        total = np.array(
            [float(architectures[i].total_overlay_nodes) for i in indices]
        )
        n_t = np.array([attacks[i].n_t for i in indices])
        n_c = np.array([attacks[i].n_c for i in indices])
        p_b = np.array([attacks[i].p_b for i in indices])
        if kind == "successive":
            rounds = np.array(
                [attacks[i].r for i in indices], dtype=int  # type: ignore[union-attr]
            )
            p_e = np.array(
                [attacks[i].p_e for i in indices]  # type: ignore[union-attr]
            )
            values = _successive_ps_batch(
                sizes, degrees, total, n_t, n_c, p_b, rounds, p_e
            )
        else:
            values = _one_burst_ps_batch(sizes, degrees, total, n_t, n_c, p_b)
        p_s[indices] = values

    for index in scalar_indices:
        p_s[index] = evaluate(architectures[index], attacks[index]).p_s
    return p_s
