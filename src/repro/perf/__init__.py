"""Performance execution layer: vectorized batch evaluation.

:mod:`repro.perf.batch` evaluates whole parameter grids of the analytical
model at once with numpy, mirroring the scalar kernels in
:mod:`repro.core` operation for operation so batch results agree with the
scalar oracle to within 1e-12 (property-tested).
:mod:`repro.perf.fastsim` is the vectorized fast path for the
packet-level flooding simulation (hop-synchronous numpy batches with the
event-driven engine as oracle) plus process-parallel replica sweeps.
The process-parallel Monte Carlo dispatcher lives with its estimator in
:mod:`repro.simulation.monte_carlo` (``MonteCarloConfig.workers``);
``docs/PERFORMANCE.md`` documents both together with the ``BENCH_*.json``
benchmark-snapshot workflow.
"""

from repro.perf.batch import (
    all_bad_probability_batch,
    evaluate_batch,
    hop_success_probability_batch,
)
from repro.perf.fastsim import (
    encode_deployment,
    mean_delivery_ratio,
    run_fast,
    run_packet_replicas,
)

__all__ = [
    "all_bad_probability_batch",
    "encode_deployment",
    "evaluate_batch",
    "hop_success_probability_batch",
    "mean_delivery_ratio",
    "run_fast",
    "run_packet_replicas",
]
