"""Performance execution layer: vectorized batch evaluation.

:mod:`repro.perf.batch` evaluates whole parameter grids of the analytical
model at once with numpy, mirroring the scalar kernels in
:mod:`repro.core` operation for operation so batch results agree with the
scalar oracle to within 1e-12 (property-tested). The process-parallel
Monte Carlo dispatcher lives with its estimator in
:mod:`repro.simulation.monte_carlo` (``MonteCarloConfig.workers``);
``docs/PERFORMANCE.md`` documents both together with the ``BENCH_*.json``
benchmark-snapshot workflow.
"""

from repro.perf.batch import (
    all_bad_probability_batch,
    evaluate_batch,
    hop_success_probability_batch,
)

__all__ = [
    "all_bad_probability_batch",
    "evaluate_batch",
    "hop_success_probability_batch",
]
