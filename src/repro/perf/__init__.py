"""Performance execution layer: vectorized batch evaluation.

:mod:`repro.perf.batch` evaluates whole parameter grids of the analytical
model at once with numpy, mirroring the scalar kernels in
:mod:`repro.core` operation for operation so batch results agree with the
scalar oracle to within 1e-12 (property-tested).
:mod:`repro.perf.fastsim` is the vectorized fast path for the
packet-level flooding simulation (hop-synchronous numpy batches with the
event-driven engine as oracle) plus process-parallel replica sweeps.
The process-parallel Monte Carlo dispatcher lives with its estimator in
:mod:`repro.simulation.monte_carlo` (``MonteCarloConfig.workers``);
``docs/PERFORMANCE.md`` documents both together with the ``BENCH_*.json``
benchmark-snapshot workflow.

:mod:`repro.perf.compiled` adds the compiled hot-path tier: machine-code
kernels (numba or the bundled C backend) for the sequential recursions
the numpy tier cannot vectorize, selected per run via
``PacketSimConfig.tier`` / ``TrafficMonitor(tier=...)`` and bit-identical
to the numpy oracle. ``tools/bench_ladder.py`` benchmarks every
available tier side by side.
"""

from repro.perf.batch import (
    all_bad_probability_batch,
    evaluate_batch,
    hop_success_probability_batch,
)
from repro.perf.compiled import (
    TIERS,
    CompiledTierUnavailableWarning,
    available_tiers,
    compiled_backend,
    resolve_tier,
)
from repro.perf.fastsim import (
    encode_deployment,
    mean_delivery_ratio,
    run_fast,
    run_packet_replicas,
)

__all__ = [
    "TIERS",
    "CompiledTierUnavailableWarning",
    "all_bad_probability_batch",
    "available_tiers",
    "compiled_backend",
    "encode_deployment",
    "evaluate_batch",
    "hop_success_probability_batch",
    "mean_delivery_ratio",
    "resolve_tier",
    "run_fast",
    "run_packet_replicas",
]
