"""Compiled hot-path tier: backend resolution and kernel dispatch.

The perf ladder runs every hot path at up to three tiers:

``scalar``
    Per-event Python arithmetic — the readable reference (for the packet
    engines the event-driven oracle plays this role; for the grouped
    bucket scan and the detectors it is a plain Python loop).
``numpy``
    The vectorized implementations that ship as the **default and
    oracle** — nothing about their behavior changes here.
``compiled``
    Machine-code kernels for the per-event sequential recursions that
    numpy cannot vectorize (Lindley token-bucket replay, CUSUM/EWMA
    scans, congestion-aware routing). Two interchangeable backends:

    * **numba** (preferred; install via ``pip install repro[compiled]``)
      — ``@numba.njit`` kernels in :mod:`repro.perf._numba_kernels`;
    * **cc** — the same kernels as C compiled once per machine with the
      system toolchain (:mod:`repro.perf._cc`).

    Both replay the numpy arithmetic operation for operation, so the
    compiled tier is *bit-identical* to the numpy tier wherever the
    numpy tier is exact (accept/drop decisions, congestion flags,
    injection schedules, detector flag sequences, Welford folds) —
    property-tested in ``tests/perf/test_compiled_kernels.py`` and
    ``tests/perf/test_compiled_tier.py``.

Tier selection is data (``PacketSimConfig.tier``,
``TrafficMonitor(tier=...)``), resolved here. Requesting ``compiled``
with no backend available degrades to ``numpy`` with a one-time
:class:`CompiledTierUnavailableWarning` naming the reason, so code never
has to guard on the environment. ``REPRO_COMPILED_BACKEND`` pins a
backend (``numba`` | ``cc`` | ``none``) for tests and CI matrices.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from typing import Any, Dict, Optional, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import SimulationError

__all__ = [
    "TIERS",
    "CompiledTierUnavailableWarning",
    "CongestionTable",
    "KernelSet",
    "available_tiers",
    "compiled_backend",
    "detect_bins_batch",
    "get_kernels",
    "resolve_tier",
]

#: Every tier the ladder knows, slowest first.
TIERS: Tuple[str, ...] = ("scalar", "numpy", "compiled")


class CompiledTierUnavailableWarning(RuntimeWarning):
    """Raised (once) when ``tier="compiled"`` degrades to numpy."""


_BACKEND: Optional[str] = None
_BACKEND_RESOLVED = False
_BACKEND_REASONS: Dict[str, str] = {}
_WARNED = False


def _resolve_backend() -> Optional[str]:
    """Pick the best compiled backend available, at most once per process."""
    global _BACKEND, _BACKEND_RESOLVED
    if _BACKEND_RESOLVED:
        return _BACKEND
    _BACKEND_RESOLVED = True
    forced = os.environ.get("REPRO_COMPILED_BACKEND", "").strip().lower()
    if forced == "none":
        _BACKEND_REASONS["forced"] = "REPRO_COMPILED_BACKEND=none"
        _BACKEND = None
        return None
    order = (forced,) if forced in ("numba", "cc") else ("numba", "cc")
    for name in order:
        if name == "numba" and _load_numba() is not None:
            _BACKEND = "numba"
            return _BACKEND
        if name == "cc" and _load_cc() is not None:
            _BACKEND = "cc"
            return _BACKEND
    _BACKEND = None
    return None


_NUMBA_MODULE: Any = None
_NUMBA_TRIED = False


def _load_numba() -> Any:
    global _NUMBA_MODULE, _NUMBA_TRIED
    if _NUMBA_TRIED:
        return _NUMBA_MODULE
    _NUMBA_TRIED = True
    try:
        from repro.perf import _numba_kernels
    except ImportError as exc:
        _BACKEND_REASONS["numba"] = (
            f"numba is not installed ({exc}); "
            "install the optional extra: pip install repro[compiled]"
        )
        _NUMBA_MODULE = None
    else:
        _NUMBA_MODULE = _numba_kernels
    return _NUMBA_MODULE


_CC_LIBRARY: Any = None
_CC_TRIED = False


def _load_cc() -> Any:
    global _CC_LIBRARY, _CC_TRIED
    if _CC_TRIED:
        return _CC_LIBRARY
    _CC_TRIED = True
    from repro.perf import _cc

    _CC_LIBRARY = _cc.load_library()
    if _CC_LIBRARY is None:
        _BACKEND_REASONS["cc"] = _cc.build_error() or "cc backend unavailable"
    return _CC_LIBRARY


def compiled_backend() -> Optional[str]:
    """``"numba"`` / ``"cc"`` when a compiled backend is usable, else None."""
    return _resolve_backend()


def available_tiers() -> Tuple[str, ...]:
    """The subset of :data:`TIERS` runnable in this environment."""
    if compiled_backend() is None:
        return ("scalar", "numpy")
    return TIERS


def resolve_tier(tier: str) -> str:
    """Validate ``tier`` and degrade ``compiled`` -> ``numpy`` if needed.

    The degradation warns exactly once per process (the numpy tier is
    bit-identical wherever exactness is promised, so silence afterwards
    is safe — only speed is lost).
    """
    global _WARNED
    if tier not in TIERS:
        raise SimulationError(
            f"tier must be one of {TIERS}, got {tier!r}"
        )
    if tier == "compiled" and compiled_backend() is None:
        if not _WARNED:
            _WARNED = True
            reasons = "; ".join(
                _BACKEND_REASONS.get(key, "")
                for key in ("forced", "numba", "cc")
                if key in _BACKEND_REASONS
            )
            warnings.warn(
                "tier='compiled' requested but no compiled backend is "
                f"available ({reasons}); falling back to the numpy tier "
                "(bit-identical, slower)",
                CompiledTierUnavailableWarning,
                stacklevel=2,
            )
        return "numpy"
    return tier


@dataclasses.dataclass(frozen=True)
class CongestionTable:
    """Per-slot congestion timelines in flat searchable form.

    ``offsets[s] : offsets[s + 1]`` spans slot ``s``'s chronologically
    sorted event ``times`` and the congested-after-event ``flags`` — the
    array twin of the numpy tier's ``{slot: (times, flags)}`` dict.
    """

    offsets: npt.NDArray[np.int64]  # (m + 1,)
    times: npt.NDArray[np.float64]  # (n,) grouped, time-sorted
    flags: npt.NDArray[np.uint8]  # (n,)

    @classmethod
    def empty(cls, m: int) -> "CongestionTable":
        return cls(
            offsets=np.zeros(m + 1, dtype=np.int64),
            times=np.empty(0, dtype=np.float64),
            flags=np.empty(0, dtype=np.uint8),
        )


def _as_c(array: np.ndarray, dtype: Any) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=dtype)


class KernelSet:
    """Uniform kernel interface over the numba and cc backends.

    Every method takes and returns numpy arrays; scratch allocation and
    pointer plumbing stay in here so the fast engine reads the same
    either way.
    """

    def __init__(self, backend: str) -> None:
        self.backend = backend
        if backend == "numba":
            self._numba = _load_numba()
            if self._numba is None:  # pragma: no cover - defensive
                raise SimulationError("numba backend requested but missing")
        elif backend == "cc":
            self._library = _load_cc()
            if self._library is None:  # pragma: no cover - defensive
                raise SimulationError("cc backend requested but missing")
        else:
            raise SimulationError(f"unknown compiled backend {backend!r}")

    # ------------------------------------------------------------------
    # Grouped token-bucket Lindley replay
    # ------------------------------------------------------------------
    def _scan_raw(
        self,
        slots: np.ndarray,
        times: np.ndarray,
        m: int,
        capacity: float,
        burst: float,
        want_flags: bool,
    ) -> Tuple[np.ndarray, ...]:
        slots = _as_c(slots, np.int64)
        times = _as_c(times, np.float64)
        n = len(slots)
        if self.backend == "numba":
            return tuple(
                self._numba.bucket_scan(
                    slots, times, m, capacity, burst, want_flags
                )
            )
        accept = np.zeros(n, dtype=np.uint8)
        offered = np.zeros(m, dtype=np.int64)
        accepted = np.zeros(m, dtype=np.int64)
        offsets = np.zeros(m + 1, dtype=np.int64)
        order = np.empty(n, dtype=np.int64)
        flags = np.zeros(n, dtype=np.uint8)
        tsorted = np.empty(n, dtype=np.float64)
        cursor = np.empty(m, dtype=np.int64)
        tmp = np.empty(n, dtype=np.int64)
        svals = np.empty(n, dtype=np.float64)
        import ctypes

        i64p = ctypes.POINTER(ctypes.c_int64)
        f64p = ctypes.POINTER(ctypes.c_double)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        self._library.repro_bucket_scan(
            slots.ctypes.data_as(i64p),
            times.ctypes.data_as(f64p),
            n,
            m,
            capacity,
            burst,
            1 if want_flags else 0,
            accept.ctypes.data_as(u8p),
            offered.ctypes.data_as(i64p),
            accepted.ctypes.data_as(i64p),
            offsets.ctypes.data_as(i64p),
            order.ctypes.data_as(i64p),
            flags.ctypes.data_as(u8p),
            tsorted.ctypes.data_as(f64p),
            cursor.ctypes.data_as(i64p),
            tmp.ctypes.data_as(i64p),
            svals.ctypes.data_as(f64p),
        )
        return accept, offered, accepted, offsets, order, flags, tsorted

    def bucket_scan(
        self,
        slots: np.ndarray,
        times: np.ndarray,
        m: int,
        capacity: float,
        burst: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Drop-in for ``fastsim._grouped_bucket_scan``: returns
        ``(accept, unique_slots, accepted_per, dropped_per)`` with accept
        aligned to the *input* event order."""
        accept, offered, accepted, _, _, _, _ = self._scan_raw(
            slots, times, m, capacity, burst, want_flags=False
        )
        unique_slots = np.nonzero(offered)[0].astype(np.int64)
        accepted_per = accepted[unique_slots]
        dropped_per = offered[unique_slots] - accepted_per
        return accept.astype(bool), unique_slots, accepted_per, dropped_per

    def timeline_table(
        self,
        slots: np.ndarray,
        times: np.ndarray,
        m: int,
        capacity: float,
        burst: float,
    ) -> CongestionTable:
        """Congestion timelines for every slot present in the events."""
        if len(slots) == 0:
            return CongestionTable.empty(m)
        _, _, _, offsets, _, flags, tsorted = self._scan_raw(
            slots, times, m, capacity, burst, want_flags=True
        )
        return CongestionTable(offsets=offsets, times=tsorted, flags=flags)

    # ------------------------------------------------------------------
    # Fused congestion lookup + uniform routing
    # ------------------------------------------------------------------
    def route(
        self,
        u: np.ndarray,
        neighbor_slots: np.ndarray,
        healthy: np.ndarray,
        decision_t: np.ndarray,
        table: CongestionTable,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(routable, chosen)`` — the two-step numpy routing fused."""
        u = _as_c(u, np.float64)
        nbr = _as_c(neighbor_slots, np.int64)
        healthy8 = _as_c(healthy, np.uint8)
        decision_t = _as_c(decision_t, np.float64)
        rows, cols = nbr.shape
        if self.backend == "numba":
            routable, chosen = self._numba.route(
                u, nbr, healthy8, decision_t,
                table.offsets, table.times, table.flags,
            )
            return routable.astype(bool), chosen
        m = len(table.offsets) - 1
        routable = np.zeros(rows, dtype=np.uint8)
        chosen = np.empty(rows, dtype=np.int64)
        cursor = np.empty(max(m, 1), dtype=np.int64)
        scratch = np.empty(max(cols, 1), dtype=np.uint8)
        import ctypes

        i64p = ctypes.POINTER(ctypes.c_int64)
        f64p = ctypes.POINTER(ctypes.c_double)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        self._library.repro_route(
            u.ctypes.data_as(f64p),
            nbr.ctypes.data_as(i64p),
            healthy8.ctypes.data_as(u8p),
            decision_t.ctypes.data_as(f64p),
            rows,
            cols,
            m,
            table.offsets.ctypes.data_as(i64p),
            table.times.ctypes.data_as(f64p),
            table.flags.ctypes.data_as(u8p),
            cursor.ctypes.data_as(i64p),
            scratch.ctypes.data_as(u8p),
            routable.ctypes.data_as(u8p),
            chosen.ctypes.data_as(i64p),
        )
        return routable.astype(bool), chosen

    # ------------------------------------------------------------------
    # Streaming Welford fold
    # ------------------------------------------------------------------
    def welford(
        self,
        values: np.ndarray,
        count: int,
        mean: float,
        m2: float,
        maxv: float,
    ) -> Tuple[int, float, float, float]:
        values = _as_c(values, np.float64)
        if self.backend == "numba":
            out = self._numba.welford(values, count, mean, m2, maxv)
            return int(out[0]), float(out[1]), float(out[2]), float(out[3])
        import ctypes

        c_count = ctypes.c_int64(count)
        c_mean = ctypes.c_double(mean)
        c_m2 = ctypes.c_double(m2)
        c_max = ctypes.c_double(maxv)
        self._library.repro_welford(
            values.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            len(values),
            ctypes.byref(c_count),
            ctypes.byref(c_mean),
            ctypes.byref(c_m2),
            ctypes.byref(c_max),
        )
        return c_count.value, c_mean.value, c_m2.value, c_max.value

    # ------------------------------------------------------------------
    # Batched CUSUM/EWMA scan
    # ------------------------------------------------------------------
    def detect_bins(
        self,
        series: np.ndarray,
        means: np.ndarray,
        sigmas: np.ndarray,
        base_end: int,
        method: str,
        threshold: float,
        drift: float,
        alpha: float,
    ) -> npt.NDArray[np.int64]:
        series = _as_c(series, np.float64)
        means = _as_c(means, np.float64)
        sigmas = _as_c(sigmas, np.float64)
        rows, bins = series.shape
        method_code = 0 if method == "cusum" else 1
        if self.backend == "numba":
            result = self._numba.detect(
                series, means, sigmas, base_end, method_code,
                threshold, drift, alpha,
            )
            return np.asarray(result, dtype=np.int64)
        out = np.empty(rows, dtype=np.int64)
        import ctypes

        f64p = ctypes.POINTER(ctypes.c_double)
        self._library.repro_detect(
            series.ctypes.data_as(f64p),
            rows,
            bins,
            means.ctypes.data_as(f64p),
            sigmas.ctypes.data_as(f64p),
            base_end,
            method_code,
            threshold,
            drift,
            alpha,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        )
        return out


_KERNELS: Dict[str, KernelSet] = {}


def get_kernels(tier: str) -> Optional[KernelSet]:
    """The compiled :class:`KernelSet` for ``tier``, or ``None``.

    ``None`` means "run the interpreter-tier code path" — both the
    numpy default and the scalar reference return it.
    """
    if tier != "compiled":
        return None
    backend = compiled_backend()
    if backend is None:
        return None
    kernels = _KERNELS.get(backend)
    if kernels is None:
        kernels = KernelSet(backend)
        _KERNELS[backend] = kernels
    return kernels


# ----------------------------------------------------------------------
# Batched detector scan (numpy tier) + dispatch for TrafficMonitor
# ----------------------------------------------------------------------


def _detect_bins_numpy(
    series: npt.NDArray[np.float64],
    means: npt.NDArray[np.float64],
    sigmas: npt.NDArray[np.float64],
    base_end: int,
    method: str,
    threshold: float,
    drift: float,
    alpha: float,
) -> npt.NDArray[np.int64]:
    """CUSUM/EWMA first crossings vectorized across nodes.

    The recursion runs bin by bin over a *vector* of per-node statistics;
    each element performs the exact float operations of the scalar
    ``_detection_bin`` loop in the same order, so crossings are
    bit-identical to the per-node scan.
    """
    rows, bins = series.shape
    out = np.full(rows, -1, dtype=np.int64)
    if bins <= base_end:
        return out
    pending = np.ones(rows, dtype=bool)
    if method == "cusum":
        statistic = np.zeros(rows, dtype=np.float64)
        for index in range(base_end, bins):
            deviation = (series[:, index] - means) / sigmas
            statistic = np.maximum(0.0, (statistic + deviation) - drift)
            crossed = pending & (statistic > threshold)
            out[crossed] = index
            pending &= ~crossed
            if not bool(pending.any()):
                break
        return out
    smoothed = means.copy()
    for index in range(base_end, bins):
        smoothed = alpha * series[:, index] + (1.0 - alpha) * smoothed
        crossed = pending & ((smoothed - means) / sigmas > threshold)
        out[crossed] = index
        pending &= ~crossed
        if not bool(pending.any()):
            break
    return out


def detect_bins_batch(
    series: npt.NDArray[np.float64],
    means: npt.NDArray[np.float64],
    sigmas: npt.NDArray[np.float64],
    base_end: int,
    method: str,
    threshold: float,
    drift: float,
    alpha: float,
    tier: str,
) -> npt.NDArray[np.int64]:
    """First-crossing bin per series row (-1 = never) at ``tier``.

    ``series`` rows share one horizon; ``means``/``sigmas`` are the
    per-row baseline statistics (computed by the caller with the scalar
    tier's exact numpy calls). ``tier`` must already be resolved.
    """
    series = np.ascontiguousarray(series, dtype=np.float64)
    kernels = get_kernels(tier)
    if kernels is not None:
        return kernels.detect_bins(
            series, means, sigmas, base_end, method, threshold, drift, alpha
        )
    return _detect_bins_numpy(
        series, means, sigmas, base_end, method, threshold, drift, alpha
    )


def _reset_for_tests() -> None:
    """Forget resolved backends/warnings (test hook)."""
    global _BACKEND, _BACKEND_RESOLVED, _WARNED
    global _NUMBA_MODULE, _NUMBA_TRIED, _CC_LIBRARY, _CC_TRIED
    _BACKEND = None
    _BACKEND_RESOLVED = False
    _WARNED = False
    _NUMBA_MODULE = None
    _NUMBA_TRIED = False
    _CC_LIBRARY = None
    _CC_TRIED = False
    _BACKEND_REASONS.clear()
    _KERNELS.clear()
