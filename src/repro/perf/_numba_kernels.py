"""Numba backend for the compiled hot-path tier.

Importing this module requires :mod:`numba` (the ``repro[compiled]``
optional extra); :mod:`repro.perf.compiled` imports it lazily and falls
back to the ``cc``/ctypes backend — then to plain numpy — when the
import fails.

Every jitted body mirrors the arithmetic of the numpy tier (and of the
C backend in :mod:`repro.perf._cc`) operation for operation on IEEE
doubles, so the three implementations are bit-identical: accept
decisions, congestion flags, detector crossings, and Welford folds all
come out of the same multiplies, left-to-right additions, and
comparisons. ``fastmath`` stays off for exactly that reason.

The kernels are compiled boundaries for ``tools/repro_lint``'s
flow-aware passes: nothing inside an ``@numba.njit`` body runs under
CPython semantics, so interpreter-level findings do not apply.
"""

from __future__ import annotations

import numba
import numpy as np

__all__ = ["bucket_scan", "route", "welford", "detect"]


@numba.njit(cache=True)
def _merge_runs(times, idx, lo, mid, hi, tmp):  # pragma: no cover - jitted
    i = lo
    j = mid
    k = 0
    while i < mid and j < hi:
        if times[idx[j]] < times[idx[i]]:
            tmp[k] = idx[j]
            j += 1
        else:
            tmp[k] = idx[i]
            i += 1
        k += 1
    while i < mid:
        tmp[k] = idx[i]
        i += 1
        k += 1
    while j < hi:
        tmp[k] = idx[j]
        j += 1
        k += 1
    for i in range(k):
        idx[lo + i] = tmp[i]


@numba.njit(cache=True)
def _sort_group(times, idx, lo, k, tmp):  # pragma: no cover - jitted
    if k < 2:
        return
    d = 1
    while d < k and times[idx[lo + d]] >= times[idx[lo + d - 1]]:
        d += 1
    if d == k:
        return
    e = d + 1
    while e < k and times[idx[lo + e]] >= times[idx[lo + e - 1]]:
        e += 1
    if e == k:
        _merge_runs(times, idx, lo, lo + d, lo + k, tmp)
        return
    width = 1
    while width < k:
        start = 0
        while start < k:
            mid = start + width
            if mid >= k:
                break
            hi = start + 2 * width
            if hi > k:
                hi = k
            _merge_runs(times, idx, lo + start, lo + mid, lo + hi, tmp)
            start += 2 * width
        width *= 2


@numba.njit(cache=True)
def bucket_scan(slots, times, m, capacity, burst, want_flags):
    """Grouped token-bucket replay; see ``repro_bucket_scan`` in _cc.py."""
    n = slots.shape[0]
    limit = burst - 1.0
    accept = np.zeros(n, dtype=np.uint8)
    offered = np.zeros(m, dtype=np.int64)
    accepted = np.zeros(m, dtype=np.int64)
    offsets = np.zeros(m + 1, dtype=np.int64)
    order = np.empty(n, dtype=np.int64)
    flags = np.zeros(n, dtype=np.uint8)
    tsorted = np.empty(n, dtype=np.float64)
    cursor = np.empty(m, dtype=np.int64)
    tmp = np.empty(n, dtype=np.int64)
    svals = np.empty(n, dtype=np.float64)

    for i in range(n):
        offsets[slots[i] + 1] += 1
    for s in range(m):
        offsets[s + 1] += offsets[s]
    for s in range(m):
        cursor[s] = offsets[s]
    for i in range(n):
        order[cursor[slots[i]]] = i
        cursor[slots[i]] += 1

    for s in range(m):
        lo = offsets[s]
        k = offsets[s + 1] - lo
        if k == 0:
            continue
        _sort_group(times, order, lo, k, tmp)
        offered[s] = k

        w = -np.inf
        zmax = -np.inf
        for j in range(k):
            sv = times[order[lo + j]] * capacity
            svals[lo + j] = sv
            tsorted[lo + j] = times[order[lo + j]]
            cand = sv - float(j)
            if cand > w:
                w = cand
            z = (w + float(j + 1)) - sv
            if z > zmax:
                zmax = z
        if zmax <= burst:
            for j in range(k):
                accept[order[lo + j]] = 1
            accepted[s] = k
        else:
            z = 0.0
            y = 0.0
            acc = 0
            j = 0
            while j < k:
                si = svals[lo + j]
                zp = z - (si - y)
                if zp < 0.0:
                    zp = 0.0
                if zp <= limit:
                    accept[order[lo + j]] = 1
                    z = zp + 1.0
                    y = si
                    acc += 1
                    j += 1
                else:
                    target = y + (z - limit)
                    a = j
                    b = k
                    while a < b:
                        mid = a + (b - a) // 2
                        if svals[lo + mid] < target:
                            a = mid + 1
                        else:
                            b = mid
                    j = a
            accepted[s] = acc

        if want_flags:
            drops = 0
            for j in range(k):
                total = j + 1
                if accept[order[lo + j]] == 0:
                    drops += 1
                congested = total >= 10 and (
                    float(drops) / float(total)
                ) >= 0.5
                flags[lo + j] = 1 if congested else 0

    return accept, offered, accepted, offsets, order, flags, tsorted


@numba.njit(cache=True)
def route(u, nbr, healthy, decision_t, tl_offsets, tl_times, tl_flags):
    """Fused congestion lookup + uniform pick; see ``repro_route``."""
    rows, cols = nbr.shape
    m = tl_offsets.shape[0] - 1
    have_events = tl_offsets[m] > 0
    routable = np.zeros(rows, dtype=np.uint8)
    chosen = np.empty(rows, dtype=np.int64)
    live = np.empty(cols, dtype=np.uint8)
    # Nondecreasing decision times let per-slot cursors replace the
    # per-(row, col) binary search; see repro_route in _cc.py.
    monotone = True
    for r in range(1, rows):
        if decision_t[r] < decision_t[r - 1]:
            monotone = False
            break
    cursor = np.empty(m if (monotone and have_events) else 0, dtype=np.int64)
    if monotone and have_events:
        for s in range(m):
            cursor[s] = tl_offsets[s]
    for r in range(rows):
        t = decision_t[r]
        live_count = 0
        for c in range(cols):
            slot = nbr[r, c]
            ok = healthy[r, c]
            if ok != 0 and have_events:
                base = tl_offsets[slot]
                b = tl_offsets[slot + 1]
                if monotone:
                    a = cursor[slot]
                    while a < b and tl_times[a] <= t:
                        a += 1
                    cursor[slot] = a
                else:
                    a = base
                    while a < b:
                        mid = a + (b - a) // 2
                        if tl_times[mid] <= t:
                            a = mid + 1
                        else:
                            b = mid
                if a > base and tl_flags[a - 1] != 0:
                    ok = 0
            live[c] = ok
            live_count += ok
        if live_count == 0:
            routable[r] = 0
            chosen[r] = -1
            continue
        routable[r] = 1
        pick = np.int64(u[r] * float(live_count))
        if pick > live_count - 1:
            pick = live_count - 1
        seen = 0
        col = cols - 1
        for c in range(cols):
            seen += live[c]
            if seen == pick + 1:
                col = c
                break
        chosen[r] = nbr[r, col]
    return routable, chosen


@numba.njit(cache=True)
def welford(values, count, mean, m2, maxv):
    """Sequential Welford fold; see ``repro_welford``."""
    for i in range(values.shape[0]):
        v = values[i]
        delta = v - mean
        count += 1
        mean += delta / float(count)
        m2 += delta * (v - mean)
        if v > maxv:
            maxv = v
    return count, mean, m2, maxv


@numba.njit(cache=True)
def detect(series, mean, sigma, start, method, threshold, drift, alpha):
    """Batched CUSUM/EWMA first-crossing scan; see ``repro_detect``."""
    rows, bins = series.shape
    out = np.full(rows, -1, dtype=np.int64)
    for r in range(rows):
        if method == 0:
            statistic = 0.0
            for i in range(start, bins):
                deviation = (series[r, i] - mean[r]) / sigma[r]
                nxt = (statistic + deviation) - drift
                statistic = 0.0 if nxt < 0.0 else nxt
                if statistic > threshold:
                    out[r] = i
                    break
        else:
            smoothed = mean[r]
            for i in range(start, bins):
                smoothed = alpha * series[r, i] + (1.0 - alpha) * smoothed
                if (smoothed - mean[r]) / sigma[r] > threshold:
                    out[r] = i
                    break
    return out
