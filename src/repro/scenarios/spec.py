"""Declarative campaign specs: named phases of vectors over one sim.

A :class:`ScenarioSpec` is the unit the zoo commits, the CLI runs, the
``scn-zoo`` experiment sweeps, and the service accepts by name. It is
deliberately *data*: architecture + sim knobs + a timeline of phases,
each phase a window ``[start, start + duration)`` carrying zero or more
vectors (see :mod:`repro.scenarios.vectors`). Everything round-trips
through plain dicts/JSON with full validation (unknown fields, bad
types, out-of-range values, overlapping-with-nothing windows all raise
:class:`~repro.errors.ScenarioError` before any engine runs), and
``to_dict`` always emits every field — defaults included — so committed
zoo files are stable golden artifacts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Tuple

from repro.contracts import Field, check_schema
from repro.core.architecture import SOSArchitecture
from repro.errors import ScenarioError
from repro.simulation.packet_sim import PacketSimConfig
from repro.scenarios.vectors import AttackVector, vector_from_dict

__all__ = [
    "ArchitectureSpec",
    "PhaseSpec",
    "ScenarioSpec",
    "SimSpec",
    "SCENARIO_ENGINES",
    "SCENARIO_TIERS",
]

SCENARIO_ENGINES = ("fast", "event")
SCENARIO_TIERS = ("scalar", "numpy", "compiled")


def _positive_number() -> Field:
    return Field(
        (int, float), required=False, check=lambda v: v > 0, describe="> 0"
    )


def _non_negative_number() -> Field:
    return Field(
        (int, float), required=False, check=lambda v: v >= 0, describe=">= 0"
    )


def _positive_int() -> Field:
    return Field((int,), required=False, check=lambda v: v >= 1, describe=">= 1")


@dataclasses.dataclass(frozen=True)
class ArchitectureSpec:
    """The SOS instance a scenario deploys (a serializable
    :class:`~repro.core.architecture.SOSArchitecture` subset)."""

    layers: int = 3
    mapping: str = "one-to-two"
    overlay_nodes: int = 2000
    sos_nodes: int = 60
    filters: int = 6

    SCHEMA = {
        "layers": _positive_int(),
        "mapping": Field((str,), required=False),
        "overlay_nodes": _positive_int(),
        "sos_nodes": _positive_int(),
        "filters": _positive_int(),
    }

    def __post_init__(self) -> None:
        self.build()  # validates eagerly via SOSArchitecture's own checks

    def build(self) -> SOSArchitecture:
        try:
            return SOSArchitecture(
                layers=self.layers,
                mapping=self.mapping,
                total_overlay_nodes=self.overlay_nodes,
                sos_nodes=self.sos_nodes,
                filters=self.filters,
            )
        except Exception as exc:
            raise ScenarioError(f"invalid architecture: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any) -> "ArchitectureSpec":
        check_schema(payload, cls.SCHEMA, ScenarioError, "architecture")
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class SimSpec:
    """Packet-engine knobs a scenario pins (flood shape lives in the
    vectors, so the classic ``flood_rate``/``flood_start`` stay out)."""

    duration: float = 16.0
    warmup: float = 2.0
    clients: int = 6
    client_rate: float = 2.0
    node_capacity: float = 50.0
    hop_latency: float = 0.05

    SCHEMA = {
        "duration": _positive_number(),
        "warmup": _non_negative_number(),
        "clients": Field(
            (int,), required=False, check=lambda v: v >= 0, describe=">= 0"
        ),
        "client_rate": _positive_number(),
        "node_capacity": _positive_number(),
        "hop_latency": _positive_number(),
    }

    def __post_init__(self) -> None:
        self.to_config()  # PacketSimConfig validates ranges eagerly

    def to_config(self, tier: str = "numpy") -> PacketSimConfig:
        try:
            return PacketSimConfig(
                duration=self.duration,
                warmup=self.warmup,
                clients=self.clients,
                client_rate=self.client_rate,
                node_capacity=self.node_capacity,
                hop_latency=self.hop_latency,
                tier=tier,
            )
        except Exception as exc:
            raise ScenarioError(f"invalid sim settings: {exc}") from exc

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Any) -> "SimSpec":
        check_schema(payload, cls.SCHEMA, ScenarioError, "sim")
        body = {
            name: float(value)
            if name != "clients"
            and isinstance(value, int)
            and not isinstance(value, bool)
            else value
            for name, value in payload.items()
        }
        return cls(**body)


@dataclasses.dataclass(frozen=True)
class PhaseSpec:
    """One named window of the campaign timeline."""

    name: str
    start: float
    duration: float
    vectors: Tuple[AttackVector, ...] = ()

    SCHEMA = {
        "name": Field((str,), check=bool, describe="non-empty"),
        "start": Field((int, float), check=lambda v: v >= 0, describe=">= 0"),
        "duration": Field((int, float), check=lambda v: v > 0, describe="> 0"),
        "vectors": Field((list,), required=False),
    }

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("phase name must be non-empty")
        if self.start < 0:
            raise ScenarioError(
                f"phase {self.name!r}: start must be >= 0, got {self.start}"
            )
        if self.duration <= 0:
            raise ScenarioError(
                f"phase {self.name!r}: duration must be > 0, got "
                f"{self.duration}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "vectors": [vector.to_dict() for vector in self.vectors],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "PhaseSpec":
        check_schema(payload, cls.SCHEMA, ScenarioError, "phase")
        vectors = tuple(
            vector_from_dict(entry) for entry in payload.get("vectors", [])
        )
        return cls(
            name=payload["name"],
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            vectors=vectors,
        )


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A named, fully reproducible multi-vector campaign."""

    name: str
    description: str = ""
    seed: int = 0
    engine: str = "fast"
    tier: str = "numpy"
    architecture: ArchitectureSpec = dataclasses.field(
        default_factory=ArchitectureSpec
    )
    sim: SimSpec = dataclasses.field(default_factory=SimSpec)
    phases: Tuple[PhaseSpec, ...] = ()

    SCHEMA = {
        "name": Field((str,), check=bool, describe="non-empty"),
        "description": Field((str,), required=False),
        "seed": Field(
            (int,), required=False, check=lambda v: v >= 0, describe=">= 0"
        ),
        "engine": Field(
            (str,),
            required=False,
            check=lambda v: v in SCENARIO_ENGINES,
            describe=f"one of {SCENARIO_ENGINES}",
        ),
        "tier": Field(
            (str,),
            required=False,
            check=lambda v: v in SCENARIO_TIERS,
            describe=f"one of {SCENARIO_TIERS}",
        ),
        "architecture": Field((dict,), required=False),
        "sim": Field((dict,), required=False),
        "phases": Field((list,), required=False),
    }

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.seed < 0 or isinstance(self.seed, bool):
            raise ScenarioError(f"seed must be an int >= 0, got {self.seed!r}")
        if self.engine not in SCENARIO_ENGINES:
            raise ScenarioError(
                f"engine must be one of {SCENARIO_ENGINES}, got "
                f"{self.engine!r}"
            )
        if self.tier not in SCENARIO_TIERS:
            raise ScenarioError(
                f"tier must be one of {SCENARIO_TIERS}, got {self.tier!r}"
            )
        seen: Dict[str, int] = {}
        for index, phase in enumerate(self.phases):
            if phase.name in seen:
                raise ScenarioError(
                    f"duplicate phase name {phase.name!r} (positions "
                    f"{seen[phase.name]} and {index})"
                )
            seen[phase.name] = index
            if phase.end > self.sim.duration + 1e-9:
                raise ScenarioError(
                    f"phase {phase.name!r} ends at {phase.end} but the sim "
                    f"runs only to {self.sim.duration}"
                )
            for vector in phase.vectors:
                layer = getattr(vector, "layer", None)
                if layer is not None and layer > self.architecture.layers + 1:
                    raise ScenarioError(
                        f"phase {phase.name!r}: vector {vector.kind!r} "
                        f"targets layer {layer} but the architecture has "
                        f"layers 1..{self.architecture.layers + 1}"
                    )

    # -- execution-facing accessors ------------------------------------
    def sim_config(self, tier: Any = None) -> PacketSimConfig:
        """The :class:`PacketSimConfig` this scenario runs under;
        ``tier`` overrides the spec's own tier knob."""
        return self.sim.to_config(tier=tier if tier is not None else self.tier)

    def build_architecture(self) -> SOSArchitecture:
        return self.architecture.build()

    def vector_occurrences(self) -> List[Tuple[PhaseSpec, AttackVector]]:
        """Vectors in deterministic (phase order, in-phase order) — the
        occurrence index the stream derivation keys on."""
        return [
            (phase, vector)
            for phase in self.phases
            for vector in phase.vectors
        ]

    # -- serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "engine": self.engine,
            "tier": self.tier,
            "architecture": self.architecture.to_dict(),
            "sim": self.sim.to_dict(),
            "phases": [phase.to_dict() for phase in self.phases],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "ScenarioSpec":
        check_schema(payload, cls.SCHEMA, ScenarioError, "scenario")
        return cls(
            name=payload["name"],
            description=payload.get("description", ""),
            seed=payload.get("seed", 0),
            engine=payload.get("engine", "fast"),
            tier=payload.get("tier", "numpy"),
            architecture=ArchitectureSpec.from_dict(
                payload.get("architecture", ArchitectureSpec().to_dict())
            ),
            sim=SimSpec.from_dict(payload.get("sim", SimSpec().to_dict())),
            phases=tuple(
                PhaseSpec.from_dict(entry)
                for entry in payload.get("phases", [])
            ),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario JSON does not parse: {exc}") from exc
        return cls.from_dict(payload)
