"""Run a scenario end to end through the detection→repair loop.

:func:`run_scenario` is the one entry point the CLI, the ``scn-zoo``
experiment, the scenario-smoke harness, and the service's
``{"scenario": ...}`` campaign payloads all share. It wraps
:meth:`~repro.detection.loop.DetectionRepairLoop.run_scenario` and
summarizes the phased outcome as a JSON-friendly
:class:`ScenarioRunReport` carrying both the delivery trajectory and
the detection-quality numbers (precision/recall against the schedule's
ground-truth target set).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.detection.loop import LOOP_MODES, DetectionRepairLoop, LoopResult
from repro.detection.monitor import MonitorConfig
from repro.errors import ScenarioError
from repro.repair.policy import RepairPolicy
from repro.scenarios.spec import SCENARIO_ENGINES, SCENARIO_TIERS, ScenarioSpec
from repro.scenarios.zoo import load_scenario

__all__ = ["ScenarioRunReport", "run_scenario"]


@dataclasses.dataclass(frozen=True)
class ScenarioRunReport:
    """Summary of one scenario campaign, ready for JSON."""

    scenario: str
    mode: str
    engine: str
    tier: str
    seed: int
    phases: int
    initial_targets: Tuple[int, ...]
    delivery_per_phase: Tuple[float, ...]
    sent_per_phase: Tuple[int, ...]
    attack_packets_per_phase: Tuple[int, ...]
    flagged_per_phase: Tuple[Tuple[int, ...], ...]
    repaired_per_phase: Tuple[Tuple[int, ...], ...]
    precision: float
    recall: float

    @property
    def final_delivery(self) -> float:
        return self.delivery_per_phase[-1]

    @property
    def total_repaired(self) -> int:
        return sum(len(nodes) for nodes in self.repaired_per_phase)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "engine": self.engine,
            "tier": self.tier,
            "seed": self.seed,
            "phases": self.phases,
            "initial_targets": list(self.initial_targets),
            "delivery_per_phase": list(self.delivery_per_phase),
            "sent_per_phase": list(self.sent_per_phase),
            "attack_packets_per_phase": list(self.attack_packets_per_phase),
            "flagged_per_phase": [
                list(nodes) for nodes in self.flagged_per_phase
            ],
            "repaired_per_phase": [
                list(nodes) for nodes in self.repaired_per_phase
            ],
            "precision": self.precision,
            "recall": self.recall,
            "final_delivery": self.final_delivery,
            "total_repaired": self.total_repaired,
        }


def _summarize(
    result: LoopResult, spec: ScenarioSpec, engine: str, tier: str, seed: int
) -> ScenarioRunReport:
    truth = set(result.initial_targets)
    flagged_union = {
        node for outcome in result.outcomes for node in outcome.flagged
    }
    hits = len(flagged_union & truth)
    # Empty-side conventions: nothing flagged -> perfect precision (no
    # false alarms were raised); empty truth (benign-only scenario) ->
    # perfect recall (there was nothing to find).
    precision = 1.0 if not flagged_union else hits / len(flagged_union)
    recall = 1.0 if not truth else hits / len(truth)
    return ScenarioRunReport(
        scenario=spec.name,
        mode=result.mode,
        engine=engine,
        tier=tier,
        seed=seed,
        phases=len(result.outcomes),
        initial_targets=tuple(result.initial_targets),
        delivery_per_phase=tuple(
            outcome.delivery_ratio for outcome in result.outcomes
        ),
        sent_per_phase=tuple(outcome.sent for outcome in result.outcomes),
        attack_packets_per_phase=tuple(
            outcome.attack_packets for outcome in result.outcomes
        ),
        flagged_per_phase=tuple(
            outcome.flagged for outcome in result.outcomes
        ),
        repaired_per_phase=tuple(
            outcome.repaired for outcome in result.outcomes
        ),
        precision=precision,
        recall=recall,
    )


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    mode: str = "detected",
    phases: int = 3,
    engine: Optional[str] = None,
    tier: Optional[str] = None,
    seed: Optional[int] = None,
    monitor_config: Optional[MonitorConfig] = None,
    policy: Optional[RepairPolicy] = None,
    abort_check: Optional[Callable[[], None]] = None,
) -> ScenarioRunReport:
    """Run ``scenario`` (a zoo name or a spec) through the repair loop.

    ``engine``/``tier``/``seed`` default to the spec's own knobs, so a
    bare ``run_scenario("pulsing-shrew")`` reproduces the committed
    campaign bit for bit; overrides never mutate the spec.
    """
    spec = load_scenario(scenario) if isinstance(scenario, str) else scenario
    if not isinstance(spec, ScenarioSpec):
        raise ScenarioError(
            f"scenario must be a zoo name or ScenarioSpec, got {spec!r}"
        )
    if mode not in LOOP_MODES:
        raise ScenarioError(f"mode must be one of {LOOP_MODES}, got {mode!r}")
    if engine is not None and engine not in SCENARIO_ENGINES:
        raise ScenarioError(
            f"engine must be one of {SCENARIO_ENGINES}, got {engine!r}"
        )
    if tier is not None and tier not in SCENARIO_TIERS:
        raise ScenarioError(
            f"tier must be one of {SCENARIO_TIERS}, got {tier!r}"
        )
    resolved_engine = engine if engine is not None else spec.engine
    resolved_tier = tier if tier is not None else spec.tier
    resolved_seed = seed if seed is not None else spec.seed
    loop = DetectionRepairLoop.for_scenario(
        spec,
        monitor_config=monitor_config,
        policy=policy,
        seed=resolved_seed,
        tier=resolved_tier,
    )
    result = loop.run_scenario(
        spec,
        mode=mode,
        phases=phases,
        fast=resolved_engine == "fast",
        abort_check=abort_check,
    )
    return _summarize(
        result, spec, resolved_engine, resolved_tier, resolved_seed
    )
