"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` to offer streams.

:func:`compile_scenario` lowers every vector occurrence of a spec to
concrete absolute-time arrays and merges them into one
:class:`InjectionSchedule` — the single artifact both packet engines
consume, making cross-engine injection identity structural rather than
a sampling coincidence.

Stream derivation (the load-bearing part):

* Occurrence ``k`` (vectors enumerated phase-major, in-phase order) gets
  a **target stream** from ``SeedSequence(spec.seed,
  spawn_key=(TARGET_DOMAIN, k))`` and a **time stream** from
  ``SeedSequence(spec.seed, spawn_key=(TIME_DOMAIN, k, salt))``. Keyed
  fan-out means appending a vector (or a phase) derives fresh streams
  without perturbing any existing occurrence's draws — the property the
  add-a-vector tests pin.
* ``salt`` (the detection→repair loop passes its phase index) varies
  *time* streams only: each loop phase sees fresh attack traffic while
  target selection stays fixed, so "repaired nodes leave the active
  set" keeps its meaning under recompilation —
  :meth:`InjectionSchedule.without_targets` subtracts repaired nodes
  from a stable target set.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.vectors import CompiledVector, SurgeSource
from repro.sos.deployment import SOSDeployment

__all__ = [
    "CompiledScenario",
    "InjectionSchedule",
    "compile_scenario",
]

#: spawn-key domains; disjoint from every ``Generator.spawn`` fan-out in
#: the engines (those extend a stream's own key, these root at the spec
#: seed) and from each other.
TARGET_DOMAIN = 0x5C01
TIME_DOMAIN = 0x5C02


def _occurrence_streams(
    seed: int, occurrence: int, salt: int
) -> Tuple[np.random.Generator, np.random.Generator]:
    target = np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed, spawn_key=(TARGET_DOMAIN, occurrence)
        )
    )
    times = np.random.default_rng(
        np.random.SeedSequence(
            entropy=seed, spawn_key=(TIME_DOMAIN, occurrence, salt)
        )
    )
    return target, times


@dataclasses.dataclass(frozen=True)
class InjectionSchedule:
    """Merged offer streams of one compiled scenario.

    ``attack_times`` maps node id -> sorted absolute offer instants
    (attack packets: consume capacity, never forwarded). The engines
    clip both kinds of rows to their config's ``duration`` with the same
    mask, so a schedule compiled for one sim length replays consistently
    under a shorter one.
    """

    attack_times: Mapping[int, npt.NDArray[np.float64]]
    surge_sources: Tuple[SurgeSource, ...] = ()

    @property
    def attack_targets(self) -> Tuple[int, ...]:
        return tuple(sorted(self.attack_times))

    @property
    def total_attack_packets(self) -> int:
        return int(sum(len(times) for times in self.attack_times.values()))

    @property
    def total_surge_packets(self) -> int:
        return int(sum(len(source.times) for source in self.surge_sources))

    def without_targets(self, removed: Iterable[int]) -> "InjectionSchedule":
        """The schedule after repairing ``removed`` nodes (re-keying: the
        attacker's traffic at their old identities no longer lands)."""
        gone = set(removed)
        return InjectionSchedule(
            attack_times={
                node: times
                for node, times in self.attack_times.items()
                if node not in gone
            },
            surge_sources=self.surge_sources,
        )

    def fingerprint(self) -> str:
        """Content hash over every target, instant, and surge source —
        the cross-engine/cross-process identity the smoke job compares."""
        digest = hashlib.sha256()
        for node in self.attack_targets:
            digest.update(str(node).encode())
            digest.update(
                np.ascontiguousarray(
                    self.attack_times[node], dtype=np.float64
                ).tobytes()
            )
        for source in self.surge_sources:
            digest.update(repr(source.contacts).encode())
            digest.update(
                np.ascontiguousarray(source.times, dtype=np.float64).tobytes()
            )
        return digest.hexdigest()


@dataclasses.dataclass(frozen=True)
class CompiledScenario:
    """A spec lowered against one deployment."""

    spec: ScenarioSpec
    salt: int
    vectors: Tuple[CompiledVector, ...]
    schedule: InjectionSchedule


def compile_scenario(
    spec: ScenarioSpec,
    deployment: SOSDeployment,
    salt: int = 0,
) -> CompiledScenario:
    """Lower ``spec`` to an :class:`InjectionSchedule` on ``deployment``.

    Pure in ``(spec, deployment, salt)``: compiling twice yields
    bit-identical arrays, which is what makes per-(spec, seed) reports
    reproducible on each engine and injection schedules identical
    across them.
    """
    if salt < 0:
        raise ScenarioError(f"salt must be >= 0, got {salt}")
    compiled: List[CompiledVector] = []
    attack_rows: Dict[int, List[npt.NDArray[np.float64]]] = {}
    surges: List[SurgeSource] = []
    for occurrence, (phase, vector) in enumerate(spec.vector_occurrences()):
        target_stream, time_stream = _occurrence_streams(
            spec.seed, occurrence, salt
        )
        piece = vector.compile(
            deployment,
            phase.start,
            phase.end,
            phase.name,
            target_stream,
            time_stream,
        )
        compiled.append(piece)
        for node, times in piece.attack_times.items():
            attack_rows.setdefault(int(node), []).append(times)
        surges.extend(piece.surge_sources)
    merged: Dict[int, npt.NDArray[np.float64]] = {}
    for node, rows in attack_rows.items():
        times = np.sort(np.concatenate(rows)) if len(rows) > 1 else rows[0]
        if len(times):
            merged[node] = times
    schedule = InjectionSchedule(
        attack_times=merged, surge_sources=tuple(surges)
    )
    return CompiledScenario(
        spec=spec, salt=salt, vectors=tuple(compiled), schedule=schedule
    )
