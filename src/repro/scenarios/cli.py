"""Command-line interface for the scenario zoo.

Installed as ``repro-scenarios``::

    repro-scenarios list [--verbose]
    repro-scenarios show pulsing-shrew
    repro-scenarios run pulsing-shrew --mode detected --engine event
    repro-scenarios run --spec my-campaign.json --json report.json

``show`` prints the committed spec JSON; ``run`` replays a campaign
through the detection→repair loop and prints its phased report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.detection.loop import LOOP_MODES
from repro.errors import ReproError
from repro.scenarios.runner import ScenarioRunReport, run_scenario
from repro.scenarios.spec import (
    SCENARIO_ENGINES,
    SCENARIO_TIERS,
    ScenarioSpec,
)
from repro.scenarios.zoo import list_scenarios, load_scenario, scenario_path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="List, inspect, and run attack-campaign scenarios.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_cmd = commands.add_parser("list", help="list zoo scenarios")
    list_cmd.add_argument(
        "--verbose", action="store_true", help="include descriptions"
    )

    show_cmd = commands.add_parser("show", help="print a scenario spec")
    show_cmd.add_argument("name", help="zoo scenario name")

    run_cmd = commands.add_parser("run", help="run a scenario campaign")
    run_cmd.add_argument(
        "name", nargs="?", help="zoo scenario name (or use --spec)"
    )
    run_cmd.add_argument(
        "--spec", metavar="PATH", help="run a spec from a JSON file instead"
    )
    run_cmd.add_argument(
        "--mode",
        choices=LOOP_MODES,
        default="detected",
        help="repair mode (default: detected)",
    )
    run_cmd.add_argument(
        "--phases", type=int, default=3, help="repair phases (default: 3)"
    )
    run_cmd.add_argument(
        "--engine",
        choices=SCENARIO_ENGINES,
        help="packet engine (default: the spec's)",
    )
    run_cmd.add_argument(
        "--tier",
        choices=SCENARIO_TIERS,
        help="execution tier (default: the spec's)",
    )
    run_cmd.add_argument(
        "--seed", type=int, help="seed override (default: the spec's)"
    )
    run_cmd.add_argument(
        "--json", metavar="PATH", help="also write the report as JSON"
    )
    return parser


def _render_report(report: ScenarioRunReport) -> str:
    lines = [
        f"scenario {report.scenario}: mode={report.mode} "
        f"engine={report.engine} tier={report.tier} seed={report.seed}",
        f"  initial targets ({len(report.initial_targets)}): "
        f"{list(report.initial_targets)}",
    ]
    for phase in range(report.phases):
        lines.append(
            f"  phase {phase}: delivery="
            f"{report.delivery_per_phase[phase]:.4f} "
            f"sent={report.sent_per_phase[phase]} "
            f"attack={report.attack_packets_per_phase[phase]} "
            f"flagged={len(report.flagged_per_phase[phase])} "
            f"repaired={len(report.repaired_per_phase[phase])}"
        )
    lines.append(
        f"  final delivery={report.final_delivery:.4f} "
        f"precision={report.precision:.4f} recall={report.recall:.4f} "
        f"repaired={report.total_repaired}"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            for name in list_scenarios():
                if args.verbose:
                    spec = load_scenario(name)
                    print(f"{name}: {spec.description}")
                else:
                    print(name)
            return 0

        if args.command == "show":
            print(scenario_path(args.name).read_text().rstrip("\n"))
            return 0

        # run
        if (args.name is None) == (args.spec is None):
            print(
                "pass exactly one of a zoo name or --spec PATH",
                file=sys.stderr,
            )
            return 2
        if args.spec is not None:
            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                print(f"error: cannot read {args.spec}: {exc}", file=sys.stderr)
                return 1
            scenario = ScenarioSpec.from_json(text)
        else:
            scenario = load_scenario(args.name)
        report = run_scenario(
            scenario,
            mode=args.mode,
            phases=args.phases,
            engine=args.engine,
            tier=args.tier,
            seed=args.seed,
        )
        print(_render_report(report))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, indent=2)
                handle.write("\n")
            print(f"wrote JSON to {args.json}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
