"""The committed scenario zoo: named, reproducible campaign specs.

Every ``zoo/<name>.json`` is the exact ``ScenarioSpec.to_dict()`` output
(defaults included) of one curated scenario — the golden-file tests
compare the committed bytes against a fresh round-trip, so drifting the
DSL without regenerating the zoo fails loudly. Load by name::

    from repro.scenarios import load_scenario
    spec = load_scenario("pulsing-shrew")
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List

from repro.errors import ScenarioError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["ZOO_DIR", "list_scenarios", "load_scenario", "scenario_path"]

ZOO_DIR = Path(__file__).resolve().parent / "zoo"


def list_scenarios() -> List[str]:
    """Sorted names of every committed zoo scenario."""
    if not ZOO_DIR.is_dir():
        return []
    return sorted(path.stem for path in ZOO_DIR.glob("*.json"))


def scenario_path(name: str) -> Path:
    """Path of the committed spec for ``name`` (validated to exist)."""
    if not name or "/" in name or "\\" in name or name.startswith("."):
        raise ScenarioError(f"invalid scenario name {name!r}")
    path = ZOO_DIR / f"{name}.json"
    if not path.is_file():
        raise ScenarioError(
            f"unknown scenario {name!r}; available: {list_scenarios()}"
        )
    return path


def load_scenario(name: str) -> ScenarioSpec:
    """Load and validate one zoo scenario by name."""
    path = scenario_path(name)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(
            f"zoo file {path.name} does not parse: {exc}"
        ) from exc
    spec = ScenarioSpec.from_dict(payload)
    if spec.name != name:
        raise ScenarioError(
            f"zoo file {path.name} declares name {spec.name!r}; the file "
            "stem and spec name must match"
        )
    return spec
