"""Composable attack/traffic vector generators.

A *vector* is a pure, frozen configuration describing one traffic shape —
a pulsing (shrew-style) flood, a ramping botnet wave with per-bot churn,
a concentrated low-rate DoS against a chosen relay layer (per the Tor
DoS analysis, arXiv:1110.5395), or a benign flash crowd. Vectors do not
run anything themselves: :meth:`AttackVector.compile` turns one into
concrete per-source offer streams — absolute arrival-time arrays — as a
pure function of ``(vector config, dedicated RNG streams, deployment)``.

Both packet engines then consume those *same arrays* (the event engine
chains them as scheduler events, the fast engine merges them into its
pre-sampled rows), which is what makes every vector bit-identical across
engines by construction: there is exactly one injection schedule, not
two independently sampled ones.

Stream discipline mirrors the PR-4/5 per-target flood sub-streams: each
vector occurrence in a :class:`~repro.scenarios.spec.ScenarioSpec` gets
its own ``SeedSequence``-derived target stream and time stream (see
:mod:`repro.scenarios.schedule`), and per-target/per-bot/per-client
draws spawn off those in sorted, deterministic order — so adding a
vector to a scenario never perturbs another vector's randomness.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, ClassVar, Dict, List, Mapping, Tuple, Type

import numpy as np
import numpy.typing as npt

from repro.contracts import Field, check_schema
from repro.errors import ScenarioError
from repro.sos.deployment import SOSDeployment

__all__ = [
    "AttackVector",
    "BenignSurge",
    "BotnetWave",
    "CompiledVector",
    "PulsingFlood",
    "SurgeSource",
    "TargetedLowRate",
    "VECTOR_KINDS",
    "poisson_times",
    "vector_from_dict",
]


def poisson_times(
    stream: np.random.Generator, rate: float, start: float, end: float
) -> npt.NDArray[np.float64]:
    """Poisson arrival times in ``(start, end)`` from one dedicated stream.

    Block exponential draws + cumsum, like the fast engine's
    pre-sampler. Scenario times do not need to replicate any engine's
    internal draw layout — both engines consume this *array*, so
    cross-engine identity is structural — but the block pattern keeps
    compilation O(1) stream calls per source. ``rate <= 0`` or an empty
    window yields no arrivals and consumes nothing.
    """
    if rate <= 0.0 or end <= start:
        return np.empty(0, dtype=np.float64)
    expected = rate * (end - start)
    width = max(4, int(expected + 10.0 * math.sqrt(expected) + 16.0))
    times = start + np.cumsum(stream.exponential(1.0 / rate, size=width))
    while float(times[-1]) < end:
        more = stream.exponential(1.0 / rate, size=width)
        times = np.concatenate([times, times[-1] + np.cumsum(more)])
    return times[times < end]


@dataclasses.dataclass(frozen=True)
class SurgeSource:
    """One extra legitimate traffic source compiled from a benign vector.

    ``contacts`` are the source's layer-1 access points (sampled like a
    regular client's); ``times`` are its absolute injection instants.
    Surge packets route, consume capacity, and count toward ``sent`` /
    ``delivered`` exactly like baseline client packets.
    """

    contacts: Tuple[int, ...]
    times: npt.NDArray[np.float64]


@dataclasses.dataclass(frozen=True)
class CompiledVector:
    """One vector occurrence lowered to concrete offer streams."""

    kind: str
    phase: str
    attack_times: Mapping[int, npt.NDArray[np.float64]]
    surge_sources: Tuple[SurgeSource, ...]

    @property
    def total_attack_packets(self) -> int:
        return int(sum(len(times) for times in self.attack_times.values()))

    @property
    def total_surge_packets(self) -> int:
        return int(sum(len(source.times) for source in self.surge_sources))


def _positive(value: Any) -> bool:
    return float(value) > 0.0


def _fraction(value: Any) -> bool:
    return 0.0 < float(value) <= 1.0


def _layer_field() -> Field:
    return Field((int,), required=False, check=lambda v: v >= 1, describe=">= 1")


def _rate_field() -> Field:
    return Field((int, float), required=False, check=_positive, describe="> 0")


def _check_positive(vector: "AttackVector", *names: str) -> None:
    for name in names:
        if getattr(vector, name) <= 0:
            raise ScenarioError(
                f"{vector.kind}: {name} must be > 0, got "
                f"{getattr(vector, name)!r}"
            )


def _layer_members(
    deployment: SOSDeployment, layer: int, kind: str
) -> npt.NDArray[np.int64]:
    last = deployment.architecture.layers + 1
    if not 1 <= layer <= last:
        raise ScenarioError(
            f"{kind}: layer {layer} out of range 1..{last} for this "
            "architecture"
        )
    return np.asarray(deployment.layer_members(layer), dtype=np.int64)


def _choose_fraction_targets(
    deployment: SOSDeployment,
    layer: int,
    fraction: float,
    stream: np.random.Generator,
    kind: str,
) -> List[int]:
    """The :func:`~repro.simulation.packet_sim.flood_layer` draw, off the
    vector's dedicated target stream."""
    members = _layer_members(deployment, layer, kind)
    count = max(1, int(round(fraction * len(members))))
    chosen = stream.choice(
        len(members), size=min(count, len(members)), replace=False
    )
    return sorted(int(members[int(i)]) for i in chosen)


class AttackVector:
    """Base class for scenario vectors. Subclasses are frozen dataclasses.

    ``kind`` keys the serialization registry; ``SCHEMA`` validates the
    decoded-JSON body (``intensity`` is shared by every vector and
    scales its traffic rates without touching target selection).
    """

    kind: ClassVar[str] = ""
    SCHEMA: ClassVar[Dict[str, Field]] = {}
    intensity: float

    def to_dict(self) -> Dict[str, Any]:
        """Full-fidelity dict (every field, defaults included)."""
        body = dataclasses.asdict(self)  # type: ignore[call-overload]
        return {"kind": self.kind, **body}

    def compile(
        self,
        deployment: SOSDeployment,
        start: float,
        end: float,
        phase: str,
        target_stream: np.random.Generator,
        time_stream: np.random.Generator,
    ) -> CompiledVector:
        """Lower this vector to offer streams active in ``[start, end)``."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class PulsingFlood(AttackVector):
    """Shrew-style on/off flood: full-rate bursts gated by a duty cycle.

    Targets ``fraction`` of layer ``layer``'s members (same draw as the
    classic ``flood_layer``). Each target's Poisson offers at ``rate``
    are kept only while ``(t - start) mod period < duty * period`` — the
    low *average* rate that slips under long-window detectors while the
    on-phase still saturates token buckets.
    """

    kind: ClassVar[str] = "pulsing-flood"
    layer: int = 1
    fraction: float = 0.5
    rate: float = 400.0
    period: float = 2.0
    duty: float = 0.5
    intensity: float = 1.0

    SCHEMA: ClassVar[Dict[str, Field]] = {
        "layer": _layer_field(),
        "fraction": Field(
            (int, float), required=False, check=_fraction, describe="in (0, 1]"
        ),
        "rate": _rate_field(),
        "period": _rate_field(),
        "duty": Field(
            (int, float), required=False, check=_fraction, describe="in (0, 1]"
        ),
        "intensity": _rate_field(),
    }

    def __post_init__(self) -> None:
        _check_positive(self, "rate", "period", "intensity")
        if self.layer < 1:
            raise ScenarioError(f"{self.kind}: layer must be >= 1")
        for name in ("fraction", "duty"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ScenarioError(
                    f"{self.kind}: {name} must be in (0, 1], got "
                    f"{getattr(self, name)!r}"
                )

    def compile(
        self,
        deployment: SOSDeployment,
        start: float,
        end: float,
        phase: str,
        target_stream: np.random.Generator,
        time_stream: np.random.Generator,
    ) -> CompiledVector:
        targets = _choose_fraction_targets(
            deployment, self.layer, self.fraction, target_stream, self.kind
        )
        # One child stream per target, spawned in sorted-target order —
        # the flood-master discipline — so a target's schedule depends
        # only on its position, never on other targets' draw counts.
        subs = time_stream.spawn(len(targets))
        attack: Dict[int, npt.NDArray[np.float64]] = {}
        on_window = self.duty * self.period
        for target, sub in zip(targets, subs):
            times = poisson_times(sub, self.rate * self.intensity, start, end)
            attack[target] = times[(times - start) % self.period < on_window]
        return CompiledVector(self.kind, phase, attack, ())


@dataclasses.dataclass(frozen=True)
class BotnetWave(AttackVector):
    """Mirai-style wave: bots recruit at a Poisson ramp and churn out.

    ``bots`` total bots split round-robin across the chosen targets.
    Per target, bot ``b`` comes online ``Exp(1/recruit_rate)`` after bot
    ``b - 1`` (cumulative ramp from the phase start), stays for an
    ``Exp(mean_lifetime)`` lifetime, and emits Poisson offers at
    ``rate_per_bot`` while alive — so the aggregate rate ramps up as the
    wave recruits and decays as bots churn, instead of the classic
    step-function flood.
    """

    kind: ClassVar[str] = "botnet-wave"
    layer: int = 1
    fraction: float = 0.5
    bots: int = 40
    rate_per_bot: float = 25.0
    recruit_rate: float = 4.0
    mean_lifetime: float = 6.0
    intensity: float = 1.0

    SCHEMA: ClassVar[Dict[str, Field]] = {
        "layer": _layer_field(),
        "fraction": Field(
            (int, float), required=False, check=_fraction, describe="in (0, 1]"
        ),
        "bots": Field(
            (int,), required=False, check=lambda v: v >= 1, describe=">= 1"
        ),
        "rate_per_bot": _rate_field(),
        "recruit_rate": _rate_field(),
        "mean_lifetime": _rate_field(),
        "intensity": _rate_field(),
    }

    def __post_init__(self) -> None:
        _check_positive(
            self, "rate_per_bot", "recruit_rate", "mean_lifetime", "intensity"
        )
        if self.layer < 1:
            raise ScenarioError(f"{self.kind}: layer must be >= 1")
        if self.bots < 1:
            raise ScenarioError(f"{self.kind}: bots must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise ScenarioError(
                f"{self.kind}: fraction must be in (0, 1], got "
                f"{self.fraction!r}"
            )

    def compile(
        self,
        deployment: SOSDeployment,
        start: float,
        end: float,
        phase: str,
        target_stream: np.random.Generator,
        time_stream: np.random.Generator,
    ) -> CompiledVector:
        targets = _choose_fraction_targets(
            deployment, self.layer, self.fraction, target_stream, self.kind
        )
        subs = time_stream.spawn(len(targets))
        share, remainder = divmod(self.bots, max(len(targets), 1))
        attack: Dict[int, npt.NDArray[np.float64]] = {}
        for index, (target, sub) in enumerate(zip(targets, subs)):
            bots_here = share + (1 if index < remainder else 0)
            pieces: List[npt.NDArray[np.float64]] = []
            onset = start
            for _ in range(bots_here):
                onset = onset + float(sub.exponential(1.0 / self.recruit_rate))
                lifetime = float(sub.exponential(self.mean_lifetime))
                pieces.append(
                    poisson_times(
                        sub,
                        self.rate_per_bot * self.intensity,
                        onset,
                        min(onset + lifetime, end),
                    )
                )
            merged = (
                np.sort(np.concatenate(pieces))
                if pieces
                else np.empty(0, dtype=np.float64)
            )
            attack[target] = merged
        return CompiledVector(self.kind, phase, attack, ())


@dataclasses.dataclass(frozen=True)
class TargetedLowRate(AttackVector):
    """Concentrated low-rate DoS against ``count`` chosen relay nodes.

    The Tor-DoS shape (arXiv:1110.5395): instead of saturating a whole
    layer, pick a handful of relays — typically deeper layers (beacons /
    servlets), whose loss a path cannot route around as easily — and
    hold each just past its capacity knee with steady Poisson offers.
    """

    kind: ClassVar[str] = "targeted-low-rate"
    layer: int = 2
    count: int = 2
    rate: float = 80.0
    intensity: float = 1.0

    SCHEMA: ClassVar[Dict[str, Field]] = {
        "layer": _layer_field(),
        "count": Field(
            (int,), required=False, check=lambda v: v >= 1, describe=">= 1"
        ),
        "rate": _rate_field(),
        "intensity": _rate_field(),
    }

    def __post_init__(self) -> None:
        _check_positive(self, "rate", "intensity")
        if self.layer < 1:
            raise ScenarioError(f"{self.kind}: layer must be >= 1")
        if self.count < 1:
            raise ScenarioError(f"{self.kind}: count must be >= 1")

    def compile(
        self,
        deployment: SOSDeployment,
        start: float,
        end: float,
        phase: str,
        target_stream: np.random.Generator,
        time_stream: np.random.Generator,
    ) -> CompiledVector:
        members = _layer_members(deployment, self.layer, self.kind)
        chosen = target_stream.choice(
            len(members), size=min(self.count, len(members)), replace=False
        )
        targets = sorted(int(members[int(i)]) for i in chosen)
        subs = time_stream.spawn(len(targets))
        attack = {
            target: poisson_times(
                sub, self.rate * self.intensity, start, end
            )
            for target, sub in zip(targets, subs)
        }
        return CompiledVector(self.kind, phase, attack, ())


@dataclasses.dataclass(frozen=True)
class BenignSurge(AttackVector):
    """Flash crowd: extra *legitimate* clients arriving in a ramp.

    The false-positive stressor — load rises exactly like an attack's
    onset but every packet is a real request that should be delivered,
    so a detector that repairs surge-loaded nodes pays for nothing.
    Client ``i`` of ``clients`` starts ``ramp * i / clients`` into the
    phase, samples its own layer-1 access points (the regular client
    contact draw, off this vector's stream), and emits Poisson requests
    at ``rate`` until the phase ends.
    """

    kind: ClassVar[str] = "benign-surge"
    clients: int = 12
    rate: float = 4.0
    ramp: float = 2.0
    intensity: float = 1.0

    SCHEMA: ClassVar[Dict[str, Field]] = {
        "clients": Field(
            (int,), required=False, check=lambda v: v >= 1, describe=">= 1"
        ),
        "rate": _rate_field(),
        "ramp": Field(
            (int, float), required=False, check=lambda v: v >= 0, describe=">= 0"
        ),
        "intensity": _rate_field(),
    }

    def __post_init__(self) -> None:
        _check_positive(self, "rate", "intensity")
        if self.clients < 1:
            raise ScenarioError(f"{self.kind}: clients must be >= 1")
        if self.ramp < 0:
            raise ScenarioError(f"{self.kind}: ramp must be >= 0")

    def compile(
        self,
        deployment: SOSDeployment,
        start: float,
        end: float,
        phase: str,
        target_stream: np.random.Generator,
        time_stream: np.random.Generator,
    ) -> CompiledVector:
        sources: List[SurgeSource] = []
        for index in range(self.clients):
            onset = start + self.ramp * (index / self.clients)
            # Contacts then times, sequentially off the vector's time
            # stream: adding a client never perturbs earlier clients.
            contacts = tuple(
                int(c) for c in deployment.sample_client_contacts(time_stream)
            )
            times = poisson_times(
                time_stream, self.rate * self.intensity, onset, end
            )
            sources.append(SurgeSource(contacts=contacts, times=times))
        return CompiledVector(self.kind, phase, {}, tuple(sources))


#: Serialization registry: ``kind`` string -> vector class.
VECTOR_KINDS: Dict[str, Type[AttackVector]] = {
    cls.kind: cls
    for cls in (PulsingFlood, BotnetWave, TargetedLowRate, BenignSurge)
}


def vector_from_dict(payload: Any) -> AttackVector:
    """Decode one vector dict (``{"kind": ..., **params}``), validating
    field names, types, and ranges before construction."""
    if not isinstance(payload, dict):
        raise ScenarioError(
            f"vector must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or kind not in VECTOR_KINDS:
        raise ScenarioError(
            f"unknown vector kind {kind!r}; known kinds: "
            f"{sorted(VECTOR_KINDS)}"
        )
    cls = VECTOR_KINDS[kind]
    schema = {"kind": Field((str,)), **cls.SCHEMA}
    check_schema(payload, schema, ScenarioError, f"vector {kind!r}")
    # JSON has one number type; normalize ints into float-typed fields so
    # round-tripped specs compare equal to their in-memory originals.
    float_fields = {
        f.name for f in dataclasses.fields(cls) if f.type in ("float", float)
    }
    body: Dict[str, Any] = {}
    for name, value in payload.items():
        if name == "kind":
            continue
        if (
            name in float_fields
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            value = float(value)
        body[name] = value
    return cls(**body)
