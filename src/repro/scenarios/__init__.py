"""Multi-vector attack campaign DSL and reproducible scenario zoo.

Three layers (see ``docs/SCENARIOS.md``):

* :mod:`repro.scenarios.vectors` — composable attack/traffic vector
  generators (pulsing floods, botnet waves, targeted low-rate DoS,
  benign surges) compiling to engine-agnostic offer streams.
* :mod:`repro.scenarios.spec` / :mod:`repro.scenarios.schedule` — the
  declarative :class:`ScenarioSpec` (JSON round-trip, validated) and its
  deterministic lowering to an :class:`InjectionSchedule` both packet
  engines consume.
* :mod:`repro.scenarios.zoo` / :mod:`repro.scenarios.runner` — the
  committed named-scenario zoo and the detection→repair harness that
  runs a spec end to end (CLI: ``repro-scenarios``; HTTP:
  ``POST /campaign {"scenario": ...}``; figure: ``scn-zoo``).
"""

from repro.scenarios.runner import ScenarioRunReport, run_scenario
from repro.scenarios.schedule import (
    CompiledScenario,
    InjectionSchedule,
    compile_scenario,
)
from repro.scenarios.spec import (
    ArchitectureSpec,
    PhaseSpec,
    ScenarioSpec,
    SimSpec,
)
from repro.scenarios.vectors import (
    VECTOR_KINDS,
    AttackVector,
    BenignSurge,
    BotnetWave,
    CompiledVector,
    PulsingFlood,
    SurgeSource,
    TargetedLowRate,
    vector_from_dict,
)
from repro.scenarios.zoo import ZOO_DIR, list_scenarios, load_scenario

__all__ = [
    "ArchitectureSpec",
    "AttackVector",
    "BenignSurge",
    "BotnetWave",
    "CompiledScenario",
    "CompiledVector",
    "InjectionSchedule",
    "PhaseSpec",
    "PulsingFlood",
    "ScenarioRunReport",
    "ScenarioSpec",
    "SimSpec",
    "SurgeSource",
    "TargetedLowRate",
    "VECTOR_KINDS",
    "ZOO_DIR",
    "compile_scenario",
    "list_scenarios",
    "load_scenario",
    "run_scenario",
    "vector_from_dict",
]
