"""Repair policies: how the defender fights back between attack rounds.

The paper defers system repair to future work (§5), noting that the
successive attack is only dangerous when ``R`` stays small enough that the
system cannot "detect and recover from an on-going attack before the
attack is completed." This package supplies that missing defender.

A :class:`RepairPolicy` describes a periodic scan that runs after every
break-in round:

* each *bad* SOS node (compromised or congested) is detected independently
  with probability ``detection_probability``;
* at most ``capacity_per_round`` detected nodes are repaired per scan
  (operator bandwidth is finite); ``None`` means unbounded;
* a repaired node recovers, is **re-keyed and re-wired** (it gets a fresh
  neighbor table), and — crucially — every piece of attacker knowledge
  about it becomes stale: it leaves the attacker's disclosed set, and its
  old neighbor table is useless.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.utils.validation import check_probability


@dataclasses.dataclass(frozen=True)
class RepairPolicy:
    """Defender behavior between attack rounds.

    Attributes
    ----------
    detection_probability:
        Per-scan probability that a bad node is noticed.
    capacity_per_round:
        Maximum repairs per scan (``None`` = unlimited).
    rewire:
        When True (default), repaired nodes draw a fresh neighbor table, so
        previously disclosed information about them is invalidated.
    """

    detection_probability: float = 0.5
    capacity_per_round: Optional[int] = None
    rewire: bool = True

    def __post_init__(self) -> None:
        check_probability("detection_probability", self.detection_probability)
        if self.capacity_per_round is not None and self.capacity_per_round < 0:
            raise ValueError("capacity_per_round must be >= 0 or None")

    @property
    def is_noop(self) -> bool:
        """True when the policy can never repair anything."""
        return self.detection_probability <= 0.0 or self.capacity_per_round == 0


#: A defender that never repairs — reduces everything to the paper's model.
NO_REPAIR = RepairPolicy(detection_probability=0.0)
