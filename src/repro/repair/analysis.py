"""Average-case analysis of the successive attack with inter-round repair.

Complements the Monte Carlo estimator (:mod:`repro.repair.estimator`) with
a closed-form approximation in the spirit of the paper's §3 derivation:
after each break-in round, the defender detects and repairs each bad node
independently with probability ``rho`` (the detection probability). In the
average case this multiplies every damage set by ``(1 - rho)`` per
surviving round, and repaired nodes are re-keyed, so the attacker's
stale knowledge about them is discounted the same way.

Modeling notes (an approximation on top of an approximation — validated
against the executable defender in ``tests/repair/test_analysis.py``):

* the decay applies to broken-in counts, to the disclosed-unattacked pool
  that feeds the next round (``d^N``), and to the accumulated congestible
  sets (``u^D``, ``d^A``, ``f``);
* the *attempted* history ``h`` is also decayed — a re-keyed node looks
  fresh to the attacker and can be attacked again, so it re-enters the
  random pool;
* one final scan runs after the congestion phase when
  ``final_scan=True`` (default), matching the MC estimator's
  ``final_scans=1``: the congested sets are then also discounted once.

With ``rho = 0`` the model reduces exactly to
:func:`repro.core.successive.analyze_successive`.
"""

from __future__ import annotations

from typing import List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.layer_state import LayerState, SystemPerformance, path_availability
from repro.core.successive import (
    RoundCase,
    _Accumulator,
    _congestion_phase,
    _execute_round,
)
from repro.errors import ConfigurationError
from repro.utils.validation import check_probability


def _decay_accumulator(accumulator: _Accumulator, keep: float) -> None:
    """Scale every remembered damage set by the surviving fraction."""
    for field in (
        "cum_attacked",
        "cum_forfeited",
        "cum_broken",
        "cum_survived_disclosed",
        "cum_disclosed_survived_random",
    ):
        values = getattr(accumulator, field)
        for index in range(len(values)):
            values[index] *= keep
    accumulator.cum_filter_disclosed *= keep


def analyze_successive_with_repair(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    detection_probability: float,
    final_scan: bool = True,
) -> SystemPerformance:
    """Average-case ``P_S`` with a repairing defender between rounds.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> arch = SOSArchitecture(layers=4, mapping="one-to-two")
    >>> weak = analyze_successive_with_repair(arch, SuccessiveAttack(), 0.0)
    >>> strong = analyze_successive_with_repair(arch, SuccessiveAttack(), 0.9)
    >>> strong.p_s >= weak.p_s
    True
    """
    check_probability("detection_probability", detection_probability)
    if attack.n_t > architecture.total_overlay_nodes:
        raise ConfigurationError(
            f"break_in_budget ({attack.n_t}) exceeds overlay population "
            f"({architecture.total_overlay_nodes})"
        )
    keep = 1.0 - detection_probability
    num_slots = architecture.layers + 1
    accumulator = _Accumulator(num_slots)

    disclosed_prev: List[float] = [0.0] * num_slots
    disclosed_prev[0] = architecture.layer_sizes_tuple[0] * attack.p_e

    rounds = []
    budget = attack.n_t
    for round_index in range(1, attack.rounds + 1):
        state, budget = _execute_round(
            architecture, attack, accumulator, round_index, disclosed_prev, budget
        )
        rounds.append(state)
        # Defender scan: damage and attacker knowledge decay together.
        _decay_accumulator(accumulator, keep)
        disclosed_prev = [
            keep * v for v in state.disclosed_unattacked[: num_slots - 1]
        ] + [0.0]
        disclosed_prev[0] = 0.0
        if state.case in (RoundCase.FINAL_BUDGET, RoundCase.EXHAUSTED):
            break
        if budget <= 0.0:
            break

    # The defender's post-round scan also thins the final round's leftover
    # disclosed/forfeited pools before the congestion phase targets them.
    import dataclasses as _dataclasses

    final_round = _dataclasses.replace(
        rounds[-1],
        disclosed_unattacked=tuple(
            keep * v for v in rounds[-1].disclosed_unattacked
        ),
        forfeited=tuple(keep * v for v in rounds[-1].forfeited),
    )
    congested, n_d, n_b = _congestion_phase(
        architecture, attack, accumulator, final_round
    )
    if final_scan:
        congested = [keep * c for c in congested]

    sizes = architecture.layer_sizes_with_filters
    degrees = architecture.mapping_degrees
    layers = tuple(
        LayerState(
            index=i + 1,
            size=sizes[i],
            mapping_degree=degrees[i],
            broken_in=accumulator.cum_broken[i],
            congested=congested[i],
        )
        for i in range(len(sizes))
    )
    return SystemPerformance(
        p_s=path_availability(layers),
        layers=layers,
        broken_in_total=n_b,
        disclosed_total=n_d,
    )
