"""Dynamic repair: the defender the paper defers to future work (§5)."""

from repro.repair.analysis import analyze_successive_with_repair
from repro.repair.defender import RepairingDefender
from repro.repair.estimator import estimate_ps_with_repair, repair_benefit
from repro.repair.policy import NO_REPAIR, RepairPolicy

__all__ = [
    "analyze_successive_with_repair",
    "RepairingDefender",
    "estimate_ps_with_repair",
    "repair_benefit",
    "NO_REPAIR",
    "RepairPolicy",
]
