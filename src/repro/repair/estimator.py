"""Monte Carlo estimation of ``P_S`` with a repairing defender in the loop.

Mirrors :mod:`repro.simulation.monte_carlo` but interleaves
:class:`~repro.repair.defender.RepairingDefender` scans between the
attacker's break-in rounds, and runs one final scan before the congestion
phase's effect is measured — the attacker/defender race the paper's §5
describes.

Also provides :func:`steady_state_bound`, a coarse analytical sanity
bound: with per-round detection probability ``p`` the expected surviving
fraction of round-``k`` damage after ``R - k`` scans is ``(1 - p)^(R - k)``,
so damage discounted accordingly lower-bounds the repaired system's
health. The Monte Carlo estimate should land at or above the no-repair
``P_S`` and approach 1 as ``p -> 1`` with unbounded capacity.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.strategies import SuccessiveStrategy
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.errors import SimulationError
from repro.overlay.network import OverlayNetwork
from repro.repair.defender import RepairingDefender
from repro.repair.policy import RepairPolicy
from repro.simulation.results import PsEstimate, summarize_indicators
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedSequenceFactory


def estimate_ps_with_repair(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    policy: RepairPolicy,
    trials: int = 100,
    clients_per_trial: int = 4,
    final_scans: int = 1,
    seed: Optional[int] = None,
) -> PsEstimate:
    """Estimate ``P_S`` when a repairing defender races the attack.

    ``final_scans`` extra scans run after the congestion phase, modeling
    the defender continuing to recover flooded nodes while clients retry.
    """
    if trials < 1 or clients_per_trial < 1 or final_scans < 0:
        raise SimulationError("invalid trial configuration")
    factory = SeedSequenceFactory(seed)
    network = OverlayNetwork(
        architecture.total_overlay_nodes, rng=factory.generator()
    )
    strategy = SuccessiveStrategy()
    successes = []
    bad_counts = []
    for _ in range(trials):
        trial_rng = factory.generator()
        deployment = SOSDeployment.deploy(architecture, network=network, rng=trial_rng)
        defender = RepairingDefender(policy, rng=factory.generator())
        outcome = strategy.execute(
            deployment, attack, rng=trial_rng, on_round_end=defender
        )
        for _ in range(final_scans):
            defender.scan_and_repair(deployment, outcome.knowledge)
        protocol = SOSProtocol(deployment)
        hits = 0
        for _ in range(clients_per_trial):
            contacts = deployment.sample_client_contacts(trial_rng)
            receipt = protocol.send("c", "t", contacts=contacts, rng=trial_rng)
            hits += int(receipt.delivered)
        successes.append(hits / clients_per_trial)
        bad_counts.append(deployment.bad_counts())
    return summarize_indicators(successes, bad_counts)


def repair_benefit(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    policy: RepairPolicy,
    trials: int = 100,
    seed: Optional[int] = None,
) -> float:
    """Measured ``P_S`` improvement of repairing, apples to apples.

    Returns ``P_S(repaired) - P_S(no repair)``, both Monte Carlo over the
    same seed stream, so modeling error cancels and only the defender's
    effect remains. A no-op policy therefore yields exactly 0.
    """
    from repro.repair.policy import NO_REPAIR

    repaired = estimate_ps_with_repair(
        architecture, attack, policy, trials=trials, seed=seed
    )
    baseline = estimate_ps_with_repair(
        architecture, attack, NO_REPAIR, trials=trials, seed=seed
    )
    return repaired.mean - baseline.mean
