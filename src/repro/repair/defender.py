"""The repairing defender: executes a RepairPolicy against a deployment.

Plugs into :class:`~repro.attacks.strategies.SuccessiveStrategy` through
its ``on_round_end`` hook, so repair happens exactly where the paper's
future-work discussion places it: between successive break-in rounds,
racing the attacker's disclosure cascade.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.attacks.knowledge import AttackerKnowledge
from repro.repair.policy import RepairPolicy
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng

if TYPE_CHECKING:  # runtime import would cycle through repro.simulation
    from repro.resilience.detector import FailureDetector


class RepairingDefender:
    """Scans for bad SOS nodes after each attack round and repairs them.

    With a :class:`~repro.resilience.detector.FailureDetector` installed,
    detection is heartbeat-based: repair acts on nodes whose failure has
    been *observed* for long enough (plus the detector's false alarms)
    instead of the omniscient per-node coin the policy's
    ``detection_probability`` describes. The policy's capacity limit and
    rewire behavior apply either way.
    """

    def __init__(
        self,
        policy: RepairPolicy,
        rng: SeedLike = None,
        detector: "Optional[FailureDetector]" = None,
    ) -> None:
        self.policy = policy
        self._rng = make_rng(rng)
        self.detector = detector
        self.repairs_per_round: Dict[int, int] = {}
        self.total_repaired = 0
        #: Node ids repaired by the most recent scan, in repair order —
        #: lets detection-driven loops react to *which* nodes were fixed.
        self.last_repaired: List[int] = []

    # The SuccessiveStrategy on_round_end signature.
    def __call__(
        self,
        deployment: SOSDeployment,
        knowledge: AttackerKnowledge,
        round_index: int,
    ) -> None:
        # Round-hooked usage has no wall clock; one round = one time unit,
        # so a detector timeout of k means "k rounds of missed heartbeats".
        repaired = self.scan_and_repair(
            deployment, knowledge, now=float(round_index)
        )
        self.repairs_per_round[round_index] = repaired

    def scan_and_repair(
        self,
        deployment: SOSDeployment,
        knowledge: Optional[AttackerKnowledge] = None,
        now: float = 0.0,
    ) -> int:
        """One scan: detect, repair, re-key. Returns the repair count.

        ``knowledge=None`` covers packet-level workloads (e.g. the
        detection-driven repair loop) where no break-in attacker — and
        hence no knowledge set to invalidate — exists; the repair
        itself (recover, forget, rewire) is identical.
        """
        self.last_repaired = []
        if self.policy.is_noop:
            return 0
        if self.detector is not None:
            detected = self.detector.scan(deployment, now)
        else:
            # Columnar scan: one health-mask per layer, one block of
            # uniforms per layer's bad nodes. The block draw consumes the
            # stream exactly like the historical per-node ``random()``
            # calls (bad nodes only, layer-major in sorted-member order),
            # so the detected set is bit-identical to the scalar scan.
            detected = []
            filter_layer = deployment.architecture.layers + 1
            for layer in range(1, filter_layer + 1):
                store = (
                    deployment.filters.store
                    if layer == filter_layer
                    else deployment.network.store
                )
                rows = deployment.member_rows(layer)
                bad = store.health[rows] != 0
                bad_count = int(bad.sum())
                if bad_count == 0:
                    continue
                draws = self._rng.random(bad_count)
                hits = deployment.member_array(layer)[bad][
                    draws < self.policy.detection_probability
                ]
                detected.extend(int(node_id) for node_id in hits)
        if self.policy.capacity_per_round is not None:
            self._rng.shuffle(detected)
            detected = detected[: self.policy.capacity_per_round]
        for node_id in detected:
            self._repair_node(deployment, knowledge, node_id)
        self.total_repaired += len(detected)
        self.last_repaired = list(detected)
        return len(detected)

    def _repair_node(
        self,
        deployment: SOSDeployment,
        knowledge: Optional[AttackerKnowledge],
        node_id: int,
    ) -> None:
        node = deployment.resolve(node_id)
        node.recover()
        if self.detector is not None:
            self.detector.forget(node_id)
        # Re-keying invalidates everything the attacker knew about the node.
        if knowledge is not None:
            knowledge.broken.discard(node_id)
            knowledge.disclosed.discard(node_id)
            knowledge.known_unattacked.discard(node_id)
            knowledge.forfeited.discard(node_id)
            knowledge.attempted.discard(node_id)
            knowledge.disclosed_filters.discard(node_id)
        if self.policy.rewire and node_id not in deployment.filters:
            self._rewire(deployment, node_id)

    def _rewire(self, deployment: SOSDeployment, node_id: int) -> None:
        """Draw a fresh next-layer neighbor table for a repaired node."""
        node = deployment.network.get(node_id)
        if node.sos_layer is None:
            return
        next_layer = node.sos_layer + 1
        if next_layer > deployment.architecture.layers + 1:
            return
        candidates = deployment.layer_members(next_layer)
        degree = min(
            deployment.architecture.mapping_degree(next_layer), len(candidates)
        )
        chosen = self._rng.choice(len(candidates), size=degree, replace=False)
        node.set_neighbors(tuple(candidates[int(i)] for i in chosen))
        if next_layer == deployment.architecture.layers + 1:
            deployment.filters.allow_servlet(node_id)
