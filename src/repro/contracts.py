"""Runtime probability contracts for the analytical core.

The model's guarantees (Eq. 1's ``P(x, y, z)`` and every derived ``P_S``)
hold only while values stay in ``[0, 1]``. These decorators turn that
docstring discipline into checked contracts:

>>> from repro.contracts import returns_probability
>>> @returns_probability
... def coin() -> float:
...     return 0.5
>>> coin()
0.5

Contracts are **zero-cost when disabled**: with ``REPRO_CONTRACTS=0`` in
the environment every decorator returns the original function object
unchanged — no wrapper frame, no signature binding, nothing on the hot
path. Enablement is decided once, at import/decoration time; the
experiment harness and Monte Carlo campaigns therefore pay nothing in
production sweeps while CI runs fully contracted.

Violations raise :class:`repro.errors.ContractViolationError`, whose
message names the function, the offending argument or result, and the
expected range — a contract failure is a bug report, not a user error.
"""

from __future__ import annotations

import dataclasses
import functools
import inspect
import math
import os
from typing import Any, Callable, Mapping, Optional, Tuple, TypeVar

from repro.errors import ContractViolationError

F = TypeVar("F", bound=Callable[..., Any])

_FALSY = frozenset({"0", "false", "off", "no"})


def _env_enabled() -> bool:
    """Read ``REPRO_CONTRACTS`` (default: enabled)."""
    return os.environ.get("REPRO_CONTRACTS", "1").strip().lower() not in _FALSY


#: Snapshot taken at import time; decorators consult it at decoration time,
#: so flipping it later only affects functions decorated afterwards.
_ENABLED = _env_enabled()


def contracts_enabled() -> bool:
    """True when decorators applied from now on will install checks."""
    return _ENABLED


def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_probability(value: Any) -> bool:
    # NaN fails both comparisons; +/-inf fail one of them.
    return _is_real(value) and 0.0 <= value <= 1.0


def _is_fraction(value: Any) -> bool:
    return _is_real(value) and 0.0 < value <= 1.0


def _is_non_negative(value: Any) -> bool:
    return _is_real(value) and math.isfinite(value) and value >= 0.0


def returns_probability(func: F) -> F:
    """Post-condition: the return value must lie in ``[0, 1]``.

    Rejects NaN, infinities, and non-numeric results. Returns ``func``
    itself when contracts are disabled.
    """
    if not _ENABLED:
        return func

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        if not _is_probability(result):
            raise ContractViolationError(
                f"{func.__qualname__} returned {result!r}, which is not a "
                f"probability in [0, 1] — this is a bug in the model, not "
                f"a configuration error"
            )
        return result

    return wrapper  # type: ignore[return-value]


def ensures(
    predicate: Callable[[Any], bool], description: str
) -> Callable[[F], F]:
    """Generic post-condition: ``predicate(result)`` must hold.

    ``description`` is embedded in the violation message, e.g.
    ``@ensures(lambda r: 0.0 <= r.p_s <= 1.0, "P_S must lie in [0, 1]")``.
    """

    def decorator(func: F) -> F:
        if not _ENABLED:
            return func

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = func(*args, **kwargs)
            if not predicate(result):
                raise ContractViolationError(
                    f"{func.__qualname__} violated its post-condition "
                    f"({description}); returned {result!r}"
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorator


def _requires(
    names: Tuple[str, ...],
    predicate: Callable[[Any], bool],
    description: str,
) -> Callable[[F], F]:
    """Shared machinery for argument pre-conditions."""

    def decorator(func: F) -> F:
        if not _ENABLED:
            return func
        signature = inspect.signature(func)
        for name in names:
            if name not in signature.parameters:
                raise ContractViolationError(
                    f"{func.__qualname__} has no parameter {name!r} to "
                    f"contract (known: {list(signature.parameters)})"
                )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            for name in names:
                value = bound.arguments[name]
                if not predicate(value):
                    raise ContractViolationError(
                        f"{func.__qualname__}: argument {name}={value!r} "
                        f"must be {description}"
                    )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorator


def requires_probability(*names: str) -> Callable[[F], F]:
    """Pre-condition: each named argument must lie in ``[0, 1]``."""
    return _requires(names, _is_probability, "a probability in [0, 1]")


def requires_fraction(*names: str) -> Callable[[F], F]:
    """Pre-condition: each named argument must lie in ``(0, 1]``."""
    return _requires(names, _is_fraction, "a fraction in (0, 1]")


def requires_non_negative(*names: str) -> Callable[[F], F]:
    """Pre-condition: each named argument must be finite and ``>= 0``."""
    return _requires(names, _is_non_negative, "finite and >= 0")


@dataclasses.dataclass(frozen=True)
class Field:
    """One field of a :func:`check_schema` mapping schema.

    ``types`` are the accepted runtime types (``bool`` is never accepted
    for numeric fields: it *is* an ``int`` to Python but always a typo in
    a spec). ``check``/``describe`` add an optional value constraint.
    """

    types: Tuple[type, ...]
    required: bool = True
    check: Optional[Callable[[Any], bool]] = None
    describe: str = ""

    def admits(self, value: Any) -> bool:
        if isinstance(value, bool) and bool not in self.types:
            return False
        if not isinstance(value, self.types):
            return False
        return self.check is None or self.check(value)


def check_schema(
    payload: Any,
    schema: Mapping[str, Field],
    error: Callable[[str], Exception],
    context: str,
    allow_extra: bool = False,
) -> None:
    """Validate a decoded-JSON mapping against a field schema.

    Unlike the decorators above this is **always active** — it guards
    user-supplied payloads (scenario specs, service request bodies), not
    internal invariants, so ``REPRO_CONTRACTS=0`` must not disable it.
    ``error`` builds the exception to raise (e.g. ``ScenarioError``), so
    each subsystem keeps its own error type; messages name ``context``
    (where the payload came from) plus the offending field.
    """
    if not isinstance(payload, dict):
        raise error(
            f"{context} must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - set(schema)
    if unknown and not allow_extra:
        raise error(
            f"{context} has unknown field(s) {sorted(unknown)}; "
            f"known: {sorted(schema)}"
        )
    for name, field in schema.items():
        if name not in payload:
            if field.required:
                raise error(f"{context} is missing required field {name!r}")
            continue
        value = payload[name]
        if not field.admits(value):
            expected = " or ".join(t.__name__ for t in field.types)
            hint = f" ({field.describe})" if field.describe else ""
            raise error(
                f"{context}: field {name!r}={value!r} must be "
                f"{expected}{hint}"
            )


__all__ = [
    "Field",
    "check_schema",
    "contracts_enabled",
    "ensures",
    "requires_fraction",
    "requires_non_negative",
    "requires_probability",
    "returns_probability",
]
