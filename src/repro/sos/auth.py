"""Hop-by-hop verification: nodes only forward traffic from legitimate
lower-layer nodes (paper §2).

The real SOS uses IPsec tunnels between consecutive layers; we model the
same admission semantics with per-layer HMAC keys. A node at layer ``i``
stamps outgoing packets with a MAC under layer ``i``'s key; a node at layer
``i+1`` verifies both that the MAC checks out *and* that the issuer really
is enrolled at layer ``i``. Traffic that fails either check — e.g. injected
by an attacker who knows node addresses but not keys — is dropped.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from typing import Dict, Set

from repro.errors import ProtocolError


class HopAuthenticator:
    """Issues and verifies per-layer MACs for hop admission.

    Layer 0 represents admitted clients (the SOAP layer verifies client
    credentials before injecting traffic into the overlay).
    """

    def __init__(self, layers: int, seed_material: bytes = b"") -> None:
        if layers < 1:
            raise ProtocolError("need at least one layer")
        self._keys: Dict[int, bytes] = {}
        for layer in range(0, layers + 1):
            if seed_material:
                key = hashlib.sha256(seed_material + layer.to_bytes(4, "big")).digest()
            else:
                key = secrets.token_bytes(32)
            self._keys[layer] = key
        self._members: Dict[int, Set[int]] = {layer: set() for layer in self._keys}

    @property
    def layers(self) -> int:
        """Highest SOS layer with a key (excludes the client pseudo-layer 0)."""
        return max(self._keys)

    def enroll(self, layer: int, member_id: int) -> None:
        """Register ``member_id`` as a legitimate layer member."""
        self._check_layer(layer)
        self._members[layer].add(member_id)

    def revoke(self, layer: int, member_id: int) -> None:
        """Remove a member (e.g. after detection of a compromise)."""
        self._check_layer(layer)
        self._members[layer].discard(member_id)

    def is_enrolled(self, layer: int, member_id: int) -> bool:
        self._check_layer(layer)
        return member_id in self._members[layer]

    def issue(self, layer: int, issuer_id: int, packet_id: int) -> bytes:
        """MAC a packet on behalf of ``issuer_id`` at ``layer``.

        Raises :class:`ProtocolError` if the issuer is not enrolled —
        an attacker cannot obtain stamps for nodes it has not broken into.
        """
        self._check_layer(layer)
        if issuer_id not in self._members[layer]:
            raise ProtocolError(
                f"node {issuer_id} is not enrolled at layer {layer}"
            )
        return self._mac(layer, issuer_id, packet_id)

    def verify(self, layer: int, issuer_id: int, packet_id: int, mac: bytes) -> bool:
        """Check a MAC allegedly issued at ``layer`` by ``issuer_id``.

        Returns False (rather than raising) on any mismatch: wrong key,
        forged issuer, or an issuer that is not a layer member.
        """
        self._check_layer(layer)
        if issuer_id not in self._members[layer]:
            return False
        expected = self._mac(layer, issuer_id, packet_id)
        return hmac.compare_digest(expected, mac)

    def _mac(self, layer: int, issuer_id: int, packet_id: int) -> bytes:
        message = issuer_id.to_bytes(8, "big") + packet_id.to_bytes(8, "big")
        return hmac.new(self._keys[layer], message, hashlib.sha256).digest()

    def _check_layer(self, layer: int) -> None:
        if layer not in self._keys:
            raise ProtocolError(
                f"unknown layer {layer}; valid layers are 0..{self.layers}"
            )
