"""The filter ring around the target (paper §2, footnote 2).

Filters are special machines — typically routers in the target's ISP —
that drop every packet whose last hop is not a currently enrolled secret
servlet. They are *not* part of the overlay population: the attacker cannot
break into them and cannot congest them at random; only a filter whose
identity leaked through a broken-in servlet can be flooded.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import ConfigurationError, ProtocolError
from repro.overlay.node import NodeHealth, OverlayNode


class FilterRing:
    """The set of filters guarding one target.

    Filter identifiers live in their own namespace (negative integers are
    avoided; we offset above the overlay ring instead) so they can never
    collide with overlay node identifiers.
    """

    def __init__(self, count: int, layer: int, id_offset: int) -> None:
        if count < 1:
            raise ConfigurationError(f"need at least one filter, got {count}")
        if layer < 2:
            raise ConfigurationError(
                f"the filter layer must sit above at least one SOS layer, got {layer}"
            )
        self.layer = layer
        self._filters: Dict[int, OverlayNode] = {}
        self._allowed_servlets: Set[int] = set()
        for index in range(count):
            filter_id = id_offset + index
            self._filters[filter_id] = OverlayNode(
                node_id=filter_id,
                address=f"filter-{index}",
                sos_layer=layer,
            )

    def __len__(self) -> int:
        return len(self._filters)

    def __iter__(self):
        return iter(self._filters.values())

    def __contains__(self, filter_id: int) -> bool:
        return filter_id in self._filters

    @property
    def filter_ids(self) -> List[int]:
        return sorted(self._filters)

    def get(self, filter_id: int) -> OverlayNode:
        try:
            return self._filters[filter_id]
        except KeyError:
            raise ProtocolError(f"unknown filter {filter_id}") from None

    # ------------------------------------------------------------------
    # Servlet admission
    # ------------------------------------------------------------------
    def allow_servlet(self, servlet_id: int) -> None:
        """Whitelist a secret servlet's traffic."""
        self._allowed_servlets.add(servlet_id)

    def disallow_servlet(self, servlet_id: int) -> None:
        self._allowed_servlets.discard(servlet_id)

    def admits(self, servlet_id: int) -> bool:
        """True when packets from ``servlet_id`` pass the firewall."""
        return servlet_id in self._allowed_servlets

    # ------------------------------------------------------------------
    # Attack surface
    # ------------------------------------------------------------------
    def congest(self, filter_id: int) -> None:
        """Flood a *disclosed* filter (the only way filters go bad)."""
        self.get(filter_id).congest()

    def good_filters(self) -> List[OverlayNode]:
        return [f for f in self if f.health is NodeHealth.GOOD]

    def reset_health(self) -> None:
        for filter_node in self:
            filter_node.recover()
