"""The filter ring around the target (paper §2, footnote 2).

Filters are special machines — typically routers in the target's ISP —
that drop every packet whose last hop is not a currently enrolled secret
servlet. They are *not* part of the overlay population: the attacker cannot
break into them and cannot congest them at random; only a filter whose
identity leaked through a broken-in servlet can be flooded.

Like the overlay population, filter state is columnar: the ring owns a
small :class:`~repro.overlay.arrays.OverlayStore` and hands out cached
:class:`~repro.overlay.node.OverlayNode` views, so the deployment's
per-layer health counters and the fastsim array encoding cover filters
with the same code paths as overlay nodes.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.overlay.arrays import HEALTH_GOOD, OverlayStore
from repro.overlay.node import OverlayNode


class FilterRing:
    """The set of filters guarding one target.

    Filter identifiers live in their own namespace (negative integers are
    avoided; we offset above the overlay ring instead) so they can never
    collide with overlay node identifiers.
    """

    def __init__(self, count: int, layer: int, id_offset: int) -> None:
        if count < 1:
            raise ConfigurationError(f"need at least one filter, got {count}")
        if layer < 2:
            raise ConfigurationError(
                f"the filter layer must sit above at least one SOS layer, got {layer}"
            )
        self.layer = layer
        self.store = OverlayStore(range(id_offset, id_offset + count))
        self.store.layer[:] = layer
        self.store.recompute_counters()
        # Filter ids are a fixed contiguous block; membership is a pure
        # range check (hot in ``SOSDeployment.resolve`` on every hop).
        self._id_lo = id_offset
        self._id_hi = id_offset + count
        self._views: Dict[int, OverlayNode] = {}
        self._allowed_servlets: Set[int] = set()

    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[OverlayNode]:
        for row in range(len(self.store)):
            yield self._view(row)

    def __contains__(self, filter_id: int) -> bool:
        return self._id_lo <= filter_id < self._id_hi

    def _view(self, row: int) -> OverlayNode:
        filter_id = int(self.store.ids[row])
        view = self._views.get(filter_id)
        if view is None:
            view = OverlayNode._from_store(self.store, row, f"filter-{row}")
            self._views[filter_id] = view
        return view

    @property
    def filter_ids(self) -> List[int]:
        return self.store.sorted_ids.tolist()

    def get(self, filter_id: int) -> OverlayNode:
        view = self._views.get(filter_id)
        if view is not None:
            return view
        row = self.store.row_of(filter_id)
        if row < 0:
            raise ProtocolError(f"unknown filter {filter_id}")
        return self._view(row)

    # ------------------------------------------------------------------
    # Servlet admission
    # ------------------------------------------------------------------
    def allow_servlet(self, servlet_id: int) -> None:
        """Whitelist a secret servlet's traffic."""
        self._allowed_servlets.add(servlet_id)

    def disallow_servlet(self, servlet_id: int) -> None:
        self._allowed_servlets.discard(servlet_id)

    def admits(self, servlet_id: int) -> bool:
        """True when packets from ``servlet_id`` pass the firewall."""
        return servlet_id in self._allowed_servlets

    # ------------------------------------------------------------------
    # Attack surface
    # ------------------------------------------------------------------
    def congest(self, filter_id: int) -> None:
        """Flood a *disclosed* filter (the only way filters go bad)."""
        self.get(filter_id).congest()

    def good_filters(self) -> List[OverlayNode]:
        return [
            self._view(int(row))
            for row in np.flatnonzero(self.store.health == HEALTH_GOOD)
        ]

    def reset_health(self) -> None:
        self.store.reset_health()
