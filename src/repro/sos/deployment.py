"""Deploying a generalized SOS architecture onto a concrete overlay.

:class:`SOSDeployment` turns an abstract :class:`~repro.core.SOSArchitecture`
into running state: it enrolls ``n`` overlay nodes into layers, wires the
random neighbor tables that realize the mapping degrees ``m_i``, stands up
the filter ring, registers everyone with the hop authenticator, and builds
a Chord ring over the SOS membership (the lookup substrate beacons use).

This is the object both the executable attacker (:mod:`repro.attacks`) and
the packet forwarder (:mod:`repro.sos.protocol`) operate on, and the thing
the Monte Carlo validator repeatedly instantiates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.errors import ConfigurationError, RoutingError
from repro.overlay.arrays import HEALTH_GOOD
from repro.overlay.chord import ChordRing
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import OverlayNode
from repro.sos.auth import HopAuthenticator
from repro.sos.filters import FilterRing
from repro.sos.roles import Role, role_for_layer
from repro.utils.seeding import SeedLike, make_rng


class SOSDeployment:
    """A generalized SOS instance deployed over an overlay network.

    Use :meth:`deploy` rather than the constructor.

    Examples
    --------
    >>> from repro.core import SOSArchitecture
    >>> arch = SOSArchitecture(layers=3, mapping="one-to-half",
    ...                        total_overlay_nodes=500, sos_nodes=60)
    >>> deployment = SOSDeployment.deploy(arch, rng=7)
    >>> [len(deployment.layer_members(i)) for i in (1, 2, 3)]
    [20, 20, 20]
    """

    def __init__(
        self,
        architecture: SOSArchitecture,
        network: OverlayNetwork,
        filters: FilterRing,
        authenticator: HopAuthenticator,
        chord: ChordRing,
        layer_membership: Dict[int, List[int]],
    ) -> None:
        self.architecture = architecture
        self.network = network
        self.filters = filters
        self.authenticator = authenticator
        self.chord = chord
        self._layer_membership = layer_membership
        # Lazily-built columnar caches (member id arrays / store rows per
        # layer); invalidated whenever the membership mapping changes.
        self._member_arrays: Dict[int, np.ndarray] = {}
        self._member_rows: Dict[int, np.ndarray] = {}
        self._sos_member_cache: Optional[np.ndarray] = None
        #: Wiring-epoch-keyed structural encoding owned by
        #: :func:`repro.perf.fastsim._encode_structure`.
        self._fastsim_structure: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def deploy(
        cls,
        architecture: SOSArchitecture,
        network: Optional[OverlayNetwork] = None,
        rng: SeedLike = None,
    ) -> "SOSDeployment":
        """Enroll nodes, wire neighbor tables, and stand up the system."""
        generator = make_rng(rng)
        if network is None:
            network = OverlayNetwork(
                architecture.total_overlay_nodes, rng=generator
            )
        elif len(network) != architecture.total_overlay_nodes:
            raise ConfigurationError(
                f"network has {len(network)} nodes but the architecture "
                f"expects N={architecture.total_overlay_nodes}"
            )
        network.reset_roles()
        network.reset_health()

        layer_sizes = architecture.integer_layer_sizes
        sos_nodes = network.random_nodes(sum(layer_sizes), rng=generator)
        generator.shuffle(sos_nodes)  # type: ignore[arg-type]

        layer_membership: Dict[int, List[int]] = {}
        cursor = 0
        for layer_index, size in enumerate(layer_sizes, start=1):
            members = sos_nodes[cursor : cursor + size]
            cursor += size
            for node in members:
                node.sos_layer = layer_index
            layer_membership[layer_index] = sorted(n.node_id for n in members)

        filters = FilterRing(
            count=architecture.filters,
            layer=architecture.layers + 1,
            id_offset=network.space.size,
        )
        layer_membership[architecture.layers + 1] = filters.filter_ids

        authenticator = HopAuthenticator(architecture.layers + 1)
        for layer, members in layer_membership.items():
            for member in members:
                authenticator.enroll(layer, member)

        deployment = cls(
            architecture=architecture,
            network=network,
            filters=filters,
            authenticator=authenticator,
            chord=ChordRing.build(
                sorted(node.node_id for node in sos_nodes),
                bits=network.space.bits,
            ),
            layer_membership=layer_membership,
        )
        deployment._wire_neighbor_tables(generator)
        return deployment

    def _wire_neighbor_tables(self, generator) -> None:
        """Give every layer-``i`` node ``m_{i+1}`` random next-layer neighbors."""
        arch = self.architecture
        for layer in range(1, arch.layers + 1):
            next_layer = layer + 1
            candidates = self._layer_membership[next_layer]
            degree = arch.mapping_degree(next_layer)
            degree = min(degree, len(candidates))
            for node_id in self._layer_membership[layer]:
                chosen = generator.choice(
                    len(candidates), size=degree, replace=False
                )
                neighbors = tuple(candidates[int(i)] for i in chosen)
                self.network.get(node_id).set_neighbors(neighbors)
                if next_layer == arch.layers + 1:
                    for filter_id in neighbors:
                        # Every servlet that knows a filter is whitelisted.
                        self.filters.allow_servlet(node_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def layer_members(self, layer: int) -> List[int]:
        """Sorted identifiers of 1-based ``layer`` (``L+1`` = filters)."""
        try:
            return list(self._layer_membership[layer])
        except KeyError:
            raise ConfigurationError(
                f"layer {layer} out of range 1..{self.architecture.layers + 1}"
            ) from None

    def role_of(self, node_id: int) -> Role:
        """Role of an enrolled node or filter."""
        if node_id in self.filters:
            return Role.FILTER
        node = self.network.get(node_id)
        if not node.is_sos:
            raise ConfigurationError(f"node {node_id} is not enrolled in SOS")
        return role_for_layer(node.sos_layer, self.architecture.layers)

    def resolve(self, node_id: int) -> OverlayNode:
        """Resolve an identifier against overlay nodes and filters alike."""
        if node_id in self.filters:
            return self.filters.get(node_id)
        return self.network.get(node_id)

    def is_node_good(self, node_id: int) -> bool:
        """Scalar health probe equivalent to ``resolve(node_id).is_good``.

        Reads the health column directly instead of materializing a node
        view — hop selection calls this per candidate on every send.
        """
        store = (
            self.filters.store
            if node_id in self.filters
            else self.network.store
        )
        row = store.row_of(node_id)
        if row < 0:
            raise RoutingError(f"no node with identifier {node_id}")
        return store.health.item(row) == HEALTH_GOOD

    def sample_client_contacts(self, generator) -> List[int]:
        """Draw the ``m_1`` access points a new client is given."""
        members = self.member_array(1)
        degree = min(self.architecture.mapping_degree(1), len(members))
        chosen = generator.choice(len(members), size=degree, replace=False)
        return [int(members[int(i)]) for i in chosen]

    # ------------------------------------------------------------------
    # Columnar views (array-path consumers: fastsim, churn, repair)
    # ------------------------------------------------------------------
    def member_array(self, layer: int) -> np.ndarray:
        """Sorted member identifiers of ``layer`` as a cached int64 column."""
        cached = self._member_arrays.get(layer)
        if cached is None:
            cached = np.asarray(self.layer_members(layer), dtype=np.int64)
            self._member_arrays[layer] = cached
        return cached

    def member_rows(self, layer: int) -> np.ndarray:
        """Store rows of ``layer``'s members (filters map into their ring).

        Rows for layers 1..L index :attr:`network` ``.store``; rows for
        layer ``L+1`` index :attr:`filters` ``.store``.
        """
        cached = self._member_rows.get(layer)
        if cached is None:
            store = (
                self.filters.store
                if layer == self.architecture.layers + 1
                else self.network.store
            )
            cached = store.rows_of(self.member_array(layer))
            self._member_rows[layer] = cached
        return cached

    def sos_member_array(self) -> np.ndarray:
        """:meth:`sos_member_ids` as a cached int64 column."""
        if self._sos_member_cache is None:
            layers = range(1, self.architecture.layers + 1)
            parts = [self.member_array(layer) for layer in layers]
            self._sos_member_cache = (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
        return self._sos_member_cache

    def _invalidate_member_caches(self) -> None:
        self._member_arrays.clear()
        self._member_rows.clear()
        self._sos_member_cache = None
        self._fastsim_structure = None

    def good_members(self, layer: int) -> List[int]:
        """Identifiers of still-routable members of ``layer``."""
        store = (
            self.filters.store
            if layer == self.architecture.layers + 1
            else self.network.store
        )
        rows = self.member_rows(layer)
        members = self.member_array(layer)
        return members[store.health[rows] == 0].tolist()

    def bad_counts(self) -> Dict[int, int]:
        """Per-layer count of bad (compromised, congested, or crashed).

        O(layers) via the stores' incremental per-layer counters (layer
        codes are written only by :meth:`deploy`/:meth:`reassign_membership`,
        so code ``i`` on a node ⇔ membership in layer ``i``).
        """
        filter_layer = self.architecture.layers + 1
        counts = {
            layer: self.network.store.bad_count(layer)
            for layer in range(1, filter_layer)
        }
        counts[filter_layer] = self.filters.store.bad_count(filter_layer)
        return counts

    def crashed_counts(self) -> Dict[int, int]:
        """Per-layer count of benignly crashed members (churn, not attack)."""
        filter_layer = self.architecture.layers + 1
        counts = {
            layer: self.network.store.crashed_count(layer)
            for layer in range(1, filter_layer)
        }
        counts[filter_layer] = self.filters.store.crashed_count(filter_layer)
        return counts

    def sos_member_ids(self) -> List[int]:
        """All enrolled overlay members (layers 1..L, filters excluded).

        The churn population: filters are ISP routers outside the overlay
        and do not participate in benign node churn.
        """
        return self.sos_member_array().tolist()

    def reset_attack_state(self) -> None:
        """Clear all health damage (fresh attack trial on the same wiring)."""
        self.network.reset_health()
        self.filters.reset_health()

    def reassign_membership(
        self, chosen_nodes: Sequence[int], generator
    ) -> None:
        """Re-enroll the SOS membership onto ``chosen_nodes``.

        ``chosen_nodes`` must contain exactly ``n`` overlay identifiers;
        they are assigned to layers in order (layer sizes unchanged),
        authenticator enrollment is refreshed, and neighbor tables are
        rewired. Used by underlay-aware placement
        (:mod:`repro.sos.placement`).
        """
        sizes = self.architecture.integer_layer_sizes
        if len(chosen_nodes) != sum(sizes):
            raise ConfigurationError(
                f"need exactly {sum(sizes)} nodes, got {len(chosen_nodes)}"
            )
        self.network.reset_roles()
        self.network.reset_health()
        cursor = 0
        membership: Dict[int, List[int]] = {}
        for layer_index, size in enumerate(sizes, start=1):
            members = list(chosen_nodes[cursor : cursor + size])
            cursor += size
            for node_id in members:
                self.network.get(node_id).sos_layer = layer_index
            membership[layer_index] = sorted(members)
        membership[self.architecture.layers + 1] = self.filters.filter_ids
        self._layer_membership = membership
        self._invalidate_member_caches()
        for layer, members in membership.items():
            for member in members:
                self.authenticator.enroll(layer, member)
        self._wire_neighbor_tables(generator)
