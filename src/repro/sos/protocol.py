"""Packet forwarding through a deployed SOS overlay.

:class:`SOSProtocol` implements the paper's routing semantics (§2-3): a
client hands its packet to one of its ``m_1`` access points; each node
verifies that the packet arrived from a legitimate lower-layer node (MAC +
membership), then forwards it to one of its ``m_{i+1}`` next-layer
neighbors, retrying within its table when a chosen neighbor turns out to be
bad. A hop fails only when *every* neighbor in the table is bad — exactly
the per-hop event the analytical model prices as ``P(n_i, s_i, m_i)``.

Two reachability notions are exposed:

* :meth:`send` — forward one packet per the distributed algorithm
  (per-hop retry, no backtracking); matches Eq. (1)'s product form.
* :meth:`path_exists` — global reachability through good nodes (layered
  BFS); an upper bound on :meth:`send` used in validation experiments.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError
from repro.sos.deployment import SOSDeployment
from repro.sos.packets import DeliveryReceipt, FailureCause, Packet
from repro.utils.seeding import SeedLike, make_rng

if TYPE_CHECKING:  # avoid an sos <-> resilience import cycle at runtime
    from repro.resilience.retry import RetryPolicy


class SOSProtocol:
    """The forwarding plane of a deployed generalized SOS."""

    def __init__(self, deployment: SOSDeployment) -> None:
        self.deployment = deployment

    # ------------------------------------------------------------------
    # Client admission
    # ------------------------------------------------------------------
    def register_client(self, rng: SeedLike = None) -> List[int]:
        """Admit a client and hand it ``m_1`` access-point contacts."""
        return self.deployment.sample_client_contacts(make_rng(rng))

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        target: str,
        contacts: Optional[Sequence[int]] = None,
        payload: bytes = b"",
        rng: SeedLike = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> DeliveryReceipt:
        """Forward one packet from ``source`` toward ``target``.

        ``contacts`` is the client's access-point list; omitted, a fresh one
        is sampled (a first-time client). Returns a receipt whose
        ``hop_trail`` contains one node per traversed layer.

        Without a ``retry_policy`` each hop picks uniformly among the
        *good* entries of its table (the seed's omniscient shortcut, the
        semantics Eq. (1) prices). With one, nodes cannot see neighbor
        health: each hop blindly picks untried neighbors under a bounded
        attempt budget with deterministic seeded backoff, and the access
        layer fails over across the client's full ``m_1`` contact list.
        Same seed, same deployment ⇒ identical ``hop_trail`` and retry
        counts.
        """
        generator = make_rng(rng)
        deployment = self.deployment
        arch = deployment.architecture
        packet = Packet(source=source, target=target, payload=payload)
        attempts = 0
        retries = 0
        backoff = 0.0

        def receipt(
            delivered: bool,
            reason: Optional[str] = None,
            cause: Optional[FailureCause] = None,
        ) -> DeliveryReceipt:
            return DeliveryReceipt(
                packet.packet_id,
                delivered=delivered,
                hop_trail=packet.hops,
                failure_reason=reason,
                failure_cause=cause,
                attempts=attempts,
                retries=retries,
                backoff_total=backoff,
            )

        if contacts is None:
            contacts = deployment.sample_client_contacts(generator)
        current_id, stats = self._next_hop(
            contacts, generator, retry_policy, access_layer=True
        )
        attempts += stats[0]
        retries += stats[1]
        backoff += stats[2]
        if current_id is None:
            return receipt(
                False,
                reason="all access points bad",
                cause=FailureCause.ACCESS_POINTS_EXHAUSTED,
            )
        # Clients are admitted at pseudo-layer 0.
        packet.stamp(
            issuer=0,
            mac=deployment.authenticator._mac(0, 0, packet.packet_id),
        )
        packet.record_hop(current_id)

        for layer in range(1, arch.layers + 1):
            node = deployment.resolve(current_id)
            if node.sos_layer != layer:
                raise ProtocolError(
                    f"node {current_id} serves layer {node.sos_layer}, "
                    f"expected {layer}"
                )
            # Stamp on behalf of this layer, then pick a live next hop.
            mac = deployment.authenticator.issue(layer, current_id, packet.packet_id)
            packet.stamp(issuer=current_id, mac=mac)
            next_id, stats = self._next_hop(
                node.neighbors, generator, retry_policy, access_layer=False
            )
            attempts += stats[0]
            retries += stats[1]
            backoff += stats[2]
            if next_id is None:
                return receipt(
                    False,
                    reason=f"all layer-{layer + 1} neighbors bad",
                    cause=FailureCause.NEIGHBORS_EXHAUSTED,
                )
            if not deployment.authenticator.verify(
                layer, current_id, packet.packet_id, packet.mac
            ):
                return receipt(
                    False,
                    reason=f"hop verification failed at layer {layer}",
                    cause=FailureCause.AUTH_FAILED,
                )
            packet.record_hop(next_id)
            current_id = next_id

        # current_id is now a filter; it admits only whitelisted servlets.
        servlet_id = packet.hop_trail[-2] if len(packet.hop_trail) >= 2 else None
        if servlet_id is None or not deployment.filters.admits(servlet_id):
            return receipt(
                False,
                reason="filter rejected non-servlet traffic",
                cause=FailureCause.FILTER_REJECTED,
            )
        return receipt(True)

    def _next_hop(
        self,
        candidates: Sequence[int],
        generator,
        retry_policy: Optional[RetryPolicy],
        access_layer: bool,
    ) -> "Tuple[Optional[int], Tuple[int, int, float]]":
        """Select the next hop; returns ``(node_id, (attempts, retries, backoff))``."""
        if retry_policy is None:
            chosen = self._pick_good(candidates, generator)
            return chosen, (1 if chosen is not None else 0, 0, 0.0)
        return self._pick_with_retry(
            candidates, generator, retry_policy, access_layer
        )

    def _pick_good(
        self, candidates: Sequence[int], generator
    ) -> Optional[int]:
        """Uniformly pick a good node among ``candidates`` (retry-in-table)."""
        good = [
            node_id
            for node_id in candidates
            if self.deployment.is_node_good(node_id)
        ]
        if not good:
            return None
        return good[int(generator.integers(0, len(good)))]

    def _pick_with_retry(
        self,
        candidates: Sequence[int],
        generator,
        policy: RetryPolicy,
        access_layer: bool,
    ) -> "Tuple[Optional[int], Tuple[int, int, float]]":
        """Health-blind selection: try untried entries under a retry budget.

        Each attempt picks uniformly among not-yet-tried candidates; a bad
        pick costs one backoff delay before the next attempt. Returns the
        chosen good node (or None) plus ``(attempts, retries, backoff)``.
        """
        remaining = list(candidates)
        budget = policy.budget_for(len(remaining), access_layer)
        attempts = 0
        retries = 0
        backoff = 0.0
        last_delay: Optional[float] = None
        while remaining and attempts < budget:
            index = int(generator.integers(0, len(remaining)))
            chosen = remaining.pop(index)
            attempts += 1
            if self.deployment.is_node_good(chosen):
                return chosen, (attempts, retries, backoff)
            if remaining and attempts < budget:
                last_delay = policy.delay(retries, generator, previous=last_delay)
                backoff += last_delay
                retries += 1
        return None, (attempts, retries, backoff)

    # ------------------------------------------------------------------
    # Global reachability
    # ------------------------------------------------------------------
    def path_exists(self, contacts: Sequence[int]) -> bool:
        """True when some all-good path connects ``contacts`` to the target.

        Layered BFS through good nodes only; unlike :meth:`send` it may
        backtrack, so it upper-bounds the forwarding success probability.
        """
        deployment = self.deployment
        frontier = deque(
            node_id
            for node_id in contacts
            if deployment.is_node_good(node_id)
        )
        visited = set(frontier)
        target_layer = deployment.architecture.layers + 1
        while frontier:
            node_id = frontier.popleft()
            node = deployment.resolve(node_id)
            if node.sos_layer == target_layer:
                return True
            for neighbor_id in node.neighbors:
                if neighbor_id in visited:
                    continue
                visited.add(neighbor_id)
                if deployment.is_node_good(neighbor_id):
                    frontier.append(neighbor_id)
        return False

    # ------------------------------------------------------------------
    # Beacon lookup via Chord
    # ------------------------------------------------------------------
    def beacon_for(self, target: str, start_id: Optional[int] = None) -> int:
        """The SOS node responsible for ``target`` under Chord routing.

        The original SOS hashes the target's identity and routes over Chord
        to the owning node (the target's *beacon*). Returns the owner's
        identifier; raises :class:`ProtocolError` when the lookup fails.
        """
        chord = self.deployment.chord
        if start_id is None:
            start_id = chord.live_node_ids[0]
        result = chord.lookup_key(f"target:{target}", start=start_id)
        if not result.succeeded or result.owner is None:
            raise ProtocolError(f"chord lookup for target {target!r} failed")
        return result.owner

    # ------------------------------------------------------------------
    # Target directory (beacon state in the DHT)
    # ------------------------------------------------------------------
    def publish_target(
        self, target: str, servlet_id: int, replicas: int = 3
    ) -> List[int]:
        """Bind ``target`` to a secret servlet in the beacon directory.

        In SOS, beacons know which secret servlet serves a target; we store
        that binding in the Chord DHT, replicated on the beacon's successor
        list so it survives beacon failures. Only enrolled servlets can be
        published. Returns the holder node identifiers.
        """
        servlets = set(
            self.deployment.layer_members(self.deployment.architecture.layers)
        )
        if servlet_id not in servlets:
            raise ProtocolError(
                f"node {servlet_id} is not a secret servlet; cannot publish"
            )
        return self.deployment.chord.put_key(
            f"target:{target}", servlet_id, replicas=replicas
        )

    def resolve_servlet(
        self, target: str, start_id: Optional[int] = None
    ) -> int:
        """Look up the servlet bound to ``target`` via the beacon directory.

        Raises :class:`ProtocolError` when the target was never published
        or every replica has been lost.
        """
        from repro.errors import RoutingError

        chord = self.deployment.chord
        if start_id is None:
            start_id = chord.live_node_ids[0]
        try:
            servlet_id = chord.get_key(f"target:{target}", start=start_id)
        except RoutingError as exc:
            raise ProtocolError(
                f"no servlet binding for target {target!r}: {exc}"
            ) from exc
        return int(servlet_id)
