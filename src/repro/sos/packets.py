"""Packets flowing through the SOS overlay.

A :class:`Packet` records its originator, the protected target, an opaque
payload, and the verified hop trail — each forwarding node appends itself
after the next hop has verified the previous hop's MAC. The trail is what
integration tests assert on (one node per layer, strictly ascending).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Tuple

_SEQUENCE = itertools.count(1)


@dataclasses.dataclass
class Packet:
    """A client message traversing the overlay toward the target."""

    source: str
    target: str
    payload: bytes = b""
    packet_id: int = dataclasses.field(default_factory=lambda: next(_SEQUENCE))
    hop_trail: List[int] = dataclasses.field(default_factory=list)
    mac: Optional[bytes] = None
    mac_issuer: Optional[int] = None

    def record_hop(self, node_id: int) -> None:
        """Append a verified forwarding hop."""
        self.hop_trail.append(node_id)

    @property
    def hops(self) -> Tuple[int, ...]:
        return tuple(self.hop_trail)

    def stamp(self, issuer: int, mac: bytes) -> None:
        """Attach the MAC the next hop will verify."""
        self.mac_issuer = issuer
        self.mac = mac


@dataclasses.dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of attempting to deliver a packet to the target."""

    packet_id: int
    delivered: bool
    hop_trail: Tuple[int, ...]
    failure_reason: Optional[str] = None

    @property
    def path_length(self) -> int:
        return len(self.hop_trail)
