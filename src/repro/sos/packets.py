"""Packets flowing through the SOS overlay.

A :class:`Packet` records its originator, the protected target, an opaque
payload, and the verified hop trail — each forwarding node appends itself
after the next hop has verified the previous hop's MAC. The trail is what
integration tests assert on (one node per layer, strictly ascending).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import List, Optional, Tuple

_SEQUENCE = itertools.count(1)


class FailureCause(str, enum.Enum):
    """Taxonomy of delivery failures, machine-matchable unlike the
    human-readable ``failure_reason`` strings."""

    ACCESS_POINTS_EXHAUSTED = "access-points-exhausted"
    NEIGHBORS_EXHAUSTED = "neighbors-exhausted"
    AUTH_FAILED = "auth-failed"
    FILTER_REJECTED = "filter-rejected"


@dataclasses.dataclass
class Packet:
    """A client message traversing the overlay toward the target."""

    source: str
    target: str
    payload: bytes = b""
    packet_id: int = dataclasses.field(default_factory=lambda: next(_SEQUENCE))
    hop_trail: List[int] = dataclasses.field(default_factory=list)
    mac: Optional[bytes] = None
    mac_issuer: Optional[int] = None

    def record_hop(self, node_id: int) -> None:
        """Append a verified forwarding hop."""
        self.hop_trail.append(node_id)

    @property
    def hops(self) -> Tuple[int, ...]:
        return tuple(self.hop_trail)

    def stamp(self, issuer: int, mac: bytes) -> None:
        """Attach the MAC the next hop will verify."""
        self.mac_issuer = issuer
        self.mac = mac


@dataclasses.dataclass(frozen=True)
class DeliveryReceipt:
    """Outcome of attempting to deliver a packet to the target.

    ``attempts`` counts every neighbor pick made along the way (one per
    hop when nothing fails); ``retries`` counts picks that hit a bad node
    and were retried under a :class:`~repro.resilience.retry.RetryPolicy`;
    ``backoff_total`` is the simulated time spent waiting between
    retries. ``failure_cause`` classifies failures machine-readably;
    ``failure_reason`` stays the human-readable message.
    """

    packet_id: int
    delivered: bool
    hop_trail: Tuple[int, ...]
    failure_reason: Optional[str] = None
    failure_cause: Optional[FailureCause] = None
    attempts: int = 0
    retries: int = 0
    backoff_total: float = 0.0

    @property
    def path_length(self) -> int:
        return len(self.hop_trail)
