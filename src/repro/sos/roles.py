"""SOS roles: what a node at each layer of the hierarchy does.

The original architecture names three layers — SOAP (Secure Overlay Access
Point), beacons, and secret servlets — surrounded by a filter ring. The
generalized architecture keeps the *functions* but allows any number of
intermediate (beacon-like) layers: layer 1 admits clients, layer ``L``
talks to the filters, and layers ``2..L-1`` relay in between (paper §2).
"""

from __future__ import annotations

import enum

from repro.errors import ConfigurationError


class Role(str, enum.Enum):
    """Functional role of a node in the (generalized) SOS hierarchy."""

    ACCESS_POINT = "access_point"  # layer 1 (SOAP)
    BEACON = "beacon"  # layers 2 .. L-1
    SECRET_SERVLET = "secret_servlet"  # layer L
    FILTER = "filter"  # layer L+1, around the target

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def role_for_layer(layer: int, total_layers: int) -> Role:
    """Map a 1-based layer index onto its role for an ``L``-layer system.

    With ``L = 1`` the single SOS layer acts as both access point and
    secret servlet; we report it as :attr:`Role.ACCESS_POINT` since client
    admission is the externally visible function.

    Examples
    --------
    >>> role_for_layer(1, 3)
    <Role.ACCESS_POINT: 'access_point'>
    >>> role_for_layer(2, 3)
    <Role.BEACON: 'beacon'>
    >>> role_for_layer(3, 3)
    <Role.SECRET_SERVLET: 'secret_servlet'>
    >>> role_for_layer(4, 3)
    <Role.FILTER: 'filter'>
    """
    if not isinstance(layer, int) or isinstance(layer, bool):
        raise ConfigurationError(f"layer must be an int, got {layer!r}")
    if not isinstance(total_layers, int) or total_layers < 1:
        raise ConfigurationError(
            f"total_layers must be a positive int, got {total_layers!r}"
        )
    if not 1 <= layer <= total_layers + 1:
        raise ConfigurationError(
            f"layer {layer} out of range [1, {total_layers + 1}]"
        )
    if layer == total_layers + 1:
        return Role.FILTER
    if layer == 1:
        return Role.ACCESS_POINT
    if layer == total_layers:
        return Role.SECRET_SERVLET
    return Role.BEACON
