"""Underlay-aware SOS node placement.

:class:`~repro.sos.deployment.SOSDeployment` enrolls uniformly random
overlay nodes, which can co-locate many SOS nodes on few routers — one
cable cut then severs whole layers even though every overlay node is
healthy (see the ``underlay_effects`` example). This module adds the
operational fix: choose *which* overlay nodes to enroll using the underlay
map.

:func:`diverse_enrollment` greedily picks overlay nodes so that each layer
spreads over as many distinct routers as possible (and, second priority,
routers far apart), then hands the chosen nodes to the normal deployment
wiring via ``SOSDeployment.deploy``'s explicit-network path.

:func:`placement_resilience` measures the payoff: the fraction of overlay
routes that survive a given underlay link-cut campaign, for random vs
diverse placement.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.architecture import SOSArchitecture
from repro.errors import ConfigurationError
from repro.overlay.network import OverlayNetwork
from repro.overlay.topology import UnderlayTopology
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng


def diverse_enrollment(
    network: OverlayNetwork,
    topology: UnderlayTopology,
    count: int,
    rng: SeedLike = None,
) -> List[int]:
    """Pick ``count`` overlay nodes maximizing router diversity.

    Greedy: prefer nodes on routers not yet used; among those, pick
    randomly (the diversity objective dominates any distance refinement at
    the scales simulated here). Falls back to reusing routers only when
    ``count`` exceeds the number of distinct routers hosting overlay nodes.
    """
    generator = make_rng(rng)
    if count < 1 or count > len(network):
        raise ConfigurationError(
            f"count must be in [1, {len(network)}], got {count}"
        )
    by_router: Dict[int, List[int]] = {}
    for node in network:
        router = topology.router_of(node.node_id)
        by_router.setdefault(router, []).append(node.node_id)
    for members in by_router.values():
        generator.shuffle(members)  # repro-lint: disable=rng-unordered-iter -- by_router insertion order follows the network's node order, which is deterministic; sorting the view would change the committed draw sequence

    chosen: List[int] = []
    routers = list(by_router)
    generator.shuffle(routers)
    # Round-robin over routers: first pass takes one node per router.
    index = 0
    while len(chosen) < count:
        router = routers[index % len(routers)]
        bucket = by_router[router]
        if bucket:
            chosen.append(bucket.pop())
        index += 1
        if index > count * max(1, len(routers)):
            raise ConfigurationError(
                "not enough overlay nodes to satisfy the enrollment"
            )
    return chosen


def deploy_with_placement(
    architecture: SOSArchitecture,
    topology: UnderlayTopology,
    rng: SeedLike = None,
    diverse: bool = True,
    concentration: float = 1.2,
) -> Tuple[SOSDeployment, OverlayNetwork]:
    """Deploy with underlay-aware (or random, for comparison) enrollment.

    Builds the overlay population, attaches it to ``topology`` with the
    given data-center ``concentration`` (overlay hosts cluster on few
    routers, the regime where placement matters), selects the SOS
    membership (diverse or uniform), and wires the deployment.
    """
    generator = make_rng(rng)
    network = OverlayNetwork(architecture.total_overlay_nodes, rng=generator)
    topology.attach_overlay_nodes(
        (node.node_id for node in network), concentration=concentration
    )

    deployment = SOSDeployment.deploy(architecture, network=network, rng=generator)
    if not diverse:
        return deployment, network

    # Re-assign the SOS roles onto a router-diverse node set, preserving
    # per-layer counts; the deployment rewires tables and enrollment.
    chosen = diverse_enrollment(
        network, topology, sum(architecture.integer_layer_sizes), rng=generator
    )
    deployment.reassign_membership(chosen, generator)
    return deployment, network


def _sample_path(deployment: SOSDeployment, rng) -> List[int]:
    contacts = deployment.sample_client_contacts(rng)
    current = contacts[int(rng.integers(0, len(contacts)))]
    path = [current]
    for _ in range(deployment.architecture.layers):
        neighbors = deployment.resolve(current).neighbors
        current = neighbors[int(rng.integers(0, len(neighbors)))]
        path.append(current)
    return path


def placement_resilience(
    architecture: SOSArchitecture,
    outages: int = 3,
    probes: int = 200,
    routers: int = 120,
    concentration: float = 1.2,
    seed: Optional[int] = None,
) -> Tuple[float, float]:
    """``(random_placement, diverse_placement)`` route-survival rates
    under targeted data-center outages.

    The overlay population clusters on routers (Zipf ``concentration``);
    the attacker takes out the ``outages`` routers hosting the most
    overlay nodes. Routes ride underlay shortest paths between consecutive
    SOS hops (filters are physical appliances at the target and excluded
    from the underlay portion); a route survives when every hop's
    endpoints are on live, mutually connected routers.
    """
    if outages < 0:
        raise ConfigurationError("outages must be >= 0")
    from repro.utils.seeding import SeedSequenceFactory

    results = []
    for diverse in (False, True):
        # Independent streams per concern so both placements face the SAME
        # topology, the SAME outage campaign, and the SAME probe draws —
        # the placement policy is the only difference.
        factory = SeedSequenceFactory(seed)
        topology_rng = factory.generator()
        placement_rng = factory.generator()
        probe_rng = factory.generator()

        topology = UnderlayTopology(routers=routers, rng=topology_rng)
        deployment, network = deploy_with_placement(
            architecture,
            topology,
            rng=placement_rng,
            diverse=diverse,
            concentration=concentration,
        )
        if outages:
            topology.fail_busiest_routers(
                outages, (node.node_id for node in network)
            )
        hits = 0
        for _ in range(probes):
            path = _sample_path(deployment, probe_rng)
            overlay_hops = path[:-1]  # filters sit at the target site
            latency = 0.0
            for a, b in zip(overlay_hops, overlay_hops[1:]):
                latency += topology.overlay_hop_latency(a, b)
            hits += int(math.isfinite(latency))
        results.append(hits / probes)
    return results[0], results[1]
