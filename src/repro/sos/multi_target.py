"""Multi-target SOS: one overlay protecting many targets.

The paper analyzes a single client/target pair, but SOS is built to guard
many targets with the same overlay (§2: each target has *its* secret
servlets and *its* filter ring; everything below the servlet layer is
shared infrastructure). This module adds that dimension:

* each registered target gets its own :class:`~repro.sos.filters.FilterRing`
  and a dedicated subset of layer-``L`` nodes acting as its secret
  servlets, whitelisted at its filters only;
* the target → servlet binding is published in the Chord directory
  (replicated), exactly how beacons learn where to forward;
* forwarding follows the shared neighbor tables through layers
  ``1..L-1``; the beacon then resolves the target's servlet set from the
  directory and forwards to a surviving member.

Isolation is the point: compromising or flooding the servlets and filters
of target A leaves target B deliverable, which the tests assert.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ProtocolError
from repro.sos.deployment import SOSDeployment
from repro.sos.filters import FilterRing
from repro.sos.packets import DeliveryReceipt, Packet
from repro.utils.seeding import SeedLike, make_rng


@dataclasses.dataclass(frozen=True)
class TargetSite:
    """One protected target's dedicated resources."""

    name: str
    servlet_ids: tuple
    filters: FilterRing


class MultiTargetSOS:
    """Manage and route to many targets over one deployment.

    Examples
    --------
    >>> from repro.core import SOSArchitecture
    >>> from repro.sos import SOSDeployment
    >>> arch = SOSArchitecture(layers=3, mapping="one-to-half",
    ...                        total_overlay_nodes=500, sos_nodes=60,
    ...                        filters=5)
    >>> overlay = MultiTargetSOS(SOSDeployment.deploy(arch, rng=7))
    >>> site = overlay.register_target("hospital", rng=1)
    >>> len(site.servlet_ids)
    3
    """

    def __init__(self, deployment: SOSDeployment) -> None:
        if deployment.architecture.layers < 2:
            raise ConfigurationError(
                "multi-target routing needs at least 2 layers (the final "
                "beacon resolves the per-target servlet set)"
            )
        self.deployment = deployment
        self._sites: Dict[str, TargetSite] = {}
        self._next_filter_offset = deployment.network.space.size + 10_000

    # ------------------------------------------------------------------
    # Target lifecycle
    # ------------------------------------------------------------------
    def register_target(
        self,
        name: str,
        servlets_per_target: int = 3,
        filters_per_target: int = 5,
        rng: SeedLike = None,
    ) -> TargetSite:
        """Provision servlets, a filter ring, and a directory binding."""
        if name in self._sites:
            raise ConfigurationError(f"target {name!r} already registered")
        if servlets_per_target < 1 or filters_per_target < 1:
            raise ConfigurationError(
                "servlets_per_target and filters_per_target must be >= 1"
            )
        generator = make_rng(rng)
        layer = self.deployment.architecture.layers
        candidates = self.deployment.layer_members(layer)
        if servlets_per_target > len(candidates):
            raise ConfigurationError(
                f"not enough servlet-layer nodes for {servlets_per_target} "
                f"servlets (layer holds {len(candidates)})"
            )
        chosen = generator.choice(
            len(candidates), size=servlets_per_target, replace=False
        )
        servlet_ids = tuple(sorted(candidates[int(i)] for i in chosen))

        filters = FilterRing(
            count=filters_per_target,
            layer=layer + 1,
            id_offset=self._next_filter_offset,
        )
        self._next_filter_offset += filters_per_target
        for servlet_id in servlet_ids:
            filters.allow_servlet(servlet_id)

        self.deployment.chord.put_key(
            f"multi-target:{name}", list(servlet_ids), replicas=3
        )
        site = TargetSite(name=name, servlet_ids=servlet_ids, filters=filters)
        self._sites[name] = site
        return site

    def site(self, name: str) -> TargetSite:
        try:
            return self._sites[name]
        except KeyError:
            raise ProtocolError(f"unknown target {name!r}") from None

    @property
    def targets(self) -> List[str]:
        return sorted(self._sites)

    def resolve_servlets(self, name: str) -> List[int]:
        """Read the target's servlet set from the Chord directory."""
        from repro.errors import RoutingError

        chord = self.deployment.chord
        try:
            servlet_ids = chord.get_key(
                f"multi-target:{name}", start=chord.live_node_ids[0]
            )
        except RoutingError as exc:
            raise ProtocolError(
                f"no directory binding for target {name!r}: {exc}"
            ) from exc
        return list(servlet_ids)

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------
    def send(
        self,
        source: str,
        target: str,
        contacts: Optional[Sequence[int]] = None,
        rng: SeedLike = None,
    ) -> DeliveryReceipt:
        """Forward one packet to ``target`` through the shared overlay.

        Layers ``1..L-1`` use the shared neighbor tables (per-hop retry);
        the last beacon resolves the target's servlets from the directory
        and forwards to a surviving one; that servlet must be admitted by
        the target's own filter ring.
        """
        site = self.site(target)
        deployment = self.deployment
        arch = deployment.architecture
        generator = make_rng(rng)
        packet = Packet(source=source, target=target)

        if contacts is None:
            contacts = deployment.sample_client_contacts(generator)
        current = self._pick_good(contacts, generator)
        if current is None:
            return DeliveryReceipt(
                packet.packet_id, False, packet.hops,
                failure_reason="all access points bad",
            )
        packet.record_hop(current)

        # Shared layers: the entry node is at layer 1; hop until the final
        # beacon at layer L-1 (the servlet hop is resolved via directory).
        for layer in range(1, arch.layers - 1):
            node = deployment.resolve(current)
            next_id = self._pick_good(node.neighbors, generator)
            if next_id is None:
                return DeliveryReceipt(
                    packet.packet_id, False, packet.hops,
                    failure_reason=f"all layer-{layer + 1} neighbors bad",
                )
            packet.record_hop(next_id)
            current = next_id

        # The final beacon consults the directory for this target.
        servlet_ids = self.resolve_servlets(target)
        servlet = self._pick_good(servlet_ids, generator)
        if servlet is None:
            return DeliveryReceipt(
                packet.packet_id, False, packet.hops,
                failure_reason="all dedicated servlets bad",
            )
        packet.record_hop(servlet)

        good_filters = [
            f.node_id for f in site.filters if f.is_good
        ]
        if not good_filters:
            return DeliveryReceipt(
                packet.packet_id, False, packet.hops,
                failure_reason="all target filters bad",
            )
        filter_id = good_filters[int(generator.integers(0, len(good_filters)))]
        if not site.filters.admits(servlet):
            return DeliveryReceipt(
                packet.packet_id, False, packet.hops,
                failure_reason="filter rejected non-servlet traffic",
            )
        packet.record_hop(filter_id)
        return DeliveryReceipt(packet.packet_id, True, packet.hops)

    def _pick_good(self, candidates: Sequence[int], generator) -> Optional[int]:
        good = [
            node_id
            for node_id in candidates
            if self.deployment.is_node_good(node_id)
        ]
        if not good:
            return None
        return good[int(generator.integers(0, len(good)))]

    # ------------------------------------------------------------------
    # Attack surface helpers
    # ------------------------------------------------------------------
    def attack_target_site(self, name: str) -> None:
        """Flood one target's dedicated servlets and filters (targeted
        take-down of a single protected service)."""
        site = self.site(name)
        for servlet_id in site.servlet_ids:
            self.deployment.resolve(servlet_id).congest()
        for filter_node in site.filters:
            filter_node.congest()

    def analytic_target_ps(
        self,
        name: str,
        shared_bad_per_layer: Sequence[float],
        servlet_bad_fraction: Optional[float] = None,
    ) -> float:
        """Average-case per-target availability.

        ``shared_bad_per_layer`` gives the bad counts ``s_1 .. s_{L-1}``
        for the shared layers (e.g. from an analytical
        :class:`~repro.core.layer_state.SystemPerformance` or a measured
        deployment). The dedicated-servlet hop succeeds when at least one
        of the target's ``k`` servlets is good; damage on the servlet
        layer spreads uniformly, so each dedicated servlet is bad with the
        layer's bad fraction (overridable via ``servlet_bad_fraction``).
        Filters are dedicated hardware, assumed good unless attacked
        directly (their state is read from the site).
        """
        from repro.core.probability import hop_success_probability

        site = self.site(name)
        arch = self.deployment.architecture
        if len(shared_bad_per_layer) != arch.layers - 1:
            raise ConfigurationError(
                f"expected {arch.layers - 1} shared-layer bad counts, got "
                f"{len(shared_bad_per_layer)}"
            )
        p_s = 1.0
        degrees = arch.mapping_degrees
        for index, bad in enumerate(shared_bad_per_layer):
            layer = index + 1
            size = len(self.deployment.layer_members(layer))
            p_s *= hop_success_probability(size, bad, min(degrees[index], size))
        # Dedicated servlet hop: fails only when all k servlets are bad.
        servlet_members = self.deployment.layer_members(arch.layers)
        if servlet_bad_fraction is None:
            bad_servlets = sum(
                1
                for node_id in servlet_members
                if self.deployment.resolve(node_id).is_bad
            )
            servlet_bad_fraction = bad_servlets / len(servlet_members)
        k = len(site.servlet_ids)
        p_s *= 1.0 - min(1.0, max(0.0, servlet_bad_fraction)) ** k
        # Filter hop: at least one good filter in the dedicated ring.
        p_s *= 1.0 if site.filters.good_filters() else 0.0
        return max(0.0, min(1.0, p_s))

    def delivery_rates(
        self, probes: int = 100, rng: SeedLike = None
    ) -> Dict[str, float]:
        """Measured delivery rate per registered target."""
        generator = make_rng(rng)
        rates = {}
        for name in self.targets:
            hits = 0
            for _ in range(probes):
                contacts = self.deployment.sample_client_contacts(generator)
                hits += int(
                    self.send("probe", name, contacts=contacts, rng=generator)
                    .delivered
                )
            rates[name] = hits / probes
        return rates
