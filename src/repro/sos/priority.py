"""Priority clients: the §2 "guaranteed delivery for special clients" knob.

The paper notes the generalized architecture "can be designed easily
considering other factors such as delay performance, guaranteed delivery
for special clients etc." without elaborating. This module implements the
two natural mechanisms and quantifies what they buy:

* **contact boosting** — a priority client is introduced to
  ``multiplier x m_1`` access points instead of ``m_1``, multiplying its
  chances that at least one first-hop survives;
* **provisioned paths** — operations pre-computes ``count`` node-disjoint
  layer-by-layer paths for the client; delivery first tries the
  provisioned paths (no per-hop table lookups, so lower latency), then
  falls back to normal distributed routing.

Neither mechanism changes the attack surface: priority clients are
indistinguishable to the attacker, so all P_S gains come from redundancy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment
from repro.sos.packets import DeliveryReceipt, Packet
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedLike, make_rng
from repro.utils.validation import check_positive_int


@dataclasses.dataclass(frozen=True)
class ProvisionedPath:
    """One pre-computed client→filter path (one node per layer)."""

    nodes: Tuple[int, ...]

    def is_alive(self, deployment: SOSDeployment) -> bool:
        """True when every node on the path can still route."""
        return all(deployment.is_node_good(node_id) for node_id in self.nodes)


@dataclasses.dataclass
class PriorityClient:
    """A registered special client."""

    name: str
    contacts: List[int]
    paths: List[ProvisionedPath]


class PriorityProvisioner:
    """Registers priority clients against a deployment."""

    def __init__(self, deployment: SOSDeployment) -> None:
        self.deployment = deployment
        self.protocol = SOSProtocol(deployment)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        contact_multiplier: int = 2,
        provisioned_paths: int = 2,
        rng: SeedLike = None,
    ) -> PriorityClient:
        """Register a priority client with boosted contacts and paths."""
        check_positive_int("contact_multiplier", contact_multiplier)
        if provisioned_paths < 0:
            raise ConfigurationError("provisioned_paths must be >= 0")
        generator = make_rng(rng)
        contacts = self._boosted_contacts(contact_multiplier, generator)
        paths = [
            self._provision_path(generator, exclude=set())
            for _ in range(provisioned_paths)
        ]
        disjoint: List[ProvisionedPath] = []
        used: set = set()
        for path in paths:
            if path is None:
                continue
            if used & set(path.nodes):
                replacement = self._provision_path(generator, exclude=used)
                if replacement is None:
                    continue
                path = replacement
            used |= set(path.nodes)
            disjoint.append(path)
        return PriorityClient(name=name, contacts=contacts, paths=disjoint)

    def _boosted_contacts(self, multiplier: int, generator) -> List[int]:
        members = self.deployment.layer_members(1)
        base_degree = min(
            self.deployment.architecture.mapping_degree(1), len(members)
        )
        degree = min(multiplier * base_degree, len(members))
        chosen = generator.choice(len(members), size=degree, replace=False)
        return [members[int(i)] for i in chosen]

    def _provision_path(
        self, generator, exclude: set
    ) -> Optional[ProvisionedPath]:
        """Sample one layer-by-layer path honoring neighbor tables."""
        arch = self.deployment.architecture
        members = [m for m in self.deployment.layer_members(1) if m not in exclude]
        if not members:
            return None
        current = members[int(generator.integers(0, len(members)))]
        nodes = [current]
        for _ in range(arch.layers):
            neighbors = [
                n
                for n in self.deployment.resolve(current).neighbors
                if n not in exclude
            ]
            if not neighbors:
                return None
            current = neighbors[int(generator.integers(0, len(neighbors)))]
            nodes.append(current)
        return ProvisionedPath(nodes=tuple(nodes))

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(
        self,
        client: PriorityClient,
        target: str,
        rng: SeedLike = None,
    ) -> DeliveryReceipt:
        """Deliver for a priority client: provisioned paths, then fallback.

        A provisioned path is used verbatim when every node on it is still
        good; otherwise the client falls back to distributed routing over
        its (boosted) contact list.
        """
        generator = make_rng(rng)
        for path in client.paths:
            if path.is_alive(self.deployment):
                packet = Packet(source=client.name, target=target)
                for node_id in path.nodes:
                    packet.record_hop(node_id)
                servlet = path.nodes[-2] if len(path.nodes) >= 2 else None
                if servlet is not None and self.deployment.filters.admits(servlet):
                    return DeliveryReceipt(
                        packet.packet_id,
                        delivered=True,
                        hop_trail=packet.hops,
                    )
        return self.protocol.send(
            client.name, target, contacts=client.contacts, rng=generator
        )


def priority_advantage(
    deployment: SOSDeployment,
    trials: int = 200,
    contact_multiplier: int = 3,
    provisioned_paths: int = 2,
    seed: SeedLike = None,
) -> Tuple[float, float]:
    """Measured delivery rates ``(regular, priority)`` on a damaged system.

    Call after an attack has been executed against ``deployment``.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    generator = make_rng(seed)
    provisioner = PriorityProvisioner(deployment)
    protocol = SOSProtocol(deployment)
    regular_hits = 0
    priority_hits = 0
    for index in range(trials):
        contacts = deployment.sample_client_contacts(generator)
        regular_hits += int(
            protocol.send("regular", "target", contacts=contacts, rng=generator)
            .delivered
        )
        client = provisioner.register(
            f"vip-{index}",
            contact_multiplier=contact_multiplier,
            provisioned_paths=provisioned_paths,
            rng=generator,
        )
        priority_hits += int(
            provisioner.send(client, "target", rng=generator).delivered
        )
    return regular_hits / trials, priority_hits / trials
