"""Executable SOS protocol: roles, authentication, deployment, forwarding."""

from repro.sos.auth import HopAuthenticator
from repro.sos.deployment import SOSDeployment
from repro.sos.filters import FilterRing
from repro.sos.multi_target import MultiTargetSOS, TargetSite
from repro.sos.packets import DeliveryReceipt, Packet
from repro.sos.placement import (
    deploy_with_placement,
    diverse_enrollment,
    placement_resilience,
)
from repro.sos.priority import (
    PriorityClient,
    PriorityProvisioner,
    ProvisionedPath,
    priority_advantage,
)
from repro.sos.protocol import SOSProtocol
from repro.sos.roles import Role, role_for_layer

__all__ = [
    "HopAuthenticator",
    "SOSDeployment",
    "FilterRing",
    "DeliveryReceipt",
    "MultiTargetSOS",
    "Packet",
    "TargetSite",
    "deploy_with_placement",
    "diverse_enrollment",
    "placement_resilience",
    "PriorityClient",
    "PriorityProvisioner",
    "ProvisionedPath",
    "priority_advantage",
    "SOSProtocol",
    "Role",
    "role_for_layer",
]
