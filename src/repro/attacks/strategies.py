"""Executable attack strategies (paper §3.1.1 and Algorithm 1).

These run the intelligent DDoS attacks against a *concrete*
:class:`~repro.sos.deployment.SOSDeployment`: real break-in attempts on real
nodes, real neighbor-table disclosure, real congestion marking. The Monte
Carlo validator averages their outcomes to cross-check the average-case
analytical model in :mod:`repro.core`.

Both strategies share the two-phase shape:

1. a break-in phase that fills an :class:`AttackerKnowledge` (one uniform
   burst for :class:`OneBurstStrategy`; ``R`` quota-driven rounds following
   Algorithm 1's four cases for :class:`SuccessiveStrategy`);
2. a congestion phase that floods every disclosed-but-not-broken node and
   spends any surplus uniformly over the remaining overlay (filters are
   congested only upon disclosure, never at random).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.attacks.knowledge import AttackerKnowledge
from repro.attacks.outcome import AttackOutcome
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike, make_rng


def _sample(rng, pool: Sequence[int], count: int) -> List[int]:
    """Uniformly sample ``count`` distinct items from ``pool``."""
    count = min(count, len(pool))
    if count <= 0:
        return []
    chosen = rng.choice(len(pool), size=count, replace=False)
    return [pool[int(i)] for i in chosen]


def _attempt_break_ins(
    deployment: SOSDeployment,
    knowledge: AttackerKnowledge,
    node_ids: Iterable[int],
    p_b: float,
    rng,
    disclosure_extension=None,
) -> int:
    """Try to break into each node; absorb disclosures. Returns attempts.

    ``disclosure_extension(deployment, node_id, rng)``, when given, returns
    extra overlay identifiers the attacker learns from a compromised node
    beyond its neighbor table (e.g. upstream nodes observed via traffic
    monitoring — see :mod:`repro.attacks.monitoring`).
    """
    attempts = 0
    for node_id in node_ids:
        attempts += 1
        success = bool(rng.random() < p_b)
        knowledge.record_attempt(node_id, success)
        if not success:
            continue
        disclosed = deployment.network.get(node_id).compromise()
        overlay_ids = [i for i in disclosed if i not in deployment.filters]
        filter_ids = [i for i in disclosed if i in deployment.filters]
        if disclosure_extension is not None:
            overlay_ids.extend(disclosure_extension(deployment, node_id, rng))
        knowledge.learn_disclosure(overlay_ids, filter_ids)
    return attempts


def _random_break_in_pool(
    deployment: SOSDeployment, knowledge: AttackerKnowledge
) -> List[int]:
    """Overlay nodes eligible for random break-in attempts.

    Mirrors Eq. (11)'s pool: the whole overlay minus everything already
    attempted and minus currently known (those are attacked deliberately).
    """
    excluded = knowledge.attempted | knowledge.known_unattacked
    return [
        node_id
        for node_id in deployment.network.node_ids
        if node_id not in excluded
    ]


def _congestion_phase(
    deployment: SOSDeployment,
    knowledge: AttackerKnowledge,
    budget: int,
    rng,
) -> int:
    """Flood disclosed nodes first, then random overlay nodes. Returns spend."""
    overlay_targets = sorted(knowledge.congestion_targets)
    filter_targets = sorted(knowledge.congestion_filter_targets)
    disclosed_targets = overlay_targets + filter_targets
    spent = 0
    if budget >= len(disclosed_targets):
        for node_id in disclosed_targets:
            deployment.resolve(node_id).congest()
        spent = len(disclosed_targets)
        surplus = budget - spent
        if surplus > 0:
            excluded = knowledge.broken | set(overlay_targets)
            pool = [
                node_id
                for node_id in deployment.network.node_ids
                if node_id not in excluded
            ]
            for node_id in _sample(rng, pool, surplus):
                deployment.resolve(node_id).congest()
                spent += 1
    else:
        for node_id in _sample(rng, disclosed_targets, budget):
            deployment.resolve(node_id).congest()
            spent += 1
    return spent


def _outcome(
    deployment: SOSDeployment,
    knowledge: AttackerKnowledge,
    rounds: int,
    attempts: int,
    congestion_spent: int,
) -> AttackOutcome:
    layers = deployment.architecture.layers
    broken = {}
    congested = {}
    for layer in range(1, layers + 2):
        members = deployment.layer_members(layer)
        broken[layer] = sum(
            1
            for node_id in members
            if deployment.resolve(node_id).health.value == "compromised"
        )
        congested[layer] = sum(
            1
            for node_id in members
            if deployment.resolve(node_id).health.value == "congested"
        )
    return AttackOutcome(
        broken_per_layer=broken,
        congested_per_layer=congested,
        rounds_executed=rounds,
        break_in_attempts=attempts,
        congestion_spent=congestion_spent,
        knowledge=knowledge,
    )


class OneBurstStrategy:
    """One burst of uniform break-ins, then targeted congestion (§3.1.1).

    ``disclosure_extension`` augments what a compromised node reveals; see
    :func:`_attempt_break_ins`.
    """

    def __init__(self, disclosure_extension=None) -> None:
        self._disclosure_extension = disclosure_extension

    def execute(
        self,
        deployment: SOSDeployment,
        attack: OneBurstAttack,
        rng: SeedLike = None,
    ) -> AttackOutcome:
        generator = make_rng(rng)
        n_t = int(round(attack.n_t))
        n_c = int(round(attack.n_c))
        if n_t > len(deployment.network):
            raise ConfigurationError(
                f"break-in budget {n_t} exceeds overlay size "
                f"{len(deployment.network)}"
            )
        knowledge = AttackerKnowledge()
        targets = _sample(generator, deployment.network.node_ids, n_t)
        attempts = _attempt_break_ins(
            deployment, knowledge, targets, attack.p_b, generator,
            disclosure_extension=self._disclosure_extension,
        )
        spent = _congestion_phase(deployment, knowledge, n_c, generator)
        return _outcome(deployment, knowledge, 1, attempts, spent)


class SuccessiveStrategy:
    """Algorithm 1: prior knowledge plus ``R`` quota-driven break-in rounds.

    ``on_round_end``, when given, is called as ``on_round_end(deployment,
    knowledge, round_index)`` after every break-in round — the hook the
    dynamic-repair extension (:mod:`repro.repair`) uses to let the defender
    act between rounds, as the paper's future-work section envisions.

    ``disclosure_extension`` augments what a compromised node reveals; see
    :func:`_attempt_break_ins`.
    """

    def __init__(self, disclosure_extension=None) -> None:
        self._disclosure_extension = disclosure_extension

    def execute(
        self,
        deployment: SOSDeployment,
        attack: SuccessiveAttack,
        rng: SeedLike = None,
        on_round_end=None,
    ) -> AttackOutcome:
        generator = make_rng(rng)
        n_t = int(round(attack.n_t))
        n_c = int(round(attack.n_c))
        if n_t > len(deployment.network):
            raise ConfigurationError(
                f"break-in budget {n_t} exceeds overlay size "
                f"{len(deployment.network)}"
            )
        knowledge = AttackerKnowledge()

        # Round 0: prior knowledge of a P_E fraction of the first layer.
        first_layer = deployment.layer_members(1)
        prior_count = int(round(attack.p_e * len(first_layer)))
        knowledge.learn_prior(_sample(generator, first_layer, prior_count))

        # Integer per-round quotas alpha_j that sum exactly to N_T.
        quotas = even_quotas(n_t, attack.rounds)
        attempts, rounds_executed = run_break_in_rounds(
            deployment,
            knowledge,
            quotas,
            attack.p_b,
            generator,
            on_round_end=on_round_end,
            disclosure_extension=self._disclosure_extension,
        )
        spent = _congestion_phase(deployment, knowledge, n_c, generator)
        return _outcome(deployment, knowledge, rounds_executed, attempts, spent)


def even_quotas(budget: int, rounds: int) -> List[int]:
    """Algorithm 1's quotas: integer ``alpha_j`` summing exactly to N_T."""
    return [
        (budget * j) // rounds - (budget * (j - 1)) // rounds
        for j in range(1, rounds + 1)
    ]


def run_break_in_rounds(
    deployment: SOSDeployment,
    knowledge: AttackerKnowledge,
    quotas: Sequence[int],
    p_b: float,
    generator,
    on_round_end=None,
    disclosure_extension=None,
) -> "tuple[int, int]":
    """Execute Algorithm 1's round loop with an arbitrary quota schedule.

    Returns ``(total_attempts, rounds_executed)``. The four per-round cases
    follow the paper verbatim with ``alpha`` replaced by the round's quota;
    the total budget is ``sum(quotas)``. Shared by the paper's
    :class:`SuccessiveStrategy` (even quotas) and the schedule variants in
    :mod:`repro.attacks.variants`.
    """
    budget = int(sum(quotas))
    attempts = 0
    rounds_executed = 0
    for quota in quotas:
        known = sorted(knowledge.known_unattacked)
        rounds_executed += 1
        stop = False
        if len(known) >= budget:
            # Case X_j >= beta: attack a budget-sized subset, forfeit
            # the rest to the congestion phase, and stop.
            attacked = _sample(generator, known, budget)
            knowledge.forfeit(set(known) - set(attacked))
            attempts += _attempt_break_ins(
                deployment, knowledge, attacked, p_b, generator,
                disclosure_extension=disclosure_extension,
            )
            budget = 0
            stop = True
        elif budget <= quota:
            # Case X_j < beta <= alpha: final, budget-limited round.
            extra = _sample(
                generator,
                _random_break_in_pool(deployment, knowledge),
                budget - len(known),
            )
            attempts += _attempt_break_ins(
                deployment, knowledge, known + extra, p_b, generator,
                disclosure_extension=disclosure_extension,
            )
            budget = 0
            stop = True
        elif len(known) >= quota:
            # Case alpha <= X_j < beta: disclosed nodes exceed the quota.
            attempts += _attempt_break_ins(
                deployment, knowledge, known, p_b, generator,
                disclosure_extension=disclosure_extension,
            )
            budget -= len(known)
        else:
            # General case X_j < alpha < beta.
            extra = _sample(
                generator,
                _random_break_in_pool(deployment, knowledge),
                quota - len(known),
            )
            attempts += _attempt_break_ins(
                deployment, knowledge, known + extra, p_b, generator,
                disclosure_extension=disclosure_extension,
            )
            budget -= quota
        if on_round_end is not None:
            on_round_end(deployment, knowledge, rounds_executed)
        if stop or budget <= 0:
            break
    return attempts, rounds_executed
