"""Result of executing an attack against a concrete deployment."""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.attacks.knowledge import AttackerKnowledge


@dataclasses.dataclass(frozen=True)
class AttackOutcome:
    """What an executed attack did to a deployment.

    Per-layer dictionaries are keyed by 1-based layer (``L+1`` = filters),
    mirroring the analytical model's per-layer sets so Monte Carlo results
    can be compared term by term against the derivation.
    """

    broken_per_layer: Dict[int, int]
    congested_per_layer: Dict[int, int]
    rounds_executed: int
    break_in_attempts: int
    congestion_spent: int
    knowledge: AttackerKnowledge

    @property
    def total_broken(self) -> int:
        """``N_B`` — successfully compromised overlay nodes."""
        return sum(self.broken_per_layer.values())

    @property
    def total_congested(self) -> int:
        return sum(self.congested_per_layer.values())

    def bad_per_layer(self) -> Dict[int, int]:
        """``s_i`` — bad nodes per layer (broken + congested)."""
        layers = set(self.broken_per_layer) | set(self.congested_per_layer)
        return {
            layer: self.broken_per_layer.get(layer, 0)
            + self.congested_per_layer.get(layer, 0)
            for layer in sorted(layers)
        }

    def as_row(self) -> Tuple[int, int, int, int]:
        """(rounds, attempts, N_B, congested) — compact diagnostics row."""
        return (
            self.rounds_executed,
            self.break_in_attempts,
            self.total_broken,
            self.total_congested,
        )
