"""Successive-attack schedule variants (§3.2.1's "other variations").

The paper fixes the per-round quota at ``alpha = N_T / R`` and asserts its
model "is representative enough" of other successive schedules. These
variants make that claim testable by re-running Algorithm 1's case logic
under different quota schedules:

* :class:`ScheduledSuccessiveStrategy` — arbitrary per-round weights;
* :func:`front_loaded_weights` — geometric decay (spend hard early, keep a
  reserve for disclosed stragglers);
* :func:`back_loaded_weights` — the mirror image (probe first, strike
  late);
* :func:`compare_schedules` — damage comparison over matched trials, used
  by the ``abl-variants`` experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks.knowledge import AttackerKnowledge
from repro.attacks.outcome import AttackOutcome
from repro.attacks.strategies import (
    _congestion_phase,
    _outcome,
    _sample,
    even_quotas,
    run_break_in_rounds,
)
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.errors import ConfigurationError
from repro.overlay.network import OverlayNetwork
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedLike, SeedSequenceFactory, make_rng


def front_loaded_weights(rounds: int, decay: float = 0.5) -> List[float]:
    """Geometric weights ``1, decay, decay^2, ...`` (spend early)."""
    if rounds < 1:
        raise ConfigurationError("rounds must be >= 1")
    if not 0.0 < decay <= 1.0:
        raise ConfigurationError("decay must be in (0, 1]")
    return [decay**j for j in range(rounds)]


def back_loaded_weights(rounds: int, decay: float = 0.5) -> List[float]:
    """Mirror of :func:`front_loaded_weights` (spend late)."""
    return list(reversed(front_loaded_weights(rounds, decay)))


def quotas_from_weights(budget: int, weights: Sequence[float]) -> List[int]:
    """Integer quotas proportional to ``weights`` summing exactly to
    ``budget`` (largest-remainder rounding)."""
    if not weights or any(w < 0 for w in weights):
        raise ConfigurationError("weights must be non-empty and non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ConfigurationError("weights must have positive sum")
    raw = [budget * w / total for w in weights]
    floors = [int(r) for r in raw]
    leftover = budget - sum(floors)
    # Ties go to later rounds so equal weights reproduce Algorithm 1's
    # even_quotas exactly (the paper gives the remainder to the tail).
    order = sorted(
        range(len(raw)), key=lambda i: (raw[i] - floors[i], i), reverse=True
    )
    for index in order[:leftover]:
        floors[index] += 1
    return floors


class ScheduledSuccessiveStrategy:
    """Algorithm 1 under an arbitrary per-round quota schedule."""

    def __init__(
        self,
        weights: Sequence[float],
        disclosure_extension=None,
    ) -> None:
        self.weights = list(weights)
        self._disclosure_extension = disclosure_extension
        quotas_from_weights(100, self.weights)  # validate eagerly

    def execute(
        self,
        deployment: SOSDeployment,
        attack: SuccessiveAttack,
        rng: SeedLike = None,
        on_round_end=None,
    ) -> AttackOutcome:
        generator = make_rng(rng)
        n_t = int(round(attack.n_t))
        n_c = int(round(attack.n_c))
        if n_t > len(deployment.network):
            raise ConfigurationError("break-in budget exceeds overlay size")
        knowledge = AttackerKnowledge()
        first_layer = deployment.layer_members(1)
        prior_count = int(round(attack.p_e * len(first_layer)))
        knowledge.learn_prior(_sample(generator, first_layer, prior_count))
        quotas = quotas_from_weights(n_t, self.weights)
        attempts, rounds_executed = run_break_in_rounds(
            deployment,
            knowledge,
            quotas,
            attack.p_b,
            generator,
            on_round_end=on_round_end,
            disclosure_extension=self._disclosure_extension,
        )
        spent = _congestion_phase(deployment, knowledge, n_c, generator)
        return _outcome(deployment, knowledge, rounds_executed, attempts, spent)


def compare_schedules(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    trials: int = 40,
    clients_per_trial: int = 4,
    seed: Optional[int] = None,
) -> Dict[str, float]:
    """Mean client success per quota schedule, over matched deployments.

    Schedules compared: the paper's even split, front-loaded, back-loaded,
    and everything-in-round-one (the one-burst limit of the schedule
    space).
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    schedules = {
        "even (paper)": ScheduledSuccessiveStrategy([1.0] * attack.rounds),
        "front-loaded": ScheduledSuccessiveStrategy(
            front_loaded_weights(attack.rounds)
        ),
        "back-loaded": ScheduledSuccessiveStrategy(
            back_loaded_weights(attack.rounds)
        ),
        "one-burst limit": ScheduledSuccessiveStrategy(
            [1.0] + [0.0] * (attack.rounds - 1)
        ),
    }
    results: Dict[str, float] = {}
    for name, strategy in schedules.items():
        factory = SeedSequenceFactory(seed)
        network = OverlayNetwork(
            architecture.total_overlay_nodes, rng=factory.generator()
        )
        hits = 0
        probes = 0
        for _ in range(trials):
            trial_rng = factory.generator()
            deployment = SOSDeployment.deploy(
                architecture, network=network, rng=trial_rng
            )
            strategy.execute(deployment, attack, rng=trial_rng)
            protocol = SOSProtocol(deployment)
            for _ in range(clients_per_trial):
                contacts = deployment.sample_client_contacts(trial_rng)
                hits += int(
                    protocol.send("c", "t", contacts=contacts, rng=trial_rng)
                    .delivered
                )
                probes += 1
        results[name] = hits / probes
    return results
