"""Executable intelligent attackers operating on concrete deployments."""

from repro.attacks.attacker import IntelligentAttacker
from repro.attacks.knowledge import AttackerKnowledge
from repro.attacks.monitoring import (
    MonitoringAttacker,
    MonitoringComparison,
    monitoring_damage_comparison,
    upstream_observer,
)
from repro.attacks.outcome import AttackOutcome
from repro.attacks.strategies import OneBurstStrategy, SuccessiveStrategy
from repro.attacks.variants import (
    ScheduledSuccessiveStrategy,
    back_loaded_weights,
    compare_schedules,
    front_loaded_weights,
)

__all__ = [
    "IntelligentAttacker",
    "AttackerKnowledge",
    "MonitoringAttacker",
    "MonitoringComparison",
    "monitoring_damage_comparison",
    "upstream_observer",
    "AttackOutcome",
    "OneBurstStrategy",
    "SuccessiveStrategy",
    "ScheduledSuccessiveStrategy",
    "back_loaded_weights",
    "compare_schedules",
    "front_loaded_weights",
]
