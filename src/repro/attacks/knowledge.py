"""The attacker's knowledge base.

Tracks exactly what the paper's intelligent attacker learns while the
attack unfolds (Fig. 5's node demarcation, as live sets instead of
average-case sizes):

* ``known_unattacked`` — disclosed SOS nodes not yet subjected to a
  break-in attempt (the paper's ``d^N`` pool feeding ``X_{j+1}``);
* ``attempted`` — every node a break-in was ever tried on (``h`` sets);
* ``broken`` — successfully compromised nodes (``b`` sets);
* ``disclosed`` — every overlay node whose SOS membership the attacker has
  learned, by prior knowledge or by reading a compromised node's table;
* ``disclosed_filters`` — leaked filter identities (``d_{L+1}^N``), kept
  separate because filters can only be congested, never broken into.
"""

from __future__ import annotations

from typing import Iterable, Set


class AttackerKnowledge:
    """Mutable attacker state across break-in rounds."""

    def __init__(self) -> None:
        self.known_unattacked: Set[int] = set()
        self.attempted: Set[int] = set()
        self.broken: Set[int] = set()
        self.disclosed: Set[int] = set()
        self.disclosed_filters: Set[int] = set()
        self.forfeited: Set[int] = set()

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def learn_prior(self, node_ids: Iterable[int]) -> None:
        """Absorb pre-attack knowledge (``P_E`` fraction of layer 1)."""
        for node_id in node_ids:
            self.disclosed.add(node_id)
            if node_id not in self.attempted:
                self.known_unattacked.add(node_id)

    def learn_disclosure(
        self, node_ids: Iterable[int], filter_ids: Iterable[int] = ()
    ) -> None:
        """Absorb a compromised node's neighbor table.

        Overlap discounting is automatic: nodes already attempted never
        re-enter the attack pool, and duplicates collapse in the sets.
        """
        for node_id in node_ids:
            self.disclosed.add(node_id)
            if node_id not in self.attempted:
                self.known_unattacked.add(node_id)
        for filter_id in filter_ids:
            self.disclosed_filters.add(filter_id)

    # ------------------------------------------------------------------
    # Attack bookkeeping
    # ------------------------------------------------------------------
    def record_attempt(self, node_id: int, success: bool) -> None:
        """Mark a break-in attempt and its outcome."""
        self.attempted.add(node_id)
        self.known_unattacked.discard(node_id)
        if success:
            self.broken.add(node_id)

    def forfeit(self, node_ids: Iterable[int]) -> None:
        """Give up on disclosed nodes when the break-in budget runs out
        (the paper's ``f_{i,j}`` — congested instead of attacked)."""
        for node_id in node_ids:
            self.known_unattacked.discard(node_id)
            self.forfeited.add(node_id)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def congestion_targets(self) -> Set[int]:
        """Disclosed-but-not-broken overlay nodes (the paper's ``N_D`` pool,
        excluding filters, which are returned separately)."""
        return (self.disclosed | self.forfeited) - self.broken

    @property
    def congestion_filter_targets(self) -> Set[int]:
        return set(self.disclosed_filters)

    def snapshot(self) -> dict:
        """Sizes of all sets, for diagnostics and tests."""
        return {
            "known_unattacked": len(self.known_unattacked),
            "attempted": len(self.attempted),
            "broken": len(self.broken),
            "disclosed": len(self.disclosed),
            "disclosed_filters": len(self.disclosed_filters),
            "forfeited": len(self.forfeited),
        }
