"""Traffic-monitoring attacker (paper §5, "more sophisticated attack models").

The paper sketches a smarter adversary: once inside a node, it can also
"find previous layer nodes of an attacked node by monitoring the on-going
traffic" — learning who forwards *into* the compromised node, not just who
it forwards to. The paper deems this too hard to analyze mathematically
and leaves it to simulation; this module is that simulation.

:func:`upstream_observer` builds a disclosure extension for the executable
strategies: each upstream node whose neighbor table contains the
compromised node is observed (and hence disclosed) independently with
probability ``observation_probability`` — a stand-in for how much of the
upstream fan-in actually sends traffic during the attack window.

:class:`MonitoringAttacker` packages it, and
:func:`monitoring_damage_comparison` quantifies the extra damage against
the paper's baseline attacker.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Union

from repro.attacks.attacker import IntelligentAttacker
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.overlay.network import OverlayNetwork
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.utils.seeding import SeedSequenceFactory
from repro.utils.validation import check_probability

Attack = Union[OneBurstAttack, SuccessiveAttack]


def upstream_observer(observation_probability: float = 1.0):
    """Disclosure extension revealing upstream (previous-layer) nodes.

    Returns a callable suitable for the strategies'
    ``disclosure_extension`` parameter.
    """
    check_probability("observation_probability", observation_probability)

    def observe(deployment: SOSDeployment, node_id: int, rng) -> List[int]:
        if observation_probability <= 0.0:
            # Observe nothing AND consume no randomness, so a zero-probability
            # monitoring attacker is trajectory-identical to the baseline
            # under the same seed.
            return []
        node = deployment.network.get(node_id)
        if node.sos_layer is None or node.sos_layer <= 1:
            return []
        observed = []
        for upstream_id in deployment.layer_members(node.sos_layer - 1):
            upstream = deployment.network.get(upstream_id)
            if node_id in upstream.neighbors and (
                rng.random() < observation_probability
            ):
                observed.append(upstream_id)
        return observed

    return observe


class MonitoringAttacker(IntelligentAttacker):
    """An intelligent attacker that also monitors traffic through owned nodes.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> from repro.sos import SOSDeployment
    >>> arch = SOSArchitecture(layers=3, mapping="one-to-two",
    ...                        total_overlay_nodes=400, sos_nodes=45,
    ...                        filters=5)
    >>> deployment = SOSDeployment.deploy(arch, rng=1)
    >>> outcome = MonitoringAttacker().execute(
    ...     deployment, SuccessiveAttack(break_in_budget=40,
    ...                                  congestion_budget=60), rng=2)
    >>> outcome.total_broken <= 40
    True
    """

    def __init__(self, observation_probability: float = 1.0) -> None:
        super().__init__(
            disclosure_extension=upstream_observer(observation_probability)
        )
        self.observation_probability = observation_probability


@dataclasses.dataclass(frozen=True)
class MonitoringComparison:
    """Measured damage of the monitoring attacker vs the baseline."""

    baseline_ps: float
    monitoring_ps: float
    baseline_disclosed: float
    monitoring_disclosed: float
    trials: int

    @property
    def ps_drop(self) -> float:
        """How much extra availability the monitoring attacker destroys."""
        return self.baseline_ps - self.monitoring_ps

    @property
    def extra_disclosure(self) -> float:
        return self.monitoring_disclosed - self.baseline_disclosed


def monitoring_damage_comparison(
    architecture: SOSArchitecture,
    attack: Attack,
    observation_probability: float = 1.0,
    trials: int = 60,
    clients_per_trial: int = 4,
    seed: Optional[int] = None,
) -> MonitoringComparison:
    """Run baseline and monitoring attackers over matched trials."""
    if trials < 1 or clients_per_trial < 1:
        raise ConfigurationError("trials and clients_per_trial must be >= 1")

    def run(attacker) -> tuple:
        factory = SeedSequenceFactory(seed)
        network = OverlayNetwork(
            architecture.total_overlay_nodes, rng=factory.generator()
        )
        ps_values = []
        disclosed = 0.0
        for _ in range(trials):
            trial_rng = factory.generator()
            deployment = SOSDeployment.deploy(
                architecture, network=network, rng=trial_rng
            )
            outcome = attacker.execute(deployment, attack, rng=trial_rng)
            disclosed += len(outcome.knowledge.disclosed)
            protocol = SOSProtocol(deployment)
            hits = 0
            for _ in range(clients_per_trial):
                contacts = deployment.sample_client_contacts(trial_rng)
                hits += int(
                    protocol.send("c", "t", contacts=contacts, rng=trial_rng).delivered
                )
            ps_values.append(hits / clients_per_trial)
        return sum(ps_values) / trials, disclosed / trials

    baseline_ps, baseline_disclosed = run(IntelligentAttacker())
    monitoring_ps, monitoring_disclosed = run(
        MonitoringAttacker(observation_probability)
    )
    return MonitoringComparison(
        baseline_ps=baseline_ps,
        monitoring_ps=monitoring_ps,
        baseline_disclosed=baseline_disclosed,
        monitoring_disclosed=monitoring_disclosed,
        trials=trials,
    )
