"""Attacker facade dispatching on the attack model."""

from __future__ import annotations

from typing import Union

from repro.attacks.outcome import AttackOutcome
from repro.attacks.strategies import OneBurstStrategy, SuccessiveStrategy
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import SeedLike


class IntelligentAttacker:
    """Executes either intelligent attack model against a deployment.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> from repro.sos import SOSDeployment
    >>> arch = SOSArchitecture(layers=2, mapping="one-to-two",
    ...                        total_overlay_nodes=400, sos_nodes=40)
    >>> deployment = SOSDeployment.deploy(arch, rng=3)
    >>> outcome = IntelligentAttacker().execute(
    ...     deployment, SuccessiveAttack(break_in_budget=40,
    ...                                  congestion_budget=80), rng=5)
    >>> outcome.total_broken <= 40
    True
    """

    def __init__(self, disclosure_extension=None) -> None:
        self._one_burst = OneBurstStrategy(disclosure_extension)
        self._successive = SuccessiveStrategy(disclosure_extension)

    def execute(
        self,
        deployment: SOSDeployment,
        attack: Union[OneBurstAttack, SuccessiveAttack],
        rng: SeedLike = None,
    ) -> AttackOutcome:
        """Run the attack; the deployment's node health is mutated in place."""
        if isinstance(attack, SuccessiveAttack):
            return self._successive.execute(deployment, attack, rng)
        if isinstance(attack, OneBurstAttack):
            return self._one_burst.execute(deployment, attack, rng)
        raise ConfigurationError(f"unsupported attack model: {attack!r}")
