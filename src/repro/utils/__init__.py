"""Shared utilities: argument validation, seeded RNG, ASCII tables/plots."""

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.utils.seeding import SeedSequenceFactory, make_rng
from repro.utils.tables import format_table
from repro.utils.ascii_plot import ascii_plot

__all__ = [
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
    "SeedSequenceFactory",
    "make_rng",
    "format_table",
    "ascii_plot",
]
