"""JSON round-tripping for experiment results.

Experiment campaigns run long; these helpers persist
:class:`~repro.experiments.result.FigureResult` and
:class:`~repro.simulation.results.PsEstimate` objects to disk so sweeps can
be resumed, diffed across revisions, or post-processed elsewhere. All
output is plain JSON (no pickles) so results remain readable forever.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.result import Claim, FigureResult
from repro.simulation.results import PsEstimate

PathLike = Union[str, Path]

_SCHEMA_FIGURE = "repro.figure_result.v1"
_SCHEMA_ESTIMATE = "repro.ps_estimate.v1"


def figure_result_to_dict(result: FigureResult) -> Dict[str, Any]:
    """Convert a FigureResult into a JSON-safe dictionary."""
    return {
        "schema": _SCHEMA_FIGURE,
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "series": {name: list(values) for name, values in result.series.items()},
        "claims": [
            {"description": claim.description, "holds": claim.holds}
            for claim in result.claims
        ],
        "notes": result.notes,
    }


def figure_result_from_dict(data: Dict[str, Any]) -> FigureResult:
    """Rebuild a FigureResult; validates the schema tag."""
    if data.get("schema") != _SCHEMA_FIGURE:
        raise ExperimentError(
            f"not a serialized FigureResult (schema={data.get('schema')!r})"
        )
    return FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        x_values=data["x_values"],
        series=data["series"],
        claims=[
            Claim(description=c["description"], holds=bool(c["holds"]))
            for c in data.get("claims", [])
        ],
        notes=data.get("notes", ""),
    )


def ps_estimate_to_dict(estimate: PsEstimate) -> Dict[str, Any]:
    """Convert a PsEstimate into a JSON-safe dictionary."""
    return {
        "schema": _SCHEMA_ESTIMATE,
        "mean": estimate.mean,
        "variance": estimate.variance,
        "trials": estimate.trials,
        "mean_bad_per_layer": {
            str(layer): value for layer, value in estimate.mean_bad_per_layer.items()
        },
    }


def ps_estimate_from_dict(data: Dict[str, Any]) -> PsEstimate:
    if data.get("schema") != _SCHEMA_ESTIMATE:
        raise ExperimentError(
            f"not a serialized PsEstimate (schema={data.get('schema')!r})"
        )
    return PsEstimate(
        mean=data["mean"],
        variance=data["variance"],
        trials=data["trials"],
        mean_bad_per_layer={
            int(layer): value
            for layer, value in data.get("mean_bad_per_layer", {}).items()
        },
    )


def save_results(results: Sequence[FigureResult], path: PathLike) -> None:
    """Write a list of FigureResults to ``path`` as a JSON document."""
    payload = [figure_result_to_dict(result) for result in results]
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_results(path: PathLike) -> List[FigureResult]:
    """Read FigureResults back from :func:`save_results` output."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load results from {path}: {exc}") from exc
    if not isinstance(payload, list):
        raise ExperimentError(f"{path} does not contain a result list")
    return [figure_result_from_dict(entry) for entry in payload]
