"""Argument validation helpers used across the library.

All helpers raise :class:`repro.errors.ConfigurationError` with a message
that names the offending parameter, and return the (possibly coerced) value
so they can be used inline in ``__post_init__`` bodies::

    self.n_t = check_non_negative("n_t", n_t)
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigurationError

Number = Union[int, float]


def _check_real(name: str, value: Number) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ConfigurationError(f"{name} must be finite, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> float:
    """Validate that ``value`` is a finite number ``>= 0``."""
    value = _check_real(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive(name: str, value: Number) -> float:
    """Validate that ``value`` is a finite number ``> 0``."""
    value = _check_real(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Validate that ``value`` is an integer ``>= 1``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigurationError(f"{name} must be >= 1, got {value!r}")
    return value


def check_probability(name: str, value: Number) -> float:
    """Validate that ``value`` lies in the closed interval ``[0, 1]``."""
    value = _check_real(name, value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_probabilities(
    name: str, values: npt.ArrayLike
) -> npt.NDArray[np.float64]:
    """Validate that every entry of an array lies in ``[0, 1]``.

    The vectorized counterpart of :func:`check_probability`, used by the
    batch kernels in :mod:`repro.perf.batch` to guard whole result grids.
    """
    array = np.asarray(values, dtype=float)
    if not bool(np.all(np.isfinite(array))):
        raise ConfigurationError(f"{name} must be finite everywhere")
    if bool(np.any(array < 0.0)) or bool(np.any(array > 1.0)):
        raise ConfigurationError(f"{name} must lie in [0, 1] everywhere")
    return array


def check_fraction(name: str, value: Number) -> float:
    """Validate that ``value`` lies in the half-open interval ``(0, 1]``."""
    value = _check_real(name, value)
    if not 0.0 < value <= 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")
    return value
