"""Terminal line plots for experiment output.

Renders one or more named series on a shared y-grid using character cells.
Used by the experiment runner so the *shape* of every reproduced figure is
visible without matplotlib (which is not installed in this environment).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_MARKERS = "ox+*#@%&"


def ascii_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    xlabel: str = "x",
    ylabel: str = "y",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named ``series`` over shared ``x`` values as an ASCII chart.

    Each series gets a distinct marker from a fixed cycle; a legend maps
    markers back to series names. Values outside ``[y_min, y_max]`` are
    clipped to the border rows.
    """
    if not x:
        raise ValueError("x must be non-empty")
    if not series:
        raise ValueError("series must be non-empty")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x)}"
            )

    def is_gap(value: float) -> bool:
        return isinstance(value, float) and value != value  # NaN marks a gap

    all_values = [v for ys in series.values() for v in ys if not is_gap(v)]
    if not all_values:
        raise ValueError("every point is NaN; nothing to plot")
    lo = min(all_values) if y_min is None else y_min
    hi = max(all_values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0
    x_lo, x_hi = min(x), max(x)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(value: float) -> int:
        return min(width - 1, max(0, round((value - x_lo) / x_span * (width - 1))))

    def to_row(value: float) -> int:
        fraction = (value - lo) / (hi - lo)
        fraction = min(1.0, max(0.0, fraction))
        return (height - 1) - min(height - 1, max(0, round(fraction * (height - 1))))

    legend = []
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} = {name}")
        for xv, yv in zip(x, ys):
            if is_gap(yv):
                continue  # infeasible sweep points render as gaps
            grid[to_row(yv)][to_col(xv)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (top={hi:.3f}, bottom={lo:.3f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x_lo:g} .. {x_hi:g}")
    lines.extend(legend)
    return "\n".join(lines) + "\n"
