"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows the paper's figures plot; this
module renders them as aligned ASCII tables so results are readable in a
terminal and diff-able in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def _stringify(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_format: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row tuples; each row must have ``len(headers)`` cells.
    float_format:
        ``format()`` spec applied to float cells (default 4 decimals).
    title:
        Optional title printed above the table.

    Returns
    -------
    str
        The rendered table, with a trailing newline.
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    for row in rows:
        cells = [_stringify(cell, float_format) for cell in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(header_cells)}: {cells!r}"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append(separator)
    lines.extend(render_row(cells) for cells in body)
    return "\n".join(lines) + "\n"
