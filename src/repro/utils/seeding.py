"""Deterministic random-number management for simulations.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` handed to it explicitly; nothing touches
global RNG state. :class:`SeedSequenceFactory` fans a single user seed out
into independent, reproducible streams (one per trial, per attacker, per
traffic source) using :class:`numpy.random.SeedSequence` spawning, which
guarantees statistical independence between streams.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

import numpy as np

from repro.errors import SimulationError

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like input.

    Passing an existing ``Generator`` returns it unchanged, so components
    can accept either a seed or a shared stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Fan one root seed out into independent child generators.

    Examples
    --------
    >>> factory = SeedSequenceFactory(1234)
    >>> a = factory.generator()   # stream 0
    >>> b = factory.generator()   # stream 1, independent of stream 0
    >>> a is not b
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._root = np.random.SeedSequence(seed)
        self._count = 0

    @property
    def root_entropy(self) -> int:
        """Entropy of the root sequence (recordable for reproduction)."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            return int(entropy[0])
        # SeedSequence always auto-generates entropy when seeded with None,
        # so a None here would be a numpy API change, not a valid state.
        if entropy is None:
            raise SimulationError("SeedSequence has no entropy to record")
        return int(entropy)

    @property
    def streams_spawned(self) -> int:
        """Number of child streams handed out so far."""
        return self._count

    def spawn(self) -> np.random.SeedSequence:
        """Return the next independent child :class:`SeedSequence`."""
        child = self._root.spawn(1)[0]
        self._count += 1
        return child

    def generator(self) -> np.random.Generator:
        """Return a generator over the next independent child stream."""
        return np.random.default_rng(self.spawn())

    def generators(self, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators."""
        for _ in range(count):
            yield self.generator()
