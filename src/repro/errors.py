"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An architecture, attack, or experiment was configured inconsistently.

    Raised eagerly at construction time (e.g. a mapping degree larger than
    the next layer, a negative budget, node counts that do not sum to ``n``)
    so that invalid states never reach the analytical or simulation code.
    """


class AnalysisError(ReproError, ArithmeticError):
    """The analytical model reached a numerically invalid state.

    This signals a bug or an input far outside the model's domain (e.g. a
    probability outside ``[0, 1]`` after clamping), never an expected
    condition.
    """


class ContractViolationError(AnalysisError):
    """A runtime contract from :mod:`repro.contracts` was violated.

    A probability-valued function returned something outside ``[0, 1]``, or
    a contracted argument was out of range. Like its parent
    :class:`AnalysisError`, this signals a bug in the model code — never an
    expected condition — so it carries the full function name and offending
    value for diagnosis. Contracts (and these errors) disappear entirely
    when ``REPRO_CONTRACTS=0``.
    """


class RoutingError(ReproError, RuntimeError):
    """An overlay or Chord routing operation could not complete."""


class ProtocolError(ReproError, RuntimeError):
    """An SOS protocol invariant was violated (bad hop, failed verification)."""


class SimulationError(ReproError, RuntimeError):
    """A simulation run was configured or driven inconsistently."""


class CampaignInterrupted(SimulationError):
    """A campaign was cooperatively cancelled before completing.

    Raised by :meth:`~repro.simulation.monte_carlo.MonteCarloEstimator.estimate`
    when its ``abort_check`` fires (deadline expiry, service shutdown, an
    explicit cancel). Completed trials are already flushed to the
    checkpoint when one is configured, so a later run resumes exactly
    where this one stopped — with per-trial RNG streams the resumed
    aggregates are bit-identical to an uninterrupted run.
    """


class ServiceError(ReproError, RuntimeError):
    """The evaluation service was configured or driven inconsistently."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment harness failure (unknown figure id, empty sweep...)."""


class DetectionError(ReproError, RuntimeError):
    """A detection or traceback component was configured or fed
    inconsistently (bad monitor thresholds, marks for an unknown victim,
    a traceback over a graph that does not cover the flood targets)."""


class ScenarioError(ReproError, ValueError):
    """A scenario spec, vector, or zoo entry is invalid.

    Raised eagerly — at spec construction, ``from_dict`` decoding, or zoo
    lookup — so malformed campaign definitions never reach either packet
    engine. Unlike :class:`ContractViolationError` this is a *user* error
    (a bad JSON file or an unknown vector kind), so it is always raised
    regardless of ``REPRO_CONTRACTS``.
    """
