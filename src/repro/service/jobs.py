"""Job payloads: JSON request bodies -> domain objects -> JSON results.

Everything a worker process executes is described by a plain dict (the
parsed request body) so jobs cross the process boundary as picklable
primitives and cache keys fingerprint canonically. Three job kinds map
onto the public endpoints, plus the health probe:

* ``eval`` — one analytical ``P_S`` evaluation (interactive);
* ``sweep`` — a design-space sweep over a (layers x mappings) grid
  against named attack scenarios, on the vectorized batch kernels;
* ``campaign`` — a checkpointed Monte-Carlo campaign (batch; resumable
  after a worker crash, cancellable on deadline), or — when the body
  carries ``{"scenario": "<zoo name>"}`` — one multi-vector scenario
  campaign replayed through the detection→repair loop;
* ``ping`` — a no-op used by readiness probes and breaker half-open
  trials.

Validation happens in :func:`validate_payload` on the event loop before
admission, so malformed requests cost a 400 — never a worker round-trip.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.design_space import enumerate_designs, evaluate_designs
from repro.core.model import evaluate
from repro.detection.loop import LOOP_MODES
from repro.errors import CampaignInterrupted, ScenarioError, ServiceError
from repro.resilience.checkpoint import fingerprint
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import SCENARIO_ENGINES, SCENARIO_TIERS
from repro.scenarios.zoo import load_scenario
from repro.simulation.monte_carlo import MonteCarloConfig, MonteCarloEstimator

JOB_KINDS = ("eval", "sweep", "campaign", "ping")

#: Fields a campaign payload may set on :class:`MonteCarloConfig`.
_CAMPAIGN_FIELDS = (
    "trials",
    "clients_per_trial",
    "metric",
    "seed",
    "churn_fraction",
    "checkpoint_every",
)


# ----------------------------------------------------------------------
# Payload -> domain objects
# ----------------------------------------------------------------------


def build_architecture(payload: Dict[str, Any]) -> SOSArchitecture:
    """Construct an :class:`SOSArchitecture` from a JSON-ish dict."""
    if not isinstance(payload, dict):
        raise ServiceError(f"architecture must be an object, got {payload!r}")
    allowed = {
        "layers",
        "mapping",
        "total_overlay_nodes",
        "sos_nodes",
        "distribution",
        "layer_sizes",
        "filters",
        "filter_mapping",
        "layer_mappings",
    }
    unknown = set(payload) - allowed
    if unknown:
        raise ServiceError(
            f"unknown architecture fields: {sorted(unknown)}"
        )
    kwargs = dict(payload)
    if "layer_sizes" in kwargs and kwargs["layer_sizes"] is not None:
        kwargs["layer_sizes"] = tuple(kwargs["layer_sizes"])
    return SOSArchitecture(**kwargs)


def build_attack(payload: Dict[str, Any]) -> "OneBurstAttack | SuccessiveAttack":
    """Construct an attack model from ``{"kind": ..., ...params}``."""
    if not isinstance(payload, dict):
        raise ServiceError(f"attack must be an object, got {payload!r}")
    params = dict(payload)
    kind = params.pop("kind", "one-burst")
    common = {
        name: params.pop(name)
        for name in ("break_in_budget", "congestion_budget", "break_in_success")
        if name in params
    }
    if kind in ("one-burst", "one_burst"):
        if params:
            raise ServiceError(f"unknown one-burst fields: {sorted(params)}")
        return OneBurstAttack(**common)
    if kind == "successive":
        extra = {
            name: params.pop(name)
            for name in ("rounds", "prior_knowledge")
            if name in params
        }
        if params:
            raise ServiceError(f"unknown successive fields: {sorted(params)}")
        return SuccessiveAttack(**common, **extra)
    raise ServiceError(
        f"unknown attack kind {kind!r}; expected 'one-burst' or 'successive'"
    )


_SCENARIO_CAMPAIGN_FIELDS = frozenset(
    ("scenario", "mode", "phases", "engine", "tier", "seed",
     "deadline_ms", "priority", "checkpoint_every", "chaos_fail")
)


def _validate_scenario_campaign(payload: Dict[str, Any]) -> None:
    unknown = sorted(set(payload) - _SCENARIO_CAMPAIGN_FIELDS)
    if unknown:
        raise ServiceError(f"unknown scenario-campaign fields: {unknown}")
    name = payload["scenario"]
    if not isinstance(name, str):
        raise ServiceError(
            f"'scenario' must be a zoo scenario name, got {name!r}"
        )
    try:
        load_scenario(name)
    except ScenarioError as exc:
        raise ServiceError(str(exc)) from exc
    mode = payload.get("mode", "detected")
    if mode not in LOOP_MODES:
        raise ServiceError(
            f"'mode' must be one of {LOOP_MODES}, got {mode!r}"
        )
    phases = payload.get("phases", 3)
    if isinstance(phases, bool) or not isinstance(phases, int) \
            or not 1 <= phases <= 16:
        raise ServiceError(
            f"'phases' must be an integer in [1, 16], got {phases!r}"
        )
    engine = payload.get("engine")
    if engine is not None and engine not in SCENARIO_ENGINES:
        raise ServiceError(
            f"'engine' must be one of {SCENARIO_ENGINES}, got {engine!r}"
        )
    tier = payload.get("tier")
    if tier is not None and tier not in SCENARIO_TIERS:
        raise ServiceError(
            f"'tier' must be one of {SCENARIO_TIERS}, got {tier!r}"
        )
    seed = payload.get("seed")
    if seed is not None and (
        isinstance(seed, bool) or not isinstance(seed, int) or seed < 0
    ):
        raise ServiceError(
            f"'seed' must be a non-negative integer when set, got {seed!r}"
        )


def validate_payload(kind: str, payload: Dict[str, Any]) -> None:
    """Eagerly validate a request body (raises :class:`ServiceError` /
    other :class:`ReproError` subtypes for a 400 before admission)."""
    if kind == "ping":
        return
    if kind in ("eval", "campaign"):
        if kind == "campaign" and "scenario" in payload:
            # A named zoo campaign: the spec carries the architecture
            # and seed, so the Monte-Carlo fields do not apply.
            _validate_scenario_campaign(payload)
            return
        build_architecture(payload.get("architecture", {}))
        build_attack(payload.get("attack", {}))
        if kind == "campaign":
            _campaign_config(payload, checkpoint_path=None)
        return
    if kind == "sweep":
        scenarios = payload.get("scenarios")
        if not isinstance(scenarios, dict) or not scenarios:
            raise ServiceError("sweep needs a non-empty 'scenarios' object")
        for attack in scenarios.values():
            build_attack(attack)
        _sweep_designs(payload)
        return
    raise ServiceError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")


def canonical_key(kind: str, payload: Dict[str, Any]) -> str:
    """Stable cache/fingerprint key for a request body.

    Execution-only knobs (deadline, priority, checkpointing cadence) are
    stripped so retries and repeats hit the same entry.
    """
    scrubbed = {
        name: value
        for name, value in payload.items()
        if name not in ("deadline_ms", "priority", "checkpoint_every")
    }
    return fingerprint({"kind": kind, "payload": scrubbed})


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------


def _campaign_config(
    payload: Dict[str, Any], checkpoint_path: Optional[str]
) -> MonteCarloConfig:
    kwargs: Dict[str, Any] = {
        name: payload[name] for name in _CAMPAIGN_FIELDS if name in payload
    }
    if payload.get("seed") is None:
        raise ServiceError(
            "campaign payloads must carry an explicit integer 'seed': "
            "reproducibility (and crash-resume bit-identity) depends on it"
        )
    # Checkpoint writes are cheap (one JSON file); a small default batch
    # bounds how much a SIGKILLed worker can lose to recomputation.
    kwargs.setdefault("checkpoint_every", 8)
    return MonteCarloConfig(
        checkpoint_path=checkpoint_path, workers=1, **kwargs
    )


def _sweep_designs(payload: Dict[str, Any]) -> List[SOSArchitecture]:
    grid: Dict[str, Any] = {}
    for name in (
        "layers",
        "mappings",
        "distributions",
        "total_overlay_nodes",
        "sos_nodes",
        "filters",
    ):
        if name in payload:
            grid[name] = payload[name]
    if "layers" in grid:
        grid["layers"] = [int(value) for value in grid["layers"]]
    return enumerate_designs(**grid)


def execute_job(
    kind: str,
    payload: Dict[str, Any],
    checkpoint_path: Optional[str] = None,
    abort_check: Optional[Callable[[], bool]] = None,
) -> Dict[str, Any]:
    """Run one job to completion; returns a JSON-ready result dict.

    ``chaos_sleep_ms`` in the payload injects artificial latency before
    execution — the hook the chaos harness uses to simulate slow
    dependencies without touching production code paths.
    """
    chaos_sleep_ms = payload.get("chaos_sleep_ms")
    if chaos_sleep_ms:
        # Runs inside a worker process (dispatched via Process(target=...)),
        # never on the service event loop, so sleeping here stalls only the
        # one worker the chaos harness aimed at.
        time.sleep(float(chaos_sleep_ms) / 1000.0)  # repro-lint: disable=async-blocking -- worker-side chaos hook; executes past the process boundary, not on the event loop
    chaos_fail = payload.get("chaos_fail")
    if chaos_fail:
        raise ServiceError(f"chaos-injected failure: {chaos_fail}")

    if kind == "ping":
        return {"pong": True}
    if kind == "eval":
        performance = evaluate(
            build_architecture(payload["architecture"]),
            build_attack(payload["attack"]),
        )
        return {
            "p_s": performance.p_s,
            "broken_in_total": performance.broken_in_total,
            "disclosed_total": performance.disclosed_total,
        }
    if kind == "sweep":
        designs = _sweep_designs(payload)
        scenarios = {
            name: build_attack(attack)
            for name, attack in payload["scenarios"].items()
        }
        scores = evaluate_designs(
            designs,
            scenarios,
            aggregate=payload.get("aggregate", "min"),
            weights=payload.get("weights"),
        )
        top = int(payload.get("top", 10))
        return {
            "designs_evaluated": len(scores),
            "scores": [
                {
                    "label": score.label,
                    "aggregate": score.aggregate,
                    "per_scenario": score.per_scenario,
                }
                for score in scores[:top]
            ],
        }
    if kind == "campaign":
        if "scenario" in payload:

            def _raise_if_aborted() -> None:
                if abort_check is not None and abort_check():
                    raise CampaignInterrupted(
                        "scenario campaign cancelled between repair phases"
                    )

            report = run_scenario(
                payload["scenario"],
                mode=payload.get("mode", "detected"),
                phases=int(payload.get("phases", 3)),
                engine=payload.get("engine"),
                tier=payload.get("tier"),
                seed=payload.get("seed"),
                abort_check=_raise_if_aborted,
            )
            return report.to_dict()
        config = _campaign_config(payload, checkpoint_path)
        estimate = MonteCarloEstimator(config).estimate(
            build_architecture(payload["architecture"]),
            build_attack(payload["attack"]),
            abort_check=abort_check,
        )
        return {
            "mean": estimate.mean,
            "variance": estimate.variance,
            "trials": estimate.trials,
            "failed_trials": estimate.failed_trials,
            "mean_bad_per_layer": {
                str(layer): value
                for layer, value in sorted(estimate.mean_bad_per_layer.items())
            },
        }
    raise ServiceError(f"unknown job kind {kind!r}")


__all__ = [
    "JOB_KINDS",
    "build_architecture",
    "build_attack",
    "canonical_key",
    "execute_job",
    "validate_payload",
]
