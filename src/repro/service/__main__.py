"""Run the evaluation service from the command line.

Usage::

    PYTHONPATH=src python -m repro.service --port 8080 --workers 4

Then::

    curl -s localhost:8080/healthz
    curl -s -X POST localhost:8080/eval -d '{
        "architecture": {"layers": 3, "mapping": "one-to-two"},
        "attack": {"kind": "one-burst"}}'
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.service.app import ServiceConfig, SOSEvaluationService
from repro.service.http import HttpServer


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.service", description="SOS evaluation service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--spool-dir", default=None,
                        help="campaign checkpoint directory")
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args(argv)


async def serve(args: argparse.Namespace) -> None:
    config = ServiceConfig(
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        spool_dir=args.spool_dir,
        seed=args.seed,
    )
    server = HttpServer(
        SOSEvaluationService(config), host=args.host, port=args.port
    )
    await server.start()
    print(f"repro.service listening on http://{server.host}:{server.port} "
          f"({args.workers} workers)")
    try:
        while True:
            await asyncio.sleep(3600.0)
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()


def main(argv: Optional[List[str]] = None) -> int:
    try:
        asyncio.run(serve(parse_args(argv)))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
