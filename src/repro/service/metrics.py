"""Service metrics: counters, latency quantiles, SLO snapshots.

Everything the health endpoints, the load generator, and the chaos
harness report flows through :class:`ServiceMetrics` — a plain
in-process recorder (the service touches it only from the event-loop
thread, so no locking). Latencies are kept in a bounded ring per
endpoint: at the scales the SLO harness drives (tens of thousands of
requests) that is exact; beyond the cap the window covers the most
recent requests, which is what an operator wants from a live quantile
anyway.
"""

from __future__ import annotations

import math
import time
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.errors import ServiceError

#: Default per-endpoint latency window.
DEFAULT_WINDOW = 65536


def percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ServiceError(f"percentile q must be in [0, 100], got {q}")
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LatencyWindow:
    """Bounded window of request latencies with streaming totals."""

    def __init__(self, maxlen: int = DEFAULT_WINDOW) -> None:
        self._window: Deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self._window.append(seconds)
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantiles(self) -> Dict[str, float]:
        ordered = sorted(self._window)
        return {
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
            "max": self.max,
            "mean": (self.total / self.count) if self.count else 0.0,
            "count": float(self.count),
        }


class ServiceMetrics:
    """Counter + latency registry backing ``/metrics`` and SLO reports."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.started_at = clock()
        self.counters: Counter[str] = Counter()
        self.latencies: Dict[str, LatencyWindow] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, endpoint: str, seconds: float) -> None:
        window = self.latencies.get(endpoint)
        if window is None:
            window = self.latencies[endpoint] = LatencyWindow()
        window.record(seconds)

    def count(self, name: str) -> int:
        return self.counters.get(name, 0)

    def snapshot(self, extra: Optional[Dict[str, object]] = None) -> Dict[str, Any]:
        """JSON-ready view of every counter and latency window."""
        body: Dict[str, Any] = {
            "uptime_seconds": self._clock() - self.started_at,
            "counters": dict(sorted(self.counters.items())),
            "latency_seconds": {
                endpoint: window.quantiles()
                for endpoint, window in sorted(self.latencies.items())
            },
        }
        if extra:
            body.update(extra)
        return body
