"""Per-request deadlines with cooperative propagation.

A deadline is an absolute point on the monotonic clock, carried with a
request from admission through queueing, dispatch, and into the worker
process (as a remaining-seconds budget, since monotonic clocks do not
compare across processes). Every stage consults the same object:

* admission refuses requests whose deadline already passed (instant 504,
  the queue never wastes a slot on dead work);
* the dispatcher drops queued requests that expired while waiting;
* the worker receives ``remaining()`` at dispatch time and aborts its
  campaign/evaluation cooperatively when the budget runs out;
* the parent enforces a hard stop at ``remaining() + grace`` — a wedged
  worker is killed and respawned rather than allowed to hold a request
  past its promise.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional

from repro.errors import ServiceError

#: Extra seconds the parent waits past a deadline for the worker's own
#: cooperative abort to land before escalating to a kill.
DEFAULT_GRACE = 0.5


@dataclasses.dataclass(frozen=True)
class Deadline:
    """An absolute monotonic-clock deadline (or None = unbounded).

    Construct with :meth:`after` / :meth:`from_timeout_ms`; the raw
    constructor takes an absolute monotonic timestamp.
    """

    at: Optional[float]
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after(
        cls,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Deadline ``seconds`` from now; None means unbounded."""
        if seconds is None:
            return cls(at=None, clock=clock)
        if seconds <= 0:
            raise ServiceError(f"deadline must be > 0 seconds, got {seconds}")
        return cls(at=clock() + seconds, clock=clock)

    @classmethod
    def from_timeout_ms(
        cls,
        timeout_ms: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """Deadline from a client-supplied millisecond budget."""
        if timeout_ms is None:
            return cls(at=None, clock=clock)
        return cls.after(float(timeout_ms) / 1000.0, clock=clock)

    @property
    def unbounded(self) -> bool:
        return self.at is None

    def remaining(self) -> Optional[float]:
        """Seconds left (may be negative once expired); None if unbounded."""
        if self.at is None:
            return None
        return self.at - self.clock()

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def clamp(self, seconds: float) -> float:
        """``seconds`` clipped so it never exceeds the remaining budget."""
        remaining = self.remaining()
        if remaining is None:
            return seconds
        return max(0.0, min(seconds, remaining))


#: The unbounded deadline (batch jobs that may run as long as they need).
NO_DEADLINE = Deadline(at=None)
