"""Bounded admission with priority-aware load shedding.

The queue between the HTTP front and the worker pool is the service's
overload valve. Three properties are non-negotiable, and the overload
property tests pin them:

* **submission never blocks the event loop** — :meth:`try_submit` is a
  plain synchronous call that either admits or sheds *now*;
* **a shed request always gets an immediate answer** — its future is
  completed with :class:`Shed` (the HTTP layer turns that into
  ``429 Retry-After``) before ``try_submit`` returns;
* **priorities preempt**: when the queue is full and a higher-priority
  request arrives, the newest lowest-priority entry is evicted (shed)
  to make room, so interactive traffic survives batch floods.

Expired-deadline entries are skipped (and answered with a timeout
marker) at dequeue time, so dead work never reaches a worker.
"""

from __future__ import annotations

import asyncio
import dataclasses
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.deadline import Deadline

#: Priority classes, highest first. Interactive evaluation outranks
#: batch sweeps/campaigns; health probes outrank everything.
PRIORITIES: Tuple[str, ...] = ("probe", "interactive", "batch")
_PRIORITY_RANK: Dict[str, int] = {name: i for i, name in enumerate(PRIORITIES)}


@dataclasses.dataclass(frozen=True)
class Shed:
    """Completion value for a request refused by backpressure."""

    reason: str
    retry_after: float


@dataclasses.dataclass(frozen=True)
class QueueTimeout:
    """Completion value for a request whose deadline expired in-queue."""

    waited: float


@dataclasses.dataclass
class QueuedRequest:
    """One admitted unit of work awaiting a worker."""

    payload: Any
    priority: str
    deadline: Deadline
    future: "asyncio.Future[Any]"
    enqueued_at: float


class AdmissionQueue:
    """Bounded multi-class FIFO with shed-don't-block semantics.

    ``capacity`` bounds the *total* queued entries across classes.
    ``retry_after`` hints are derived from queue depth and the EMA of
    recent service times, so clients back off roughly as long as the
    backlog needs to drain.
    """

    def __init__(
        self,
        capacity: int,
        workers: int = 1,
        default_service_time: float = 0.05,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        self.capacity = capacity
        self._workers = workers
        self._queues: Dict[str, Deque[QueuedRequest]] = {
            name: deque() for name in PRIORITIES
        }
        self._waiters: Deque["asyncio.Future[None]"] = deque()
        self._service_time_ema = default_service_time
        self.shed_total = 0
        self.evicted_total = 0
        self.expired_in_queue_total = 0
        self.admitted_total = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def depth(self) -> int:
        return len(self)

    def depth_by_class(self) -> Dict[str, int]:
        return {name: len(q) for name, q in self._queues.items()}

    def observe_service_time(self, seconds: float) -> None:
        """Feed a completed request's service time into the EMA."""
        self._service_time_ema = 0.8 * self._service_time_ema + 0.2 * seconds

    def retry_after_hint(self) -> float:
        """Suggested client backoff: time to drain the current backlog."""
        backlog = len(self) + 1
        estimate = backlog * self._service_time_ema / self._workers
        return max(1.0, min(60.0, estimate))

    # ------------------------------------------------------------------
    # Producer side (event loop; must never block)
    # ------------------------------------------------------------------
    def try_submit(
        self,
        payload: Any,
        priority: str,
        deadline: Deadline,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> QueuedRequest:
        """Admit or shed ``payload``; the returned request's future is
        already resolved (with :class:`Shed`) when shedding happened."""
        if priority not in _PRIORITY_RANK:
            raise ServiceError(
                f"unknown priority {priority!r}; expected one of {PRIORITIES}"
            )
        if loop is None:
            loop = asyncio.get_running_loop()
        request = QueuedRequest(
            payload=payload,
            priority=priority,
            deadline=deadline,
            future=loop.create_future(),
            enqueued_at=loop.time(),
        )
        if deadline.expired:
            # Dead on arrival: answer instantly, never queue.
            self.expired_in_queue_total += 1
            request.future.set_result(QueueTimeout(waited=0.0))
            return request
        if len(self) >= self.capacity and not self._evict_for(priority):
            self.shed_total += 1
            request.future.set_result(
                Shed(reason="queue_full", retry_after=self.retry_after_hint())
            )
            return request
        self._queues[priority].append(request)
        self.admitted_total += 1
        self._wake_one()
        return request

    def _evict_for(self, priority: str) -> bool:
        """Make room for ``priority`` by shedding strictly lower-priority
        work (newest first, so older batch work keeps its place)."""
        rank = _PRIORITY_RANK[priority]
        for victim_class in reversed(PRIORITIES):
            if _PRIORITY_RANK[victim_class] <= rank:
                break
            queue = self._queues[victim_class]
            if queue:
                victim = queue.pop()
                self.evicted_total += 1
                self.shed_total += 1
                if not victim.future.done():
                    victim.future.set_result(
                        Shed(
                            reason="evicted_by_higher_priority",
                            retry_after=self.retry_after_hint(),
                        )
                    )
                return True
        return False

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    # ------------------------------------------------------------------
    # Consumer side (worker dispatch tasks)
    # ------------------------------------------------------------------
    def _pop_ready(self) -> Optional[QueuedRequest]:
        """Highest-priority non-expired entry, answering expired ones."""
        for name in PRIORITIES:
            queue = self._queues[name]
            while queue:
                request = queue.popleft()
                if request.future.done():
                    continue  # cancelled/answered while queued
                if request.deadline.expired:
                    self.expired_in_queue_total += 1
                    loop = request.future.get_loop()
                    request.future.set_result(
                        QueueTimeout(waited=loop.time() - request.enqueued_at)
                    )
                    continue
                return request
        return None

    async def get(self) -> QueuedRequest:
        """Await the next dispatchable request (FIFO within class)."""
        while True:
            request = self._pop_ready()
            if request is not None:
                return request
            loop = asyncio.get_running_loop()
            waiter: "asyncio.Future[None]" = loop.create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()

    def drain(self) -> int:
        """Answer everything still queued (shutdown); returns the count."""
        drained = 0
        for queue in self._queues.values():
            while queue:
                request = queue.popleft()
                if not request.future.done():
                    request.future.set_result(
                        Shed(reason="shutting_down", retry_after=1.0)
                    )
                drained += 1
        return drained
