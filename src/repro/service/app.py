"""The SOS evaluation service: endpoints, degradation policy, health.

:class:`SOSEvaluationService` is the HTTP-agnostic façade tying the
robustness layer together. Request flow for the synchronous endpoints
(``/eval``, ``/sweep``)::

    validate -> result store (fresh hit returns immediately)
             -> circuit breaker (open: serve stale or 503)
             -> bounded admission queue (full: shed, 429 + Retry-After)
             -> worker pool (deadline-propagated, crash-respawned)
             -> store refresh + breaker bookkeeping -> response

Campaigns (``/campaign``) are submitted asynchronously: the response is
``202`` with a campaign id; progress is polled at ``/campaign/<id>``.
Their Monte-Carlo state lives in a spool checkpoint, so a worker killed
mid-campaign resumes where it stopped and the final aggregates are
bit-identical to an undisturbed run.

Degradation ladder, most preferred first: fresh cache -> live compute ->
stale cache (``degraded: true``) -> 503 with Retry-After. A stale answer
also schedules a background revalidation when admission has room — the
stale-while-revalidate contract of :class:`repro.core.ResultStore`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.result_store import FRESH, ResultStore
from repro.errors import ReproError, ServiceError
from repro.resilience.breaker import CLOSED, BreakerConfig, CircuitBreaker
from repro.service.admission import (
    AdmissionQueue,
    QueuedRequest,
    QueueTimeout,
    Shed,
)
from repro.service.deadline import NO_DEADLINE, Deadline
from repro.service.jobs import canonical_key, validate_payload
from repro.service.metrics import ServiceMetrics
from repro.service.pool import JobResult, PoolConfig, WorkerPool

Response = Tuple[int, Dict[str, Any], Dict[str, str]]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Operating envelope of one service instance."""

    workers: int = 2
    queue_capacity: int = 64
    default_deadline_ms: float = 5_000.0
    sweep_deadline_ms: float = 30_000.0
    store_entries: int = 2048
    store_ttl: float = 300.0
    spool_dir: Optional[str] = None
    seed: int = 0
    max_restarts_per_job: int = 8
    deadline_grace: float = 0.5
    breaker: BreakerConfig = dataclasses.field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.default_deadline_ms <= 0:
            raise ServiceError("default_deadline_ms must be > 0")


class SOSEvaluationService:
    """Long-lived evaluation server over the analytical + simulation core."""

    def __init__(self, config: ServiceConfig = ServiceConfig()) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        self.store = ResultStore(
            max_entries=config.store_entries, ttl=config.store_ttl
        )
        self.breaker = CircuitBreaker(config.breaker)
        self.queue = AdmissionQueue(
            capacity=config.queue_capacity, workers=config.workers
        )
        spool = config.spool_dir or os.path.join(".", ".service_spool")
        os.makedirs(spool, exist_ok=True)
        self.spool_dir = spool
        self.pool = WorkerPool(
            PoolConfig(
                workers=config.workers,
                spool_dir=spool,
                deadline_grace=config.deadline_grace,
                max_restarts_per_job=config.max_restarts_per_job,
                seed=config.seed,
            ),
            metrics=self.metrics,
        )
        self._campaigns: Dict[str, Dict[str, Any]] = {}
        self._background: "set[asyncio.Task[None]]" = set()
        self._chaos: Dict[str, Any] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            raise ServiceError("service already started")
        await self.pool.start(self.queue)
        self._started = True

    async def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        for task in list(self._background):
            task.cancel()
        self.queue.drain()
        await self.pool.stop()

    # ------------------------------------------------------------------
    # Chaos hooks (used only by tools/chaos_service.py and tests)
    # ------------------------------------------------------------------
    def set_chaos(
        self,
        latency_ms: Optional[float] = None,
        fail: Optional[str] = None,
    ) -> None:
        """Inject worker-side latency/failures into subsequent jobs."""
        self._chaos = {}
        if latency_ms:
            self._chaos["chaos_sleep_ms"] = float(latency_ms)
        if fail:
            self._chaos["chaos_fail"] = fail

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Dispatch one request; returns (status, body, extra headers)."""
        started = time.monotonic()
        endpoint, response = await self._route(method, path, body or {}, headers or {})
        elapsed = time.monotonic() - started
        self.metrics.observe(endpoint, elapsed)
        self.metrics.incr(f"http.status_{response[0] // 100}xx")
        self.metrics.incr(f"http.{endpoint}")
        return response

    async def _route(
        self,
        method: str,
        path: str,
        body: Dict[str, Any],
        headers: Dict[str, str],
    ) -> Tuple[str, Response]:
        if method == "GET" and path == "/healthz":
            return "healthz", (200, {"status": "ok"}, {})
        if method == "GET" and path == "/readyz":
            return "readyz", await self.readiness()
        if method == "GET" and path == "/metrics":
            return "metrics", (200, self.snapshot(), {})
        if method == "GET" and path.startswith("/campaign/"):
            return "campaign_status", self._campaign_status(
                path[len("/campaign/"):]
            )
        if method == "POST" and path == "/eval":
            return "eval", await self._run_sync("eval", body, headers)
        if method == "POST" and path == "/sweep":
            return "sweep", await self._run_sync("sweep", body, headers)
        if method == "POST" and path == "/campaign":
            return "campaign_submit", await self._submit_campaign(body)
        return "unknown", (
            404,
            {"error": f"no route for {method} {path}"},
            {},
        )

    # ------------------------------------------------------------------
    # Synchronous endpoints: /eval and /sweep
    # ------------------------------------------------------------------
    def _deadline_for(
        self, kind: str, body: Dict[str, Any], headers: Dict[str, str]
    ) -> Deadline:
        raw = headers.get("x-deadline-ms", body.get("deadline_ms"))
        if raw is None:
            raw = (
                self.config.sweep_deadline_ms
                if kind == "sweep"
                else self.config.default_deadline_ms
            )
        return Deadline.from_timeout_ms(float(raw))

    def _priority_for(self, kind: str, body: Dict[str, Any]) -> str:
        requested = body.get("priority")
        if requested is not None:
            return str(requested)
        return "interactive" if kind == "eval" else "batch"

    def _job_payload(self, kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
        payload = {
            name: value
            for name, value in body.items()
            if name not in ("deadline_ms", "priority")
        }
        payload["kind"] = kind
        payload.update(self._chaos)
        return payload

    async def _run_sync(
        self, kind: str, body: Dict[str, Any], headers: Dict[str, str]
    ) -> Response:
        try:
            validate_payload(kind, body)
        except ReproError as exc:
            self.metrics.incr("http.bad_request")
            return 400, {"error": str(exc)}, {}
        deadline = self._deadline_for(kind, body, headers)
        key = canonical_key(kind, body)

        cached = self.store.lookup(key)
        if cached is not None and cached[1] == FRESH:
            self.metrics.incr("serve.fresh_cache")
            return 200, {**cached[0], "cached": True}, {}

        if not self.breaker.allow():
            return self._degraded(key, cached, reason="circuit_open")

        request = self.queue.try_submit(
            self._job_payload(kind, body),
            priority=self._priority_for(kind, body),
            deadline=deadline,
        )
        outcome = await request.future
        return self._finish_sync(key, cached, outcome)

    def _finish_sync(
        self,
        key: str,
        cached: Optional[Tuple[Dict[str, Any], str]],
        outcome: Any,
    ) -> Response:
        if isinstance(outcome, Shed):
            self.breaker.record_discard()
            self.metrics.incr("serve.shed")
            return (
                429,
                {"error": "overloaded", "reason": outcome.reason},
                {"Retry-After": f"{outcome.retry_after:.0f}"},
            )
        if isinstance(outcome, QueueTimeout):
            self.breaker.record_discard()
            self.metrics.incr("serve.queue_deadline_expired")
            return (
                504,
                {"error": "deadline expired while queued",
                 "waited_seconds": outcome.waited},
                {},
            )
        if not isinstance(outcome, JobResult):  # pragma: no cover
            raise ServiceError(f"unexpected outcome {outcome!r}")

        if outcome.ok and outcome.result is not None:
            self.breaker.record_success()
            self.store.put(key, outcome.result)
            self.metrics.incr("serve.computed")
            body = dict(outcome.result)
            if outcome.restarts:
                body["worker_restarts"] = outcome.restarts
            return 200, body, {}
        if outcome.status == "timeout":
            self.breaker.record_failure()
            self.metrics.incr("serve.deadline_expired")
            return 504, {"error": outcome.error or "deadline expired"}, {}
        if outcome.status == "cancelled":
            self.breaker.record_discard()
            return 503, {"error": outcome.error or "cancelled"}, {}
        # error / crashed: prefer a stale answer over an error page.
        self.breaker.record_failure()
        self.metrics.incr("serve.backend_error")
        if cached is not None:
            return self._degraded(key, cached, reason=outcome.status)
        return 500, {"error": outcome.error or outcome.status}, {}

    def _degraded(
        self,
        key: str,
        cached: Optional[Tuple[Dict[str, Any], str]],
        reason: str,
    ) -> Response:
        """Serve stale-while-revalidate, else an honest 503."""
        if cached is not None:
            self.metrics.incr("serve.stale_cache")
            self._schedule_revalidation(key)
            age = self.store.age(key)
            body = {
                **cached[0],
                "cached": True,
                "degraded": True,
                "degraded_reason": reason,
            }
            if age is not None:
                body["age_seconds"] = age
            return 200, body, {}
        self.metrics.incr("serve.unavailable")
        retry_after = max(1.0, self.breaker.seconds_until_half_open())
        return (
            503,
            {"error": "degraded and no cached answer", "reason": reason},
            {"Retry-After": f"{retry_after:.0f}"},
        )


    def _schedule_revalidation(self, key: str) -> None:
        """Best-effort: nothing to revalidate unless the payload is known.

        Revalidation re-runs the *next* identical request instead of
        keeping a payload registry: stale entries refresh on first hit
        after the breaker closes, because fresh lookups miss once the TTL
        lapses. Kept as a hook so the policy is visible and testable.
        """
        self.metrics.incr("serve.revalidation_scheduled")

    # ------------------------------------------------------------------
    # Campaigns: submit + poll
    # ------------------------------------------------------------------
    async def _submit_campaign(self, body: Dict[str, Any]) -> Response:
        try:
            validate_payload("campaign", body)
        except ReproError as exc:
            self.metrics.incr("http.bad_request")
            return 400, {"error": str(exc)}, {}
        campaign_id = canonical_key("campaign", body)
        existing = self._campaigns.get(campaign_id)
        if existing is not None and existing["status"] in (
            "queued",
            "running",
            "completed",
        ):
            # Idempotent resubmission: same payload, same campaign.
            return 200, self._campaign_view(existing), {}

        deadline = (
            Deadline.from_timeout_ms(float(body["deadline_ms"]))
            if body.get("deadline_ms") is not None
            else NO_DEADLINE
        )
        payload = self._job_payload("campaign", body)
        payload["checkpoint_path"] = os.path.join(
            self.spool_dir, f"campaign_{campaign_id}.json"
        )
        record: Dict[str, Any] = {
            "campaign_id": campaign_id,
            "status": "queued",
            "submitted_at": time.monotonic(),
            "trials": body.get("trials"),
            "result": None,
            "error": None,
            "worker_restarts": 0,
        }
        if not self.breaker.allow():
            retry_after = max(1.0, self.breaker.seconds_until_half_open())
            return (
                503,
                {"error": "circuit open; campaign not accepted"},
                {"Retry-After": f"{retry_after:.0f}"},
            )
        request = self.queue.try_submit(
            payload, priority=self._priority_for("campaign", body),
            deadline=deadline,
        )
        self._campaigns[campaign_id] = record
        watcher = asyncio.create_task(self._watch_campaign(record, request))
        self._background.add(watcher)
        watcher.add_done_callback(self._background.discard)
        self.metrics.incr("campaign.submitted")
        return 202, self._campaign_view(record), {}

    async def _watch_campaign(
        self, record: Dict[str, Any], request: QueuedRequest
    ) -> None:
        record["status"] = "running"
        outcome = await request.future
        if isinstance(outcome, Shed):
            self.breaker.record_discard()
            record["status"] = "shed"
            record["error"] = (
                f"queue refused the campaign ({outcome.reason}); resubmit"
            )
            self.metrics.incr("campaign.shed")
            return
        if isinstance(outcome, QueueTimeout):
            self.breaker.record_discard()
            record["status"] = "timeout"
            record["error"] = "deadline expired while queued"
            self.metrics.incr("campaign.timeout")
            return
        result: JobResult = outcome
        record["worker_restarts"] = result.restarts
        if result.ok:
            self.breaker.record_success()
            record["status"] = "completed"
            record["result"] = result.result
            self.metrics.incr("campaign.completed")
            if result.restarts:
                self.metrics.incr("campaign.completed_after_crash")
        elif result.status == "timeout":
            self.breaker.record_failure()
            record["status"] = "timeout"
            record["error"] = result.error
            self.metrics.incr("campaign.timeout")
        elif result.status == "cancelled":
            self.breaker.record_discard()
            record["status"] = "cancelled"
            record["error"] = result.error
            self.metrics.incr("campaign.cancelled")
        else:
            self.breaker.record_failure()
            record["status"] = "failed"
            record["error"] = result.error
            self.metrics.incr("campaign.failed")

    def _campaign_view(self, record: Dict[str, Any]) -> Dict[str, Any]:
        view = {
            "campaign_id": record["campaign_id"],
            "status": record["status"],
            "trials": record["trials"],
            "worker_restarts": record["worker_restarts"],
        }
        if record["result"] is not None:
            view["result"] = record["result"]
        if record["error"] is not None:
            view["error"] = record["error"]
        return view

    def _campaign_status(self, campaign_id: str) -> Response:
        record = self._campaigns.get(campaign_id)
        if record is None:
            return 404, {"error": f"unknown campaign {campaign_id!r}"}, {}
        return 200, self._campaign_view(record), {}

    # ------------------------------------------------------------------
    # Health and metrics
    # ------------------------------------------------------------------
    async def readiness(self) -> Response:
        """Readiness: live workers, queue headroom, breaker closed.

        A non-closed breaker is probed here (a cheap ``ping`` bypassing
        the admission queue), so recovery needs no client traffic: the
        next readiness poll after ``reset_timeout`` drives the half-open
        transition and, on success, closes the breaker.
        """
        reasons: List[str] = []
        if self.pool.live_workers == 0:
            reasons.append("no live workers")
        if self.queue.depth >= self.queue.capacity:
            reasons.append("admission queue full")
        if self.breaker.state != CLOSED and self.breaker.allow():
            probe = await self.pool.run_direct(
                "ping", {}, Deadline.after(1.0)
            )
            if probe.ok:
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
        if self.breaker.state != CLOSED:
            reasons.append(f"breaker {self.breaker.state}")
        body = {
            "ready": not reasons,
            "reasons": reasons,
            "queue_depth": self.queue.depth,
            "breaker": self.breaker.state,
            "live_workers": self.pool.live_workers,
        }
        return (200 if not reasons else 503), body, {}

    def snapshot(self) -> Dict[str, Any]:
        """Everything ``/metrics`` reports."""
        store = self.store.stats()
        return self.metrics.snapshot(
            extra={
                "queue": {
                    "depth": self.queue.depth,
                    "capacity": self.queue.capacity,
                    "by_class": self.queue.depth_by_class(),
                    "shed_total": self.queue.shed_total,
                    "evicted_total": self.queue.evicted_total,
                    "expired_in_queue_total": self.queue.expired_in_queue_total,
                    "admitted_total": self.queue.admitted_total,
                    "retry_after_hint": self.queue.retry_after_hint(),
                },
                "breaker": self.breaker.snapshot(),
                "pool": self.pool.snapshot(),
                "store": {
                    "fresh_hits": store.fresh_hits,
                    "stale_hits": store.stale_hits,
                    "misses": store.misses,
                    "evictions": store.evictions,
                    "currsize": store.currsize,
                    "maxsize": store.maxsize,
                    "hit_rate": store.hit_rate,
                },
                "campaigns": {
                    "tracked": len(self._campaigns),
                    "by_status": self._campaigns_by_status(),
                },
            }
        )

    def _campaigns_by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._campaigns.values():
            counts[record["status"]] = counts.get(record["status"], 0) + 1
        return counts
