"""Supervised process worker pool with crash recovery and cancellation.

Each worker is a separate OS process joined to the parent by a duplex
pipe. The parent side runs one asyncio dispatch loop per worker slot;
the blocking pipe protocol is driven inside a thread executor so the
event loop never waits on a worker. The robustness contract:

* **deadline propagation** — the worker receives the remaining budget at
  dispatch and aborts its job cooperatively (checkpoint-flushed) when it
  runs out; the parent escalates to SIGKILL ``deadline_grace`` seconds
  past the deadline, so a wedged worker cannot hold a request forever;
* **cooperative cancellation** — the parent can send ``cancel`` mid-job;
  the worker polls for it between Monte-Carlo trials via the
  ``abort_check`` hook of :meth:`MonteCarloEstimator.estimate`;
* **supervisor respawn** — a dead worker (crash, chaos kill, OOM) is
  respawned and the interrupted job re-dispatched with decorrelated-
  jitter backoff; campaigns resume from their checkpoint, so the final
  aggregates are bit-identical to an undisturbed run;
* **bounded retries** — a job that keeps killing workers is failed after
  ``max_restarts_per_job`` attempts instead of crash-looping the pool.

Nothing here knows about HTTP; the pool consumes
:class:`~repro.service.admission.QueuedRequest` objects and resolves
their futures with :class:`JobResult`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.errors import CampaignInterrupted, ReproError, ServiceError
from repro.resilience.retry import RetryPolicy
from repro.service.admission import AdmissionQueue, QueuedRequest
from repro.service.deadline import DEFAULT_GRACE, Deadline
from repro.service.jobs import execute_job
from repro.service.metrics import ServiceMetrics
from repro.utils.seeding import SeedSequenceFactory

#: Sentinel returned by the pipe driver when the worker process died.
_WORKER_DIED = object()

#: Backoff between re-dispatch attempts after a worker crash. Decorrelated
#: jitter (satellite of this PR) keeps a fleet of dispatch loops from
#: hammering respawned workers in lockstep after a correlated kill.
RESPAWN_BACKOFF = RetryPolicy(
    backoff_base=0.05, backoff_factor=3.0, decorrelated=True, max_backoff=1.0
)


@dataclasses.dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for :class:`WorkerPool`."""

    workers: int = 2
    spool_dir: Optional[str] = None
    deadline_grace: float = DEFAULT_GRACE
    max_restarts_per_job: int = 3
    poll_interval: float = 0.02
    supervisor_interval: float = 0.25
    shutdown_timeout: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError(f"workers must be >= 1, got {self.workers}")
        if self.deadline_grace <= 0:
            raise ServiceError(
                f"deadline_grace must be > 0, got {self.deadline_grace}"
            )
        if self.max_restarts_per_job < 0:
            raise ServiceError(
                f"max_restarts_per_job must be >= 0, "
                f"got {self.max_restarts_per_job}"
            )


@dataclasses.dataclass
class JobResult:
    """Terminal outcome of one dispatched job."""

    status: str  # ok | error | cancelled | timeout | crashed
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    restarts: int = 0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ----------------------------------------------------------------------
# Worker process side
# ----------------------------------------------------------------------


def _worker_main(conn: multiprocessing.connection.Connection) -> None:
    """Job loop run inside each worker process.

    Control messages (``cancel``, ``shutdown``) may arrive while a job is
    executing; the job's ``abort_check`` drains them between trials, which
    is what makes cancellation cooperative instead of preemptive.
    """
    state = {"shutdown": False}
    while not state["shutdown"]:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        command = message.get("cmd")
        if command == "shutdown":
            break
        if command == "cancel":
            continue  # cancel for a job that already finished; stale.
        if command != "job":
            continue
        conn.send(_run_one_job(conn, message, state))
    conn.close()


def _run_one_job(
    conn: multiprocessing.connection.Connection,
    message: Dict[str, Any],
    state: Dict[str, bool],
) -> Dict[str, Any]:
    job_id = message["job_id"]
    remaining = message.get("remaining")
    deadline_ts = (
        time.monotonic() + float(remaining) if remaining is not None else None
    )
    flags = {"cancelled": False}

    def abort_check() -> bool:
        while conn.poll(0):
            try:
                control = conn.recv()
            except (EOFError, OSError):
                state["shutdown"] = True
                break
            command = control.get("cmd")
            if command == "cancel" and control.get("job_id") == job_id:
                flags["cancelled"] = True
            elif command == "shutdown":
                state["shutdown"] = True
        if flags["cancelled"] or state["shutdown"]:
            return True
        return deadline_ts is not None and time.monotonic() >= deadline_ts

    if abort_check():
        return {"job_id": job_id, "status": "cancelled", "error": "expired"}
    try:
        result = execute_job(
            message["kind"],
            message["payload"],
            checkpoint_path=message.get("checkpoint_path"),
            abort_check=abort_check,
        )
    except CampaignInterrupted as exc:
        return {"job_id": job_id, "status": "cancelled", "error": str(exc)}
    except ReproError as exc:
        return {
            "job_id": job_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    except Exception as exc:  # noqa: BLE001 — worker must never die on a job
        return {
            "job_id": job_id,
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
        }
    return {"job_id": job_id, "status": "ok", "result": result}


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, slot: int) -> None:
        self.slot = slot
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn: Optional[multiprocessing.connection.Connection] = None
        self.lock = asyncio.Lock()
        self.jobs_completed = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """N supervised worker processes consuming an admission queue."""

    def __init__(
        self,
        config: PoolConfig = PoolConfig(),
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics or ServiceMetrics()
        # "spawn" keeps respawn safe from a threaded parent (fork can
        # inherit held locks) and behaves identically across platforms.
        self._ctx = multiprocessing.get_context("spawn")
        self._handles = [_WorkerHandle(slot) for slot in range(config.workers)]
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers + 1, thread_name_prefix="pool-drive"
        )
        self._backoff_rng = SeedSequenceFactory(config.seed).generator()
        self._job_counter = 0
        self._running = False
        self._tasks: List["asyncio.Task[None]"] = []
        self._queue: Optional[AdmissionQueue] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, queue: AdmissionQueue) -> None:
        """Spawn workers and begin consuming ``queue``."""
        if self._running:
            raise ServiceError("pool already started")
        self._running = True
        self._queue = queue
        loop = asyncio.get_running_loop()
        for handle in self._handles:
            await loop.run_in_executor(self._executor, self._spawn, handle)
        self._tasks = [
            asyncio.create_task(
                self._dispatch_loop(handle), name=f"pool-slot-{handle.slot}"
            )
            for handle in self._handles
        ]
        self._tasks.append(
            asyncio.create_task(self._supervise(), name="pool-supervisor")
        )

    async def stop(self) -> None:
        """Stop dispatching, shut workers down, kill stragglers."""
        self._running = False
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks = []
        deadline = time.monotonic() + self.config.shutdown_timeout
        for handle in self._handles:
            if handle.conn is not None:
                try:
                    handle.conn.send({"cmd": "shutdown"})
                except (BrokenPipeError, OSError):
                    pass
        loop = asyncio.get_running_loop()
        for handle in self._handles:
            process = handle.process
            if process is None:
                continue
            await loop.run_in_executor(
                self._executor, self._reap, process, deadline
            )
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _reap(
        process: multiprocessing.process.BaseProcess, deadline: float
    ) -> None:
        """(Blocking) join a worker by ``deadline``, killing stragglers.

        Runs on the pool's thread executor so :meth:`stop` never parks
        the event loop on a ``Process.join``.
        """
        process.join(timeout=max(0.0, deadline - time.monotonic()))
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for handle in self._handles if handle.alive)

    @property
    def worker_pids(self) -> List[int]:
        """PIDs of live workers (the chaos harness kills from this list)."""
        return [
            handle.process.pid
            for handle in self._handles
            if handle.alive and handle.process is not None
            and handle.process.pid is not None
        ]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "workers": self.config.workers,
            "live_workers": self.live_workers,
            "respawns": self.metrics.count("pool.respawns"),
            "jobs_ok": self.metrics.count("pool.jobs_ok"),
            "jobs_error": self.metrics.count("pool.jobs_error"),
            "jobs_crashed": self.metrics.count("pool.jobs_crashed"),
            "jobs_cancelled": self.metrics.count("pool.jobs_cancelled"),
            "jobs_timeout": self.metrics.count("pool.jobs_timeout"),
        }

    # ------------------------------------------------------------------
    # Worker management
    # ------------------------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Blocking) start a fresh process+pipe for ``handle``."""
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-service-worker-{handle.slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn

    async def _respawn(self, handle: _WorkerHandle) -> None:
        loop = asyncio.get_running_loop()
        process = handle.process
        if process is not None and process.is_alive():
            process.kill()
        if process is not None:
            await loop.run_in_executor(
                self._executor, lambda: process.join(timeout=1.0)
            )
        await loop.run_in_executor(self._executor, self._spawn, handle)
        self.metrics.incr("pool.respawns")

    async def _supervise(self) -> None:
        """Respawn workers that died while idle (chaos kills, OOM)."""
        while self._running:
            await asyncio.sleep(self.config.supervisor_interval)
            for handle in self._handles:
                if handle.lock.locked() or handle.alive:
                    continue
                async with handle.lock:
                    if not handle.alive:
                        await self._respawn(handle)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch_loop(self, handle: _WorkerHandle) -> None:
        if self._queue is None:  # pragma: no cover - guarded by start()
            raise ServiceError("pool not started")
        while self._running:
            request = await self._queue.get()
            started = time.monotonic()
            async with handle.lock:
                result = await self._execute(handle, request)
            result.duration = time.monotonic() - started
            self.metrics.incr(f"pool.jobs_{result.status}")
            self._queue.observe_service_time(result.duration)
            if not request.future.done():
                request.future.set_result(result)

    async def run_direct(
        self, kind: str, payload: Dict[str, Any], deadline: Deadline
    ) -> JobResult:
        """Run a job outside the admission queue (readiness probes).

        Picks the first idle live worker; if every worker is busy the
        probe is answered from parent state without a worker round-trip.
        """
        for handle in self._handles:
            if handle.lock.locked():
                continue
            async with handle.lock:
                started = time.monotonic()
                request = _DirectRequest(payload={"kind": kind, **payload},
                                         deadline=deadline)
                result = await self._execute(handle, request)
                result.duration = time.monotonic() - started
                return result
        return JobResult(
            status="ok" if self.live_workers else "crashed",
            result={"pong": self.live_workers > 0, "busy": True},
        )

    async def _execute(
        self, handle: _WorkerHandle, request: "QueuedRequest | _DirectRequest"
    ) -> JobResult:
        """Drive one job on ``handle``, surviving worker deaths."""
        loop = asyncio.get_running_loop()
        payload = dict(request.payload)
        kind = payload.pop("kind")
        checkpoint_path = payload.pop("checkpoint_path", None)
        self._job_counter += 1
        job_id = f"job-{self._job_counter}"
        restarts = 0
        previous_delay: Optional[float] = None
        while True:
            if not handle.alive:
                await self._respawn(handle)
            message = {
                "cmd": "job",
                "job_id": job_id,
                "kind": kind,
                "payload": payload,
                "checkpoint_path": checkpoint_path,
                "remaining": request.deadline.remaining(),
            }
            reply = await loop.run_in_executor(
                self._executor, self._drive, handle, request.deadline, message
            )
            if reply is not _WORKER_DIED:
                handle.jobs_completed += 1
                status = reply["status"]
                if status == "cancelled" and request.deadline.expired:
                    status = "timeout"
                return JobResult(
                    status=status,
                    result=reply.get("result"),
                    error=reply.get("error"),
                    restarts=restarts,
                )
            # Worker died mid-job (crash or chaos kill).
            self.metrics.incr("pool.worker_deaths")
            if request.deadline.expired:
                return JobResult(
                    status="timeout",
                    error="worker died and the deadline expired before retry",
                    restarts=restarts,
                )
            if restarts >= self.config.max_restarts_per_job:
                return JobResult(
                    status="crashed",
                    error=(
                        f"worker died {restarts + 1} times executing this "
                        "job; giving up"
                    ),
                    restarts=restarts,
                )
            restarts += 1
            previous_delay = RESPAWN_BACKOFF.delay(
                restarts - 1, self._backoff_rng, previous=previous_delay
            )
            await asyncio.sleep(request.deadline.clamp(previous_delay))

    def _drive(
        self,
        handle: _WorkerHandle,
        deadline: Deadline,
        message: Dict[str, Any],
    ) -> Any:
        """(Blocking, thread executor) pipe round-trip for one job.

        Returns the worker's reply dict, or :data:`_WORKER_DIED`. Past
        ``deadline + grace`` a silent worker is killed — the hard stop
        backing the cooperative cancellation path.
        """
        conn = handle.conn
        process = handle.process
        if conn is None or process is None:
            return _WORKER_DIED
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return _WORKER_DIED
        sent_cancel = False
        while True:
            try:
                ready = conn.poll(self.config.poll_interval)
            except (BrokenPipeError, OSError, EOFError):
                return _WORKER_DIED
            if ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    return _WORKER_DIED
                if reply.get("job_id") == message["job_id"]:
                    return reply
                continue  # stale reply from a pre-respawn job; skip.
            if not process.is_alive():
                return _WORKER_DIED
            remaining = deadline.remaining()
            if remaining is None:
                continue
            if remaining <= 0 and not sent_cancel:
                try:
                    conn.send({"cmd": "cancel", "job_id": message["job_id"]})
                except (BrokenPipeError, OSError):
                    return _WORKER_DIED
                sent_cancel = True
            if remaining <= -self.config.deadline_grace:
                # Cooperative cancel ignored: the worker is wedged. Kill
                # it; the caller maps death + expired deadline to 504.
                process.kill()
                return _WORKER_DIED


@dataclasses.dataclass
class _DirectRequest:
    """Adapter so probes share the `_execute` path with queued requests."""

    payload: Dict[str, Any]
    deadline: Deadline


def default_spool_dir(base: Optional[str] = None) -> str:
    """Directory for campaign checkpoints (created on demand)."""
    root = base or os.path.join(".", ".service_spool")
    os.makedirs(root, exist_ok=True)
    return root
