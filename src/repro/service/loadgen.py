"""Open-loop load generation and SLO reporting for the service.

The generator is **open-loop**: request launch times come from a
precomputed arrival schedule, not from when earlier responses return.
A closed-loop client (wait for reply, send next) self-throttles when
the server slows down and hides exactly the overload behaviour this
harness exists to measure; open-loop arrivals keep the pressure honest
(see the coordinated-omission argument in the performance docs).

A load shape is a list of :class:`LoadPhase` segments. Within a phase
the arrival rate interpolates linearly from ``start_rps`` to
``end_rps``, so ramps are first-class; holds set the two equal; spikes
are short holds at a high rate. Arrival times are deterministic given
the shape — no RNG — so two runs of the same shape issue requests at
identical offsets.

The output is an SLO report dict in the repo's ``BENCH_*.json`` style:
throughput, latency quantiles (p50/p95/p99), error rate and shed rate,
plus a status histogram, ready to be committed next to the benchmark
trajectory and compared by ``tools/bench_compare.py``-style tooling.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.service.http import http_request
from repro.service.metrics import percentile

#: Report schema version (bumped on incompatible field changes).
SLO_REPORT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class LoadPhase:
    """One segment of a load shape.

    ``start_rps``/``end_rps`` interpolate linearly over ``duration``
    seconds; a constant-rate hold sets them equal.
    """

    name: str
    duration: float
    start_rps: float
    end_rps: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: duration must be > 0, "
                f"got {self.duration}"
            )
        if self.start_rps < 0 or self.end_rps < 0:
            raise ConfigurationError(
                f"phase {self.name!r}: rates must be >= 0, got "
                f"{self.start_rps}->{self.end_rps}"
            )

    def rate_at(self, elapsed: float) -> float:
        """Arrival rate ``elapsed`` seconds into the phase."""
        fraction = min(1.0, max(0.0, elapsed / self.duration))
        return self.start_rps + (self.end_rps - self.start_rps) * fraction


def ramp(duration: float, to_rps: float, from_rps: float = 0.0) -> LoadPhase:
    return LoadPhase("ramp", duration, from_rps, to_rps)


def hold(duration: float, rps: float) -> LoadPhase:
    return LoadPhase("hold", duration, rps, rps)


def spike(duration: float, rps: float) -> LoadPhase:
    return LoadPhase("spike", duration, rps, rps)


def arrival_schedule(phases: Sequence[LoadPhase]) -> List[float]:
    """Deterministic request launch offsets (seconds from start).

    Integrates the (piecewise-linear) rate curve: each request fires
    when cumulative expected arrivals cross the next integer. Quadratic
    solve per phase is overkill for a harness; a fine fixed step keeps
    it simple and exact to ~1 ms.
    """
    offsets: List[float] = []
    base = 0.0
    accumulated = 0.0
    emitted = 0
    step = 0.001
    for phase in phases:
        ticks = int(round(phase.duration / step))
        for tick in range(ticks):
            elapsed = (tick + 0.5) * step
            accumulated += phase.rate_at(elapsed) * step
            while emitted < accumulated:
                offsets.append(base + elapsed)
                emitted += 1
        base += phase.duration
    return offsets


@dataclasses.dataclass
class RequestRecord:
    """Outcome of one generated request."""

    offset: float
    status: int
    latency: float
    error: Optional[str] = None


async def run_load(
    host: str,
    port: int,
    phases: Sequence[LoadPhase],
    request_factory: Callable[[int], Dict[str, Any]],
    path: str = "/eval",
    method: str = "POST",
    timeout: float = 30.0,
    headers: Optional[Dict[str, str]] = None,
) -> List[RequestRecord]:
    """Drive the shape against a running server; returns all records.

    ``request_factory(i)`` builds the JSON body for the ``i``-th request
    (lets callers vary payloads deterministically, e.g. cycling through
    a handful of architectures to exercise the result store).
    """
    offsets = arrival_schedule(phases)
    records: List[RequestRecord] = []
    started = time.monotonic()

    async def _one(index: int, offset: float) -> None:
        delay = offset - (time.monotonic() - started)
        if delay > 0:
            await asyncio.sleep(delay)
        body = request_factory(index)
        begin = time.monotonic()
        try:
            status, _resp_headers, _resp = await http_request(
                host, port, method, path, body=body,
                headers=headers, timeout=timeout,
            )
            records.append(
                RequestRecord(offset, status, time.monotonic() - begin)
            )
        except (OSError, asyncio.TimeoutError, ValueError) as exc:
            records.append(
                RequestRecord(
                    offset, 0, time.monotonic() - begin,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )

    tasks = [
        asyncio.ensure_future(_one(index, offset))
        for index, offset in enumerate(offsets)
    ]
    if tasks:
        await asyncio.gather(*tasks)
    return records


def slo_report(
    records: Sequence[RequestRecord],
    phases: Sequence[LoadPhase],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Summarize a load run as a committed-artifact-ready report."""
    duration = sum(phase.duration for phase in phases)
    latencies = sorted(record.latency for record in records)
    statuses: Dict[str, int] = {}
    for record in records:
        key = str(record.status) if record.status else "transport_error"
        statuses[key] = statuses.get(key, 0) + 1
    total = len(records)
    # Sheds (429) are the backpressure design working as intended;
    # errors are 5xx and transport failures.
    shed = statuses.get("429", 0)
    errors = sum(
        count
        for key, count in statuses.items()
        if key == "transport_error" or key.startswith("5")
    )
    succeeded = statuses.get("200", 0) + statuses.get("202", 0)
    report: Dict[str, Any] = {
        "version": SLO_REPORT_VERSION,
        "source": "slo-loadgen",
        "phases": [dataclasses.asdict(phase) for phase in phases],
        "requests": {
            "total": total,
            "succeeded": succeeded,
            "by_status": dict(sorted(statuses.items())),
        },
        "slo": {
            "throughput_rps": (succeeded / duration) if duration > 0 else 0.0,
            "offered_rps": (total / duration) if duration > 0 else 0.0,
            "p50_ms": percentile(latencies, 50.0) * 1000.0,
            "p95_ms": percentile(latencies, 95.0) * 1000.0,
            "p99_ms": percentile(latencies, 99.0) * 1000.0,
            "max_ms": (latencies[-1] * 1000.0) if latencies else 0.0,
            "error_rate": (errors / total) if total else 0.0,
            "shed_rate": (shed / total) if total else 0.0,
        },
    }
    if extra:
        report.update(extra)
    return report


__all__ = [
    "SLO_REPORT_VERSION",
    "LoadPhase",
    "RequestRecord",
    "arrival_schedule",
    "hold",
    "ramp",
    "run_load",
    "slo_report",
    "spike",
]
