"""Minimal asyncio HTTP/1.1 transport for the evaluation service.

Stdlib-only by design (the container policy bans new dependencies): a
small, strict subset of HTTP/1.1 — JSON request/response bodies,
``Content-Length`` framing, keep-alive — which is everything the load
generator, the chaos harness, and curl need. The server is a thin
adapter: all routing, policy, and robustness live in
:class:`~repro.service.app.SOSEvaluationService`; this module only
parses bytes and never blocks the event loop on a request body larger
than the configured cap (oversized bodies get ``413`` and the
connection is closed).

The matching :func:`http_request` client coroutine keeps the open-loop
load generator honest: one connection per request, no pooling, no
hidden retries.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.service.app import SOSEvaluationService

#: Hard caps keeping a malicious/buggy client from ballooning memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024
#: How long the server waits for a (keep-alive) client to send a request.
IDLE_TIMEOUT = 30.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _encode_response(
    status: int, body: Dict[str, Any], headers: Dict[str, str]
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
    ]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: keep-alive")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; None on clean EOF; ServiceError on bad input."""
    try:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=IDLE_TIMEOUT
        )
    except asyncio.TimeoutError:
        return None
    if not request_line:
        return None
    try:
        method, path, _version = request_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServiceError(f"malformed request line: {exc}") from exc

    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise ServiceError("headers exceed limit")
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError as exc:
            raise ServiceError("undecodable header") from exc
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError as exc:
            raise ServiceError(f"bad Content-Length {length!r}") from exc
        if size < 0 or size > MAX_BODY_BYTES:
            raise ServiceError(f"body size {size} outside [0, {MAX_BODY_BYTES}]")
        body = await reader.readexactly(size)
    return method.upper(), path, headers, body


class HttpServer:
    """Serve one :class:`SOSEvaluationService` over a TCP port."""

    def __init__(
        self,
        service: SOSEvaluationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Start the service and listen; resolves the ephemeral port."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def __aenter__(self) -> "HttpServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ServiceError as exc:
                    writer.write(
                        _encode_response(400, {"error": str(exc)}, {})
                    )
                    await writer.drain()
                    break
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if request is None:
                    break
                method, path, headers, raw_body = request
                body: Optional[Dict[str, Any]] = None
                if raw_body:
                    try:
                        parsed = json.loads(raw_body)
                    except json.JSONDecodeError as exc:
                        writer.write(
                            _encode_response(
                                400, {"error": f"invalid JSON body: {exc}"}, {}
                            )
                        )
                        await writer.drain()
                        continue
                    if not isinstance(parsed, dict):
                        writer.write(
                            _encode_response(
                                400,
                                {"error": "JSON body must be an object"},
                                {},
                            )
                        )
                        await writer.drain()
                        continue
                    body = parsed
                status, response_body, extra = await self.service.handle(
                    method, path, body, headers
                )
                writer.write(_encode_response(status, response_body, extra))
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
    """One HTTP request over a fresh connection; returns
    ``(status, headers, parsed-JSON body)``."""

    async def _roundtrip() -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else b""
            )
            lines = [
                f"{method} {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Connection: close",
            ]
            if payload:
                lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(payload)}")
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(
                ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload
            )
            await writer.drain()

            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split(None, 2)
            if len(parts) < 2:
                raise ServiceError(f"bad status line {status_line!r}")
            status = int(parts[1])
            response_headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                response_headers[name.strip().lower()] = value.strip()
            length = int(response_headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b""
            parsed = json.loads(raw) if raw else {}
            return status, response_headers, parsed
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    return await asyncio.wait_for(_roundtrip(), timeout=timeout)
