"""SOS-as-a-service: a fault-tolerant evaluation server.

Exposes the repo's ``P_S`` evaluation, design-space sweeps and
checkpointed Monte-Carlo campaigns over a small stdlib-only HTTP
façade, hardened with the robustness toolkit the paper's availability
story motivates:

* per-request **deadlines** propagated into worker processes with
  cooperative cancellation (and a parent-side hard kill as backstop);
* a bounded, priority-aware **admission queue** that sheds with
  ``429 Retry-After`` instead of queueing unboundedly;
* a **circuit breaker** that degrades to memoized
  (stale-while-revalidate) answers while the worker pool is sick;
* a **supervisor** that respawns crashed workers and resumes
  interrupted campaigns from :class:`~repro.resilience.checkpoint.
  CampaignCheckpoint` files bit-identically;
* ``/healthz`` / ``/readyz`` / ``/metrics`` endpoints surfacing queue
  depth, breaker state and shed counts.

``tools/chaos_service.py`` drives the whole stack under worker kills,
latency injection and flood load, and emits the committed SLO report.
"""

from repro.service.admission import (
    PRIORITIES,
    AdmissionQueue,
    QueuedRequest,
    QueueTimeout,
    Shed,
)
from repro.service.app import ServiceConfig, SOSEvaluationService
from repro.service.deadline import DEFAULT_GRACE, NO_DEADLINE, Deadline
from repro.service.http import HttpServer, http_request
from repro.service.jobs import (
    JOB_KINDS,
    build_architecture,
    build_attack,
    canonical_key,
    execute_job,
    validate_payload,
)
from repro.service.loadgen import (
    SLO_REPORT_VERSION,
    LoadPhase,
    RequestRecord,
    arrival_schedule,
    hold,
    ramp,
    run_load,
    slo_report,
    spike,
)
from repro.service.metrics import LatencyWindow, ServiceMetrics, percentile
from repro.service.pool import JobResult, PoolConfig, WorkerPool

__all__ = [
    "AdmissionQueue",
    "DEFAULT_GRACE",
    "Deadline",
    "HttpServer",
    "JOB_KINDS",
    "JobResult",
    "LatencyWindow",
    "LoadPhase",
    "NO_DEADLINE",
    "PRIORITIES",
    "PoolConfig",
    "QueueTimeout",
    "QueuedRequest",
    "RequestRecord",
    "SLO_REPORT_VERSION",
    "SOSEvaluationService",
    "ServiceConfig",
    "ServiceMetrics",
    "Shed",
    "WorkerPool",
    "arrival_schedule",
    "build_architecture",
    "build_attack",
    "canonical_key",
    "execute_job",
    "hold",
    "http_request",
    "percentile",
    "ramp",
    "run_load",
    "slo_report",
    "spike",
    "validate_payload",
]
