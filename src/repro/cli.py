"""``repro-design``: a command-line design advisor.

Given the attack the operator anticipates, searches the (L, mapping,
distribution) design space and recommends the configuration with the best
worst-case path availability, alongside the latency cost — the workflow
the paper's conclusion prescribes ("if the system is designed carefully
keeping potential attack scenarios in mind, more resilient architectures
can be designed").

Examples::

    repro-design                              # paper-default threat mix
    repro-design --break-in-budget 2000       # break-in-heavy adversary
    repro-design --congestion-budget 8000 --rounds 1 --top 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.design_space import enumerate_designs, evaluate_designs
from repro.core.latency import latency_availability_tradeoff
from repro.utils.tables import format_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-design",
        description="Recommend a generalized-SOS design for an expected attack.",
    )
    parser.add_argument("--break-in-budget", type=float, default=200,
                        help="N_T, break-in attempts (default 200)")
    parser.add_argument("--congestion-budget", type=float, default=2000,
                        help="N_C, congestion floods (default 2000)")
    parser.add_argument("--break-in-success", type=float, default=0.5,
                        help="P_B, per-attempt success probability")
    parser.add_argument("--rounds", type=int, default=3,
                        help="R, break-in rounds (default 3)")
    parser.add_argument("--prior-knowledge", type=float, default=0.2,
                        help="P_E, known fraction of layer 1 (default 0.2)")
    parser.add_argument("--overlay-nodes", type=int, default=10_000,
                        help="N, overlay population")
    parser.add_argument("--sos-nodes", type=int, default=100,
                        help="n, SOS nodes to distribute")
    parser.add_argument("--filters", type=int, default=10)
    parser.add_argument("--max-layers", type=int, default=8)
    parser.add_argument("--include-congestion-scenario", action="store_true",
                        help="also guard against a pure-congestion burst of "
                             "the same budget (worst-case aggregate)")
    parser.add_argument("--top", type=int, default=10,
                        help="how many designs to print")
    parser.add_argument("--sensitivity", action="store_true",
                        help="print a sensitivity (tornado) table for the "
                             "recommended design at the anticipated attack")
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.top < 1:
        print("--top must be >= 1", file=sys.stderr)
        return 2

    scenarios = {
        "anticipated": SuccessiveAttack(
            break_in_budget=args.break_in_budget,
            congestion_budget=args.congestion_budget,
            break_in_success=args.break_in_success,
            rounds=args.rounds,
            prior_knowledge=args.prior_knowledge,
        )
    }
    if args.include_congestion_scenario:
        scenarios["pure congestion"] = OneBurstAttack(
            break_in_budget=0, congestion_budget=args.congestion_budget
        )

    designs = enumerate_designs(
        layers=range(1, args.max_layers + 1),
        distributions=("even", "increasing", "decreasing"),
        total_overlay_nodes=args.overlay_nodes,
        sos_nodes=args.sos_nodes,
        filters=args.filters,
    )
    scores = evaluate_designs(designs, scenarios, aggregate="min")

    best = scores[0]
    latency = latency_availability_tradeoff(
        [best.architecture], scenarios["anticipated"]
    )[0]
    print(f"Searched {len(designs)} designs against {len(scenarios)} scenario(s).\n")
    print(f"Recommended: {best.label}")
    print(f"  worst-case P_S     : {best.aggregate:.4f}")
    print(f"  expected latency   : {latency.expected_latency:.2f} hop-units "
          f"(baseline {latency.baseline_latency:.2f})")
    print(f"  configuration      : {best.architecture.describe()}\n")

    rows = [[s.label, s.aggregate] for s in scores[: args.top]]
    print(format_table(["design", "worst-case P_S"], rows,
                       title=f"Top {min(args.top, len(scores))} designs\n"))

    if args.sensitivity:
        from repro.core.sensitivity import sensitivity_profile

        profile = sensitivity_profile(
            best.architecture, scenarios["anticipated"]
        )
        print(format_table(
            ["parameter", "base", "perturbed", "delta P_S"],
            [
                [s.parameter, s.base_value, s.perturbed_value, s.delta]
                for s in profile
            ],
            title="Sensitivity of the recommended design "
                  "(one perturbation each)\n",
        ))
    return 0


def main() -> None:  # pragma: no cover - console entry point
    sys.exit(run())


if __name__ == "__main__":  # pragma: no cover
    main()
