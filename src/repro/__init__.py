"""repro — Generalized Secure Overlay Services under intelligent DDoS attacks.

A full reproduction of *"Analyzing the Secure Overlay Services Architecture
under Intelligent DDoS Attacks"* (Xuan, Chellappan, Wang & Wang, ICDCS 2004),
plus the substrates the paper builds on:

* :mod:`repro.core` — the analytical models (one-burst §3.1, successive §3.2)
  and the generalized architecture's design features (``L``, ``n_i``, ``m_i``);
* :mod:`repro.overlay` — an overlay-network substrate including a full Chord
  DHT implementation (the routing layer SOS uses);
* :mod:`repro.sos` — an executable SOS protocol (SOAP / beacons / secret
  servlets / filters) over the overlay;
* :mod:`repro.attacks` — an executable intelligent attacker implementing
  Algorithm 1 against concrete deployments;
* :mod:`repro.simulation` — seeded Monte Carlo and discrete-event simulation
  validating the analytical model;
* :mod:`repro.baselines` — the original SOS analysis under random attacks;
* :mod:`repro.experiments` — the harness regenerating every figure in the
  paper's evaluation.

Quickstart::

    from repro import SOSArchitecture, SuccessiveAttack, evaluate
    design = SOSArchitecture(layers=4, mapping="one-to-two")
    print(evaluate(design, SuccessiveAttack()).p_s)
"""

from repro.core import (
    NodeDistribution,
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    SystemPerformance,
    evaluate,
    original_sos_architecture,
    path_availability_probability,
)
from repro.contracts import contracts_enabled
from repro.planner import DefensePlan, plan_defense, required_detection
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    ContractViolationError,
    ExperimentError,
    ProtocolError,
    ReproError,
    RoutingError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "NodeDistribution",
    "OneBurstAttack",
    "SOSArchitecture",
    "SuccessiveAttack",
    "SystemPerformance",
    "evaluate",
    "original_sos_architecture",
    "path_availability_probability",
    "DefensePlan",
    "plan_defense",
    "required_detection",
    "contracts_enabled",
    "AnalysisError",
    "ConfigurationError",
    "ContractViolationError",
    "ExperimentError",
    "ProtocolError",
    "ReproError",
    "RoutingError",
    "SimulationError",
    "__version__",
]
