"""Local sensitivity analysis of ``P_S`` — the paper's question, as a tool.

Every evaluation section of the paper asks "how sensitive is ``P_S`` to
X?" for one X at a time. :func:`sensitivity_profile` answers it for all of
them at once at any operating point: each design and attack parameter is
perturbed (multiplicatively for continuous parameters, by one unit for
integers) and the resulting ``P_S`` deltas are returned sorted by impact —
a tornado diagram in table form, telling an operator which knob matters
most *where the system currently stands*.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.model import evaluate
from repro.errors import ConfigurationError

Attack = SuccessiveAttack


@dataclasses.dataclass(frozen=True)
class Sensitivity:
    """Effect of one parameter perturbation on ``P_S``."""

    parameter: str
    base_value: float
    perturbed_value: float
    base_p_s: float
    perturbed_p_s: float

    @property
    def delta(self) -> float:
        """``P_S(perturbed) - P_S(base)``."""
        return self.perturbed_p_s - self.base_p_s

    @property
    def magnitude(self) -> float:
        return abs(self.delta)


def _perturb_architecture(
    architecture: SOSArchitecture, **changes: Any
) -> Optional[SOSArchitecture]:
    try:
        return SOSArchitecture(
            layers=changes.get("layers", architecture.layers),
            mapping=architecture.mapping,
            total_overlay_nodes=changes.get(
                "total_overlay_nodes", architecture.total_overlay_nodes
            ),
            sos_nodes=changes.get("sos_nodes", architecture.sos_nodes),
            distribution=architecture.distribution,
            filters=changes.get("filters", architecture.filters),
            filter_mapping=architecture.filter_mapping,
            layer_mappings=architecture.layer_mappings,
        )
    except ConfigurationError:
        return None


def sensitivity_profile(
    architecture: SOSArchitecture,
    attack: Attack,
    rel_step: float = 0.25,
) -> List[Sensitivity]:
    """Perturb every parameter once; return effects sorted by magnitude.

    Continuous parameters move by ``+rel_step`` relatively; integer design
    features move by one unit. Perturbations that leave the feasible
    region (e.g. ``P_E`` above 1) are skipped.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> profile = sensitivity_profile(
    ...     SOSArchitecture(layers=4, mapping="one-to-two"),
    ...     SuccessiveAttack())
    >>> profile[0].magnitude >= profile[-1].magnitude
    True
    """
    if not isinstance(attack, SuccessiveAttack):
        raise ConfigurationError(
            "sensitivity_profile expects a SuccessiveAttack (it spans both "
            "attack phases); project one-burst attacks via SuccessiveAttack"
        )
    if not 0.0 < rel_step <= 1.0:
        raise ConfigurationError("rel_step must be in (0, 1]")
    base_p_s = evaluate(architecture, attack).p_s
    results: List[Sensitivity] = []

    def record(
        parameter: str, base: float, perturbed: float, p_s: Optional[float]
    ) -> None:
        if p_s is None:
            return
        results.append(
            Sensitivity(
                parameter=parameter,
                base_value=float(base),
                perturbed_value=float(perturbed),
                base_p_s=base_p_s,
                perturbed_p_s=p_s,
            )
        )

    def try_attack(**changes: Any) -> Optional[float]:
        try:
            perturbed = dataclasses.replace(attack, **changes)
            return evaluate(architecture, perturbed).p_s
        except ConfigurationError:
            return None

    # --- attack-side parameters ---------------------------------------
    new_nt = attack.n_t * (1 + rel_step) if attack.n_t else 100.0 * rel_step
    record("N_T (break-in budget)", attack.n_t, new_nt,
           try_attack(break_in_budget=new_nt))
    new_nc = attack.n_c * (1 + rel_step) if attack.n_c else 100.0 * rel_step
    record("N_C (congestion budget)", attack.n_c, new_nc,
           try_attack(congestion_budget=new_nc))
    new_pb = min(1.0, attack.p_b * (1 + rel_step)) if attack.p_b else rel_step
    if new_pb != attack.p_b:
        record("P_B (break-in success)", attack.p_b, new_pb,
               try_attack(break_in_success=new_pb))
    new_pe = min(1.0, attack.p_e * (1 + rel_step)) if attack.p_e else rel_step
    if new_pe != attack.p_e:
        record("P_E (prior knowledge)", attack.p_e, new_pe,
               try_attack(prior_knowledge=new_pe))
    record("R (rounds)", attack.rounds, attack.rounds + 1,
           try_attack(rounds=attack.rounds + 1))

    # --- design-side parameters ---------------------------------------
    def try_design(**changes: Any) -> Optional[float]:
        perturbed = _perturb_architecture(architecture, **changes)
        if perturbed is None:
            return None
        try:
            return evaluate(perturbed, attack).p_s
        except ConfigurationError:
            return None

    record("L (layers)", architecture.layers, architecture.layers + 1,
           try_design(layers=architecture.layers + 1))
    new_n = int(round(architecture.sos_nodes * (1 + rel_step)))
    record("n (SOS nodes)", architecture.sos_nodes, new_n,
           try_design(sos_nodes=new_n))
    new_total = int(round(architecture.total_overlay_nodes * (1 + rel_step)))
    record("N (overlay population)", architecture.total_overlay_nodes,
           new_total, try_design(total_overlay_nodes=new_total))
    record("filters", architecture.filters, architecture.filters + 1,
           try_design(filters=architecture.filters + 1))

    results.sort(key=lambda s: s.magnitude, reverse=True)
    return results
