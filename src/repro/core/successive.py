"""Successive intelligent-attack analysis (Section 3.2, Eqs. 10-27).

The attacker knows a fraction ``P_E`` of the first-layer nodes up front and
spreads its break-in budget ``N_T`` over ``R`` rounds (Algorithm 1). Each
round it attacks every node disclosed in the previous round plus, if the
round quota ``alpha = N_T / R`` is not exhausted, randomly chosen overlay
nodes. Successful break-ins disclose next-layer neighbor tables, feeding the
next round. When the break-in budget runs out, the congestion phase floods
every disclosed-but-not-broken-in node (and random nodes with any surplus).

Set bookkeeping per layer ``i`` and round ``j`` (paper's Fig. 5):

====================  =======================================================
``h_{i,j}^D``         disclosed nodes attacked this round (Eq. 10/23)
``h_{i,j}^A``         randomly chosen nodes attacked this round (Eq. 11)
``b_{i,j}^D/A``       successfully broken-in among them (Eqs. 13-14)
``u_{i,j}^D/A``       unsuccessfully attacked among them (Eqs. 15-16)
``d_{i,j}^N``         newly disclosed, never attacked (Eqs. 18-19, 24)
``d_{i,j}^A``         disclosed and randomly-attacked-unsuccessfully (Eq. 20)
``f_{i,j}``           disclosed but left unattacked at budget exhaustion
                      (Eq. 21; only at the terminal round)
====================  =======================================================

Algorithm 1 distinguishes four per-round resource cases; all four are
implemented and labeled so tests can pin each branch:

* ``GENERAL``          ``X_j < alpha < beta``  — quota-limited round,
* ``FINAL_BUDGET``     ``X_j < beta <= alpha`` — last round, budget-limited,
* ``DISCLOSED_HEAVY``  ``alpha <= X_j < beta`` — disclosure exceeds quota,
* ``EXHAUSTED``        ``X_j >= beta``         — budget exhausted; leftover
  disclosed nodes become ``f_{i,j}`` and are congested instead.

With ``R = 1`` and ``P_E = 0`` the model degenerates exactly to the
one-burst model of §3.1 (verified by tests).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

from repro.contracts import ensures, requires_non_negative
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.layer_state import LayerState, SystemPerformance, path_availability
from repro.core.probability import clamp, no_fresh_disclosure_probability
from repro.errors import ConfigurationError


class RoundCase(str, enum.Enum):
    """Which branch of Algorithm 1 a round executed."""

    GENERAL = "general"  # X_j < alpha < beta
    FINAL_BUDGET = "final_budget"  # X_j < beta <= alpha
    DISCLOSED_HEAVY = "disclosed_heavy"  # alpha <= X_j < beta
    EXHAUSTED = "exhausted"  # X_j >= beta


@dataclasses.dataclass(frozen=True)
class RoundState:
    """Average-case outcome of one break-in round.

    Arrays are indexed ``0 .. L`` for layers ``1 .. L+1`` (the filter layer
    holds zeros everywhere except ``disclosed_unattacked``).
    """

    round_index: int
    case: RoundCase
    known_at_start: float  # X_j
    budget_before: float  # beta at round start
    attacked_disclosed: Tuple[float, ...]  # h_{i,j}^D
    attacked_random: Tuple[float, ...]  # h_{i,j}^A
    broken_disclosed: Tuple[float, ...]  # b_{i,j}^D
    broken_random: Tuple[float, ...]  # b_{i,j}^A
    survived_disclosed: Tuple[float, ...]  # u_{i,j}^D
    survived_random: Tuple[float, ...]  # u_{i,j}^A
    disclosed_unattacked: Tuple[float, ...]  # d_{i,j}^N
    disclosed_survived_random: Tuple[float, ...]  # d_{i,j}^A
    forfeited: Tuple[float, ...]  # f_{i,j}

    @property
    def attacked(self) -> Tuple[float, ...]:
        """``h_{i,j} = h_{i,j}^D + h_{i,j}^A`` (Eq. 12)."""
        return tuple(
            d + a for d, a in zip(self.attacked_disclosed, self.attacked_random)
        )

    @property
    def broken_in(self) -> Tuple[float, ...]:
        """``b_{i,j} = b_{i,j}^D + b_{i,j}^A`` (Eq. 17)."""
        return tuple(d + a for d, a in zip(self.broken_disclosed, self.broken_random))

    @property
    def newly_known(self) -> float:
        """``X_{j+1} = sum_{i<=L} d_{i,j}^N`` — feeds the next round."""
        return sum(self.disclosed_unattacked[:-1])


@dataclasses.dataclass(frozen=True)
class SuccessiveBreakdown:
    """Every intermediate quantity of the successive-attack derivation."""

    rounds: Tuple[RoundState, ...]
    congested: Tuple[float, ...]  # c_i
    broken_in: Tuple[float, ...]  # b_i = sum_k b_{i,k}
    disclosed_total: float  # N_D
    broken_in_total: float  # N_B

    @property
    def terminal_round(self) -> int:
        """``J`` — the round at which the break-in phase ended."""
        return len(self.rounds)


class _Accumulator:
    """Mutable cross-round state while executing Algorithm 1."""

    def __init__(self, num_layers: int) -> None:
        self.cum_attacked = [0.0] * num_layers  # sum_k h_{i,k}
        self.cum_forfeited = [0.0] * num_layers  # sum_k f_{i,k}
        self.cum_broken = [0.0] * num_layers  # sum_k b_{i,k}
        self.cum_survived_disclosed = [0.0] * num_layers  # sum_k u_{i,k}^D
        self.cum_disclosed_survived_random = [0.0] * num_layers  # sum_k d_{i,k}^A
        self.cum_filter_disclosed = 0.0  # sum_k d_{L+1,k}^N


@requires_non_negative("known", "quota", "budget")
def _classify(known: float, quota: float, budget: float) -> RoundCase:
    """Map (X_j, alpha, beta) onto Algorithm 1's four cases."""
    if known >= budget:
        return RoundCase.EXHAUSTED
    if budget <= quota:
        return RoundCase.FINAL_BUDGET
    if known < quota:
        return RoundCase.GENERAL
    return RoundCase.DISCLOSED_HEAVY


def _random_attempts(
    architecture: SOSArchitecture,
    accumulator: _Accumulator,
    disclosed_prev: List[float],
    known: float,
    spend: float,
) -> List[float]:
    """Distribute ``spend`` random break-in attempts over the layers (Eq. 11).

    The pool is the whole overlay minus currently known disclosed nodes and
    every node attacked in earlier rounds; layer ``i`` receives a share
    proportional to its remaining never-attacked nodes.
    """
    sizes = architecture.layer_sizes_tuple
    total_attacked = sum(accumulator.cum_attacked[: len(sizes)])
    pool = float(architecture.total_overlay_nodes) - known - total_attacked
    attempts = [0.0] * (len(sizes) + 1)
    if spend <= 0.0 or pool <= 0.0:
        return attempts
    for i, size in enumerate(sizes):
        untouched = max(
            0.0, size - disclosed_prev[i] - accumulator.cum_attacked[i]
        )
        attempts[i] = clamp(spend * untouched / pool, 0.0, untouched)
    return attempts


def _disclosures(
    architecture: SOSArchitecture,
    accumulator: _Accumulator,
    round_broken: List[float],
    survived_random: List[float],
) -> Tuple[List[float], List[float]]:
    """Compute ``d_{i,j}^N`` (Eqs. 18-19, 24) and ``d_{i,j}^A`` (Eq. 20).

    Must be called *after* the accumulator has absorbed this round's
    ``h_{i,j}`` and ``f_{i,j}`` (the sums in Eqs. 18/24 run to ``k = j``).
    """
    sizes = architecture.layer_sizes_with_filters
    degrees = architecture.mapping_degrees
    d_n = [0.0] * len(sizes)
    d_a = [0.0] * len(sizes)
    for i in range(1, len(sizes)):
        n_i = sizes[i]
        m_i = degrees[i]
        survive = no_fresh_disclosure_probability(m_i, n_i, round_broken[i - 1])
        touched = accumulator.cum_attacked[i] + accumulator.cum_forfeited[i]
        untouched_fraction = clamp(1.0 - touched / n_i, 0.0, 1.0)
        z = n_i * (1.0 - survive * untouched_fraction)
        d_n[i] = clamp(z - touched, 0.0, n_i)
        d_a[i] = clamp(survived_random[i] * (1.0 - survive), 0.0, n_i)
    return d_n, d_a


def _execute_round(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    accumulator: _Accumulator,
    round_index: int,
    disclosed_prev: List[float],
    budget: float,
) -> Tuple[RoundState, float]:
    """Run one round of Algorithm 1; returns the round state and new budget."""
    num_slots = architecture.layers + 1
    sos = architecture.layers
    known = sum(disclosed_prev[:sos])
    case = _classify(known, attack.alpha, budget)

    forfeited = [0.0] * num_slots
    if case is RoundCase.EXHAUSTED:
        # Break into only a `budget`-sized subset of the disclosed nodes,
        # proportionally per layer; the rest is forfeited to the congestion
        # phase (Eq. 21/23).
        ratio = budget / known if known > 0 else 0.0
        attacked_disclosed = [disclosed_prev[i] * ratio for i in range(sos)] + [0.0]
        forfeited = [
            disclosed_prev[i] - attacked_disclosed[i] for i in range(sos)
        ] + [0.0]
        attacked_random = [0.0] * num_slots
        spent = min(budget, known)
    else:
        attacked_disclosed = list(disclosed_prev[:sos]) + [0.0]
        if case is RoundCase.DISCLOSED_HEAVY:
            attacked_random = [0.0] * num_slots
            spent = known
        else:
            spend_target = attack.alpha if case is RoundCase.GENERAL else budget
            attacked_random = _random_attempts(
                architecture, accumulator, disclosed_prev, known, spend_target - known
            )
            spent = spend_target

    p_b = attack.p_b
    broken_disclosed = [p_b * h for h in attacked_disclosed]
    broken_random = [p_b * h for h in attacked_random]
    survived_disclosed = [(1.0 - p_b) * h for h in attacked_disclosed]
    survived_random = [(1.0 - p_b) * h for h in attacked_random]
    round_broken = [d + a for d, a in zip(broken_disclosed, broken_random)]

    for i in range(num_slots):
        accumulator.cum_attacked[i] += attacked_disclosed[i] + attacked_random[i]
        accumulator.cum_forfeited[i] += forfeited[i]
        accumulator.cum_broken[i] += round_broken[i]
        accumulator.cum_survived_disclosed[i] += survived_disclosed[i]

    d_n, d_a = _disclosures(architecture, accumulator, round_broken, survived_random)
    for i in range(num_slots):
        accumulator.cum_disclosed_survived_random[i] += d_a[i]
    accumulator.cum_filter_disclosed += d_n[-1]

    state = RoundState(
        round_index=round_index,
        case=case,
        known_at_start=known,
        budget_before=budget,
        attacked_disclosed=tuple(attacked_disclosed),
        attacked_random=tuple(attacked_random),
        broken_disclosed=tuple(broken_disclosed),
        broken_random=tuple(broken_random),
        survived_disclosed=tuple(survived_disclosed),
        survived_random=tuple(survived_random),
        disclosed_unattacked=tuple(d_n),
        disclosed_survived_random=tuple(d_a),
        forfeited=tuple(forfeited),
    )
    return state, max(0.0, budget - spent)


def _congestion_phase(
    architecture: SOSArchitecture,
    attack: SuccessiveAttack,
    accumulator: _Accumulator,
    final_round: RoundState,
) -> Tuple[List[float], float, float]:
    """Allocate the congestion budget (Eqs. 25-27); returns ``(c_i, N_D, N_B)``."""
    sizes = architecture.layer_sizes_with_filters
    sos = architecture.layers
    last = len(sizes) - 1

    # Per-layer disclosed-but-not-broken-in pools (the terms of Eq. 25).
    disclosed = [0.0] * len(sizes)
    for i in range(sos):
        disclosed[i] = (
            accumulator.cum_survived_disclosed[i]
            + final_round.disclosed_unattacked[i]
            + accumulator.cum_disclosed_survived_random[i]
            + final_round.forfeited[i]
        )
    disclosed[last] = accumulator.cum_filter_disclosed
    n_d = sum(disclosed)
    n_b = sum(accumulator.cum_broken[:sos])

    congested = [0.0] * len(sizes)
    if attack.n_c >= n_d:
        surplus = attack.n_c - n_d
        pool = float(architecture.total_overlay_nodes) - n_b - (n_d - disclosed[last])
        fraction = 0.0 if pool <= 0 else min(1.0, surplus / pool)
        for i in range(sos):
            remaining = max(
                0.0, sizes[i] - accumulator.cum_broken[i] - disclosed[i]
            )
            congested[i] = disclosed[i] + fraction * remaining
        congested[last] = disclosed[last]
    else:
        share = attack.n_c / n_d if n_d > 0 else 0.0
        congested = [share * d for d in disclosed]

    congested = [clamp(c, 0.0, sizes[i]) for i, c in enumerate(congested)]
    return congested, n_d, n_b


def analyze_successive_breakdown(
    architecture: SOSArchitecture, attack: SuccessiveAttack
) -> SuccessiveBreakdown:
    """Execute Algorithm 1 in the average case, returning all round states."""
    if attack.n_t > architecture.total_overlay_nodes:
        raise ConfigurationError(
            f"break_in_budget ({attack.n_t}) exceeds overlay population "
            f"({architecture.total_overlay_nodes})"
        )
    num_slots = architecture.layers + 1
    accumulator = _Accumulator(num_slots)

    # Prior knowledge acts as a round-0 disclosure of X_1 = n_1 * P_E nodes,
    # all at the first layer (paper, end of §3.2.2).
    disclosed_prev = [0.0] * num_slots
    disclosed_prev[0] = architecture.layer_sizes_tuple[0] * attack.p_e

    rounds: List[RoundState] = []
    budget = attack.n_t
    for round_index in range(1, attack.rounds + 1):
        state, budget = _execute_round(
            architecture, attack, accumulator, round_index, disclosed_prev, budget
        )
        rounds.append(state)
        disclosed_prev = list(state.disclosed_unattacked[:num_slots - 1]) + [0.0]
        # Layer-1 nodes are never disclosed by break-ins in later rounds.
        disclosed_prev[0] = 0.0
        if state.case in (RoundCase.FINAL_BUDGET, RoundCase.EXHAUSTED):
            break
        if budget <= 0.0:
            break

    final_round = rounds[-1]
    congested, n_d, n_b = _congestion_phase(
        architecture, attack, accumulator, final_round
    )
    return SuccessiveBreakdown(
        rounds=tuple(rounds),
        congested=tuple(congested),
        broken_in=tuple(accumulator.cum_broken),
        disclosed_total=n_d,
        broken_in_total=n_b,
    )


@ensures(lambda result: 0.0 <= result.p_s <= 1.0, "P_S must lie in [0, 1]")
def analyze_successive(
    architecture: SOSArchitecture, attack: SuccessiveAttack
) -> SystemPerformance:
    """Evaluate ``P_S`` for ``architecture`` under a successive attack.

    Examples
    --------
    >>> from repro.core.architecture import SOSArchitecture
    >>> from repro.core.attack_models import SuccessiveAttack
    >>> arch = SOSArchitecture(layers=4, mapping="one-to-two")
    >>> result = analyze_successive(arch, SuccessiveAttack())
    >>> 0.0 <= result.p_s <= 1.0
    True
    """
    breakdown = analyze_successive_breakdown(architecture, attack)
    sizes = architecture.layer_sizes_with_filters
    degrees = architecture.mapping_degrees
    final_round = breakdown.rounds[-1]
    layers = tuple(
        LayerState(
            index=i + 1,
            size=sizes[i],
            mapping_degree=degrees[i],
            broken_in=breakdown.broken_in[i],
            congested=breakdown.congested[i],
            disclosed_unattacked=final_round.disclosed_unattacked[i],
            disclosed_survived=final_round.disclosed_survived_random[i],
        )
        for i in range(len(sizes))
    )
    return SystemPerformance(
        p_s=path_availability(layers),
        layers=layers,
        broken_in_total=breakdown.broken_in_total,
        disclosed_total=breakdown.disclosed_total,
    )
