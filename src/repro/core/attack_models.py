"""Intelligent DDoS attack specifications (Section 3 of the paper).

Both attack models share a two-phase structure:

1. **break-in phase** — the attacker attempts to compromise ``break_in_budget``
   (``N_T``) nodes; each attempt succeeds independently with probability
   ``break_in_success`` (``P_B``). Breaking into a node *discloses* its
   neighbor table (the identities of its ``m_{i+1}`` next-layer neighbors).
2. **congestion phase** — the attacker congests ``congestion_budget``
   (``N_C``) nodes, preferring disclosed-but-not-broken-in nodes and
   spending any surplus on random overlay nodes.

:class:`OneBurstAttack` spends all break-in resources in a single round with
no prior knowledge (§3.1). :class:`SuccessiveAttack` adds ``rounds`` (``R``)
successive break-in rounds and ``prior_knowledge`` (``P_E``), the fraction
of first-layer nodes known to the attacker before the attack (§3.2); with
``rounds = 1`` and ``prior_knowledge = 0`` it degenerates to the one-burst
model, which the test suite verifies.
"""

from __future__ import annotations

import dataclasses

from repro.utils.validation import (
    check_non_negative,
    check_positive_int,
    check_probability,
)

#: Default attack parameters used by the paper's successive-attack plots.
DEFAULT_BREAK_IN_BUDGET = 200
DEFAULT_CONGESTION_BUDGET = 2_000
DEFAULT_BREAK_IN_SUCCESS = 0.5
DEFAULT_ROUNDS = 3
DEFAULT_PRIOR_KNOWLEDGE = 0.2


@dataclasses.dataclass(frozen=True)
class AttackModel:
    """Common resources for both attack models.

    Attributes
    ----------
    break_in_budget:
        ``N_T`` — number of break-in attempts available.
    congestion_budget:
        ``N_C`` — number of nodes the attacker can congest.
    break_in_success:
        ``P_B`` — per-attempt break-in success probability.
    """

    break_in_budget: float = DEFAULT_BREAK_IN_BUDGET
    congestion_budget: float = DEFAULT_CONGESTION_BUDGET
    break_in_success: float = DEFAULT_BREAK_IN_SUCCESS

    def __post_init__(self) -> None:
        check_non_negative("break_in_budget", self.break_in_budget)
        check_non_negative("congestion_budget", self.congestion_budget)
        check_probability("break_in_success", self.break_in_success)

    @property
    def n_t(self) -> float:
        """Alias for ``break_in_budget`` using the paper's symbol ``N_T``."""
        return float(self.break_in_budget)

    @property
    def n_c(self) -> float:
        """Alias for ``congestion_budget`` using the paper's symbol ``N_C``."""
        return float(self.congestion_budget)

    @property
    def p_b(self) -> float:
        """Alias for ``break_in_success`` using the paper's symbol ``P_B``."""
        return float(self.break_in_success)


@dataclasses.dataclass(frozen=True)
class OneBurstAttack(AttackModel):
    """One-burst attack (§3.1): a single break-in round, no prior knowledge.

    Examples
    --------
    >>> attack = OneBurstAttack(break_in_budget=200, congestion_budget=2000)
    >>> attack.n_t, attack.n_c, attack.p_b
    (200.0, 2000.0, 0.5)
    """


@dataclasses.dataclass(frozen=True)
class SuccessiveAttack(AttackModel):
    """Successive attack (§3.2): ``R`` break-in rounds plus prior knowledge.

    Attributes
    ----------
    rounds:
        ``R`` — number of successive break-in rounds; each round has a
        minimum quota ``alpha = N_T / R``.
    prior_knowledge:
        ``P_E`` — fraction of first-layer nodes the attacker already knows.

    Examples
    --------
    >>> attack = SuccessiveAttack(rounds=3, prior_knowledge=0.2)
    >>> attack.alpha  # per-round quota N_T / R
    66.66666666666667
    """

    rounds: int = DEFAULT_ROUNDS
    prior_knowledge: float = DEFAULT_PRIOR_KNOWLEDGE

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive_int("rounds", self.rounds)
        check_probability("prior_knowledge", self.prior_knowledge)

    @property
    def r(self) -> int:
        """Alias for ``rounds`` using the paper's symbol ``R``."""
        return self.rounds

    @property
    def p_e(self) -> float:
        """Alias for ``prior_knowledge`` using the paper's symbol ``P_E``."""
        return float(self.prior_knowledge)

    @property
    def alpha(self) -> float:
        """Per-round break-in quota ``alpha = N_T / R`` (Algorithm 1)."""
        return self.n_t / self.rounds

    def as_one_burst(self) -> OneBurstAttack:
        """Project onto the one-burst model (drops ``R`` and ``P_E``)."""
        return OneBurstAttack(
            break_in_budget=self.break_in_budget,
            congestion_budget=self.congestion_budget,
            break_in_success=self.break_in_success,
        )
