"""Probability kernel for the average-case SOS analysis.

The paper (Section 3.1) defines ``P(x, y, z)`` as the probability that a set
of ``y`` nodes selected at random from ``x > y`` nodes contains a specific
subset of ``z`` nodes::

    P(x, y, z) = C(y, z) / C(x, z)   if y >= z, else 0

Its role in the model: a node in Layer ``i-1`` has ``m_i`` random neighbors
in Layer ``i``; if ``s_i`` of the ``n_i`` nodes in Layer ``i`` are *bad*,
``P(n_i, s_i, m_i)`` is the probability that **all** of the node's next-hop
neighbors are bad, and the per-hop success probability is
``P_i = 1 - P(n_i, s_i, m_i)`` (Eq. 1).

Average-case analysis produces *fractional* bad-set sizes ``s_i``, so this
module provides the natural continuous extension

    P(x, y, z) = prod_{k=0}^{z-1} (y - k) / (x - k)

which equals ``C(y,z)/C(x,z)`` exactly at integer ``y`` and interpolates
monotonically in between. Each factor is clamped at zero so the product
vanishes as soon as ``y < z`` (fewer bad nodes than neighbors means at least
one neighbor is guaranteed good), matching the paper's case split.
"""

from __future__ import annotations

import functools
import math
from typing import Union

from repro.contracts import returns_probability
from repro.errors import AnalysisError

Number = Union[int, float]

#: Bound on the memo cache below. Successive-attack analysis re-evaluates
#: ``P(x, y, z)`` with repeating arguments across rounds and grid points;
#: 32k distinct triples covers any realistic sweep while capping memory.
_CACHE_SIZE = 1 << 15


@functools.lru_cache(maxsize=_CACHE_SIZE)
def _all_bad_product(x: float, y: float, z: int) -> float:
    """Memoized core product; arguments arrive validated and clamped."""
    probability = 1.0
    for k in range(z):
        numerator = y - k
        if numerator <= 0.0:
            return 0.0
        probability *= numerator / (x - k)
    # Floating products can drift a hair above 1.0 when y ~= x.
    return min(1.0, max(0.0, probability))


def all_bad_cache_info() -> "functools._CacheInfo":
    """Hit/miss statistics of the memoized kernel (for benchmarks/tests)."""
    return _all_bad_product.cache_info()


def all_bad_cache_clear() -> None:
    """Reset the memoized kernel (isolates benchmark/test measurements)."""
    _all_bad_product.cache_clear()


@returns_probability
def all_bad_probability(x: Number, y: Number, z: int) -> float:
    """Continuous extension of ``P(x, y, z) = C(y, z) / C(x, z)``.

    Parameters
    ----------
    x:
        Population size (``n_i``, number of nodes in the layer). Must be a
        positive value with ``x >= z``.
    y:
        Bad-subset size (``s_i``); may be fractional (average-case) and is
        clamped into ``[0, x]``.
    z:
        Sample size (``m_i``, the mapping degree). Must be a non-negative
        integer; ``z = 0`` returns 1.0 (an empty neighbor set is vacuously
        all-bad — callers never use ``z = 0`` for live layers).

    Returns
    -------
    float
        The probability, guaranteed to lie in ``[0, 1]``.

    Raises
    ------
    AnalysisError
        If ``x <= 0``, ``z < 0``, ``z`` is not an integer, or ``z > x``.
    """
    if isinstance(z, bool) or not isinstance(z, int):
        raise AnalysisError(f"sample size z must be an integer, got {z!r}")
    if z < 0:
        raise AnalysisError(f"sample size z must be >= 0, got {z}")
    x = float(x)
    if not math.isfinite(x) or x <= 0:
        raise AnalysisError(f"population size x must be finite and > 0, got {x}")
    if z > x:
        raise AnalysisError(f"sample size z={z} exceeds population x={x}")

    y = min(max(float(y), 0.0), x)
    if z == 0:
        return 1.0
    return _all_bad_product(x, y, z)


@returns_probability
def hop_success_probability(n: Number, s: Number, m: int) -> float:
    """Per-hop success probability ``P_i = 1 - P(n_i, s_i, m_i)`` (Eq. 1)."""
    return 1.0 - all_bad_probability(n, s, m)


@returns_probability
def exact_all_bad_probability(x: int, y: int, z: int) -> float:
    """Exact integer-argument ``C(y, z) / C(x, z)`` for cross-validation.

    Used by tests to confirm the continuous extension agrees with the exact
    hypergeometric expression on integer inputs.
    """
    for name, value in (("x", x), ("y", y), ("z", z)):
        if isinstance(value, bool) or not isinstance(value, int):
            raise AnalysisError(f"{name} must be an integer, got {value!r}")
    if x <= 0 or z < 0 or z > x:
        raise AnalysisError(f"invalid arguments x={x}, y={y}, z={z}")
    y = min(max(y, 0), x)
    if y < z:
        return 0.0
    return math.comb(y, z) / math.comb(x, z)


@returns_probability
def no_fresh_disclosure_probability(m: Number, n: Number, breakins: Number) -> float:
    """Probability a given node is *not* disclosed by any of ``breakins``
    broken-in previous-layer nodes, ``(1 - m/n)^b`` (Eq. 3).

    ``breakins`` may be fractional (average-case). The base is clamped into
    ``[0, 1]`` so one-to-all mappings (``m = n``) yield exactly 0 whenever
    at least one break-in occurred.
    """
    n = float(n)
    m = float(m)
    breakins = max(0.0, float(breakins))
    if n <= 0:
        raise AnalysisError(f"layer size n must be > 0, got {n}")
    if m < 0 or m > n:
        raise AnalysisError(f"mapping degree m={m} out of range [0, {n}]")
    base = min(1.0, max(0.0, 1.0 - m / n))
    # Sentinel compares: both values were clamped to exactly 0.0 above, so
    # equality is exact by construction, not a drifting-float comparison.
    if breakins == 0.0:  # repro-lint: disable=float-equality -- clamped via max(0.0, .)
        return 1.0
    if base == 0.0:  # repro-lint: disable=float-equality -- clamped via max(0.0, .)
        return 0.0
    return base**breakins


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]`` (used for average-case set sizes)."""
    if hi < lo:
        raise AnalysisError(f"empty clamp interval [{lo}, {hi}]")
    return min(hi, max(lo, value))
