"""Mapping physical attacker resources onto the paper's abstract budgets.

The analytical model takes ``N_C`` (nodes congestable) and ``N_T``
(break-in attempts) as given. Real adversaries have a *bandwidth* (packets
per second across a botnet) and a *campaign* (exploit attempts per unit
time over a window). This module converts between the two, using the same
token-bucket congestion semantics as the packet-level simulator, so design
studies can be phrased in operational units:

* a node with processing capacity ``c`` pps and legitimate load ``lam``
  pps is *congested* (drop rate >= ``theta``) once total arrivals reach
  ``c / (1 - theta)``, i.e. the attacker must add
  ``a >= c / (1 - theta) - lam`` pps of flood;
* an attacker with ``B`` pps therefore congests ``N_C = floor(B / a)``
  nodes simultaneously;
* a break-in campaign of ``r`` attempts per unit time sustained for ``T``
  yields ``N_T = floor(r * T)`` attempts.
"""

from __future__ import annotations

import dataclasses
import math

from repro.core.attack_models import SuccessiveAttack
from repro.errors import ConfigurationError
from repro.utils.validation import check_non_negative, check_positive


@dataclasses.dataclass(frozen=True)
class CongestionCostModel:
    """Per-node flood cost under token-bucket congestion semantics.

    Attributes
    ----------
    node_capacity:
        Packets per second a node can process (``c``).
    legitimate_rate:
        Background legitimate load per node (``lam``).
    congestion_threshold:
        Drop-rate fraction at which the node counts as congested
        (``theta``; matches :class:`repro.simulation.capacity.NodeCapacity`).
    """

    node_capacity: float = 100.0
    legitimate_rate: float = 10.0
    congestion_threshold: float = 0.5

    def __post_init__(self) -> None:
        check_positive("node_capacity", self.node_capacity)
        check_non_negative("legitimate_rate", self.legitimate_rate)
        if not 0.0 < self.congestion_threshold < 1.0:
            raise ConfigurationError(
                "congestion_threshold must be in (0, 1), got "
                f"{self.congestion_threshold!r}"
            )

    @property
    def required_flood_rate(self) -> float:
        """Flood pps needed to congest one node (``a`` above)."""
        return max(
            0.0,
            self.node_capacity / (1.0 - self.congestion_threshold)
            - self.legitimate_rate,
        )

    def nodes_congestable(self, bandwidth: float) -> int:
        """``N_C`` an attacker with ``bandwidth`` pps can sustain."""
        check_non_negative("bandwidth", bandwidth)
        rate = self.required_flood_rate
        if rate <= 0.0:
            raise ConfigurationError(
                "nodes are congested by legitimate load alone; "
                "increase node_capacity or lower legitimate_rate"
            )
        return math.floor(bandwidth / rate)

    def bandwidth_for(self, congestion_budget: float) -> float:
        """Bandwidth (pps) required to sustain ``N_C`` congested nodes."""
        check_non_negative("congestion_budget", congestion_budget)
        return congestion_budget * self.required_flood_rate


@dataclasses.dataclass(frozen=True)
class BreakInCampaign:
    """Break-in attempt budget from a rate-and-duration campaign.

    Attributes
    ----------
    attempts_per_hour:
        Exploitation throughput of the intrusion crew.
    duration_hours:
        Campaign window before the operation is burned.
    """

    attempts_per_hour: float = 10.0
    duration_hours: float = 20.0

    def __post_init__(self) -> None:
        check_non_negative("attempts_per_hour", self.attempts_per_hour)
        check_non_negative("duration_hours", self.duration_hours)

    @property
    def total_attempts(self) -> int:
        """``N_T`` over the whole campaign."""
        return math.floor(self.attempts_per_hour * self.duration_hours)


def attack_from_resources(
    bandwidth: float,
    campaign: BreakInCampaign = BreakInCampaign(),
    cost_model: CongestionCostModel = CongestionCostModel(),
    rounds: int = 3,
    break_in_success: float = 0.5,
    prior_knowledge: float = 0.0,
) -> SuccessiveAttack:
    """Build a :class:`SuccessiveAttack` from operational attacker resources.

    Examples
    --------
    >>> attack = attack_from_resources(bandwidth=380_000.0)
    >>> attack.congestion_budget  # 380k pps / 190 pps-per-node
    2000
    >>> attack.break_in_budget    # 10 attempts/h * 20 h
    200
    """
    return SuccessiveAttack(
        break_in_budget=campaign.total_attempts,
        congestion_budget=cost_model.nodes_congestable(bandwidth),
        break_in_success=break_in_success,
        rounds=rounds,
        prior_knowledge=prior_knowledge,
    )
