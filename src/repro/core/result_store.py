"""Keyed result store with TTL freshness and stale-while-revalidate.

:func:`repro.core.probability.all_bad_probability` memoizes its inner
product with a bounded ``lru_cache`` — the right tool for a pure scalar
kernel. A long-lived evaluation *service* needs the same idea one level
up, with properties an ``lru_cache`` cannot express:

* results are keyed by a **request fingerprint** (any hashable key; the
  service uses :func:`repro.resilience.checkpoint.fingerprint` of the
  canonical request payload);
* entries carry a **freshness horizon**: within ``ttl`` they are served
  as fresh hits, after it they remain available as *stale* values — the
  degraded answer a circuit-broken service prefers over an error
  (stale-while-revalidate, RFC 5861 semantics);
* capacity is bounded with LRU eviction, and hit/stale/miss statistics
  are first-class so health endpoints can report them.

The store is deliberately synchronous and unlocked: the service accesses
it only from the event-loop thread. The clock is injected so tests can
drive freshness deterministically.
"""

from __future__ import annotations

import dataclasses
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable, Optional, Tuple

from repro.errors import ConfigurationError

#: Freshness classes returned by :meth:`ResultStore.lookup`.
FRESH = "fresh"
STALE = "stale"


@dataclasses.dataclass(frozen=True)
class StoreStats:
    """Counters describing store effectiveness (shape mirrors
    ``functools._CacheInfo`` plus the stale tier)."""

    fresh_hits: int
    stale_hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.fresh_hits + self.stale_hits + self.misses
        return (self.fresh_hits + self.stale_hits) / total if total else 0.0


@dataclasses.dataclass
class _Entry:
    value: Any
    stored_at: float
    refreshes: int = 0


class ResultStore:
    """Bounded LRU store of computed results with a freshness horizon.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least-recently-*used* entry is evicted first.
    ttl:
        Seconds an entry counts as fresh. Beyond the TTL the entry is
        still returned by :meth:`lookup` — tagged :data:`STALE` — until
        evicted or overwritten; serving stale answers under degradation
        is the store's whole reason to exist.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        max_entries: int = 1024,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._fresh_hits = 0
        self._stale_hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(self, key: Hashable, value: Any) -> None:
        """Store (or refresh) ``key``; refreshing restores freshness."""
        entry = self._entries.get(key)
        if entry is not None:
            entry.value = value
            entry.stored_at = self._clock()
            entry.refreshes += 1
            self._entries.move_to_end(key)
            return
        self._entries[key] = _Entry(value=value, stored_at=self._clock())
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def lookup(self, key: Hashable) -> Optional[Tuple[Any, str]]:
        """Return ``(value, FRESH | STALE)`` or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._entries.move_to_end(key)
        age = self._clock() - entry.stored_at
        if age <= self.ttl:
            self._fresh_hits += 1
            return entry.value, FRESH
        self._stale_hits += 1
        return entry.value, STALE

    def age(self, key: Hashable) -> Optional[float]:
        """Seconds since ``key`` was stored/refreshed, or None."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        return self._clock() - entry.stored_at

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` entirely; True when it existed."""
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return StoreStats(
            fresh_hits=self._fresh_hits,
            stale_hits=self._stale_hits,
            misses=self._misses,
            evictions=self._evictions,
            currsize=len(self._entries),
            maxsize=self.max_entries,
        )
