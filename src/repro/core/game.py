"""The design game: an adaptive attacker vs an adaptive architect.

The paper evaluates fixed attack budgets, but its conclusion is game-
theoretic: "if the system is designed carefully keeping potential attack
scenarios in mind, more resilient architectures can be designed" — and a
rational attacker, in turn, allocates resources against whatever design it
faces. This module closes that loop:

* the attacker owns a total resource ``budget`` convertible between
  break-in attempts and congestion floods at ``exchange_rate`` congestion
  units per break-in attempt (break-ins are expensive: exploitation,
  operator time; floods are cheap bandwidth);
* :func:`worst_case_attack` finds the split minimizing ``P_S`` against a
  fixed design — the attacker's best response;
* :func:`minimax_design` finds the design maximizing that worst case —
  the architect's security-level guarantee.

Results double as an ablation: the optimal split's break-in share reveals
how much an intelligent adversary should invest in intelligence rather
than bandwidth against each design (the paper's central theme).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.design_space import enumerate_designs
from repro.core.model import evaluate
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclasses.dataclass(frozen=True)
class AttackSplit:
    """One point on the attacker's resource-allocation frontier."""

    break_in_budget: float
    congestion_budget: float
    p_s: float

    @property
    def break_in_share(self) -> float:
        """Fraction of the (converted) total spent on break-ins."""
        total = self.break_in_budget + self.congestion_budget
        return 0.0 if total == 0 else self.break_in_budget / total


@dataclasses.dataclass(frozen=True)
class GameResult:
    """Attacker best response against one design."""

    architecture: SOSArchitecture
    splits: Tuple[AttackSplit, ...]
    worst: AttackSplit

    @property
    def guaranteed_p_s(self) -> float:
        """The design's security level against the adaptive attacker."""
        return self.worst.p_s


def _attack_for_split(
    break_in_budget: float,
    congestion_budget: float,
    rounds: int,
    break_in_success: float,
    prior_knowledge: float,
) -> SuccessiveAttack:
    return SuccessiveAttack(
        break_in_budget=break_in_budget,
        congestion_budget=congestion_budget,
        break_in_success=break_in_success,
        rounds=rounds,
        prior_knowledge=prior_knowledge,
    )


def worst_case_attack(
    architecture: SOSArchitecture,
    budget: float = 2400.0,
    exchange_rate: float = 10.0,
    split_points: int = 13,
    rounds: int = 3,
    break_in_success: float = 0.5,
    prior_knowledge: float = 0.2,
) -> GameResult:
    """Attacker's best response: the budget split minimizing ``P_S``.

    ``budget`` is denominated in congestion units; a break-in attempt costs
    ``exchange_rate`` of them. The split grid runs from all-congestion to
    the maximum affordable break-in investment (capped so ``N_T`` never
    exceeds the overlay population).

    Examples
    --------
    >>> from repro.core import SOSArchitecture
    >>> result = worst_case_attack(SOSArchitecture(layers=4,
    ...                                            mapping="one-to-two"))
    >>> 0.0 <= result.guaranteed_p_s <= 1.0
    True
    """
    check_positive("budget", budget)
    check_positive("exchange_rate", exchange_rate)
    if split_points < 2:
        raise ConfigurationError("split_points must be >= 2")

    max_break_in = min(budget / exchange_rate, architecture.total_overlay_nodes)
    splits: List[AttackSplit] = []
    for index in range(split_points):
        fraction = index / (split_points - 1)
        break_in_budget = fraction * max_break_in
        congestion_budget = budget - break_in_budget * exchange_rate
        attack = _attack_for_split(
            break_in_budget,
            congestion_budget,
            rounds,
            break_in_success,
            prior_knowledge,
        )
        p_s = evaluate(architecture, attack).p_s
        splits.append(
            AttackSplit(
                break_in_budget=break_in_budget,
                congestion_budget=congestion_budget,
                p_s=p_s,
            )
        )
    worst = min(splits, key=lambda s: s.p_s)
    return GameResult(architecture=architecture, splits=tuple(splits), worst=worst)


@dataclasses.dataclass(frozen=True)
class BestResponseStep:
    """One round of the attacker/architect best-response dynamics."""

    architecture: SOSArchitecture
    attacker_split: AttackSplit
    p_s: float


def iterated_best_response(
    initial: Optional[SOSArchitecture] = None,
    budget: float = 2400.0,
    exchange_rate: float = 10.0,
    iterations: int = 6,
    split_points: int = 13,
    rounds: int = 3,
    break_in_success: float = 0.5,
    prior_knowledge: float = 0.2,
) -> Tuple[List[BestResponseStep], bool]:
    """Alternate attacker and architect best responses.

    Starting from ``initial`` (default: the original SOS design), each
    round the attacker picks its worst-case budget split against the
    current design, then the architect re-designs against exactly that
    attack. Returns ``(steps, cycled)``; ``cycled`` is True once a design
    repeats — either a fixed point (period 1) or, typically, an
    oscillation: an architect that overfits to the attacker's *last* move
    keeps getting exploited, which is precisely why
    :func:`minimax_design`'s worst-case criterion is the right one.

    Examples
    --------
    >>> steps, cycled = iterated_best_response(iterations=4)
    >>> len(steps) <= 4
    True
    """
    from repro.core.architecture import original_sos_architecture
    from repro.core.design_space import DEFAULT_MAPPINGS

    if iterations < 1:
        raise ConfigurationError("iterations must be >= 1")
    design = initial or original_sos_architecture()
    designs_grid = enumerate_designs(
        layers=range(1, 9), mappings=DEFAULT_MAPPINGS
    )
    steps: List[BestResponseStep] = []
    seen_designs = set()
    converged = False
    for _ in range(iterations):
        response = worst_case_attack(
            design,
            budget=budget,
            exchange_rate=exchange_rate,
            split_points=split_points,
            rounds=rounds,
            break_in_success=break_in_success,
            prior_knowledge=prior_knowledge,
        )
        steps.append(
            BestResponseStep(
                architecture=design,
                attacker_split=response.worst,
                p_s=response.guaranteed_p_s,
            )
        )
        fingerprint = (
            design.layers,
            design.mapping_policy.label,
            str(design.distribution),
        )
        if fingerprint in seen_designs:
            converged = True
            break
        seen_designs.add(fingerprint)
        # Architect re-designs against the attacker's chosen split.
        chosen_attack = _attack_for_split(
            response.worst.break_in_budget,
            response.worst.congestion_budget,
            rounds,
            break_in_success,
            prior_knowledge,
        )
        scored = [
            (evaluate(candidate, chosen_attack).p_s, index, candidate)
            for index, candidate in enumerate(designs_grid)
        ]
        scored.sort(key=lambda item: (-item[0], item[1]))
        design = scored[0][2]
    return steps, converged


def minimax_design(
    designs: Optional[Sequence[SOSArchitecture]] = None,
    budget: float = 2400.0,
    exchange_rate: float = 10.0,
    split_points: int = 13,
    rounds: int = 3,
    break_in_success: float = 0.5,
    prior_knowledge: float = 0.2,
) -> Tuple[GameResult, List[GameResult]]:
    """Architect's move: the design maximizing the attacker's best response.

    Returns ``(winner, all_results)`` with ``all_results`` sorted by
    guaranteed ``P_S`` descending.
    """
    if designs is None:
        designs = enumerate_designs(
            layers=range(1, 9),
            mappings=("one-to-one", "one-to-two", "one-to-five", "one-to-half"),
        )
    if not designs:
        raise ConfigurationError("need at least one design")
    results = [
        worst_case_attack(
            design,
            budget=budget,
            exchange_rate=exchange_rate,
            split_points=split_points,
            rounds=rounds,
            break_in_success=break_in_success,
            prior_knowledge=prior_knowledge,
        )
        for design in designs
    ]
    results.sort(key=lambda r: r.guaranteed_p_s, reverse=True)
    return results[0], results
