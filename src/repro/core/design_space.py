"""Design-space exploration for the generalized SOS architecture.

The paper's punchline (§5): layering and mapping degree pull in opposite
directions — more layers and fewer neighbors resist break-in attacks, fewer
layers and more neighbors resist congestion — so the right design depends
on the anticipated attack mix. This module operationalizes that:

* :func:`enumerate_designs` — build the (L, mapping, distribution) grid;
* :func:`evaluate_designs` — score every design against a set of attack
  scenarios (worst case or weighted average across scenarios);
* :func:`best_design` — argmax over the grid;
* :func:`tradeoff_frontier` — Pareto frontier between resilience to a
  break-in-heavy scenario and a congestion-heavy scenario, exhibiting the
  trade-off the paper describes qualitatively.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.distributions import NodeDistribution
from repro.core.model import evaluate
from repro.errors import ConfigurationError

Attack = Union[OneBurstAttack, SuccessiveAttack]

#: The mapping-policy names the paper's evaluation sweeps.
DEFAULT_MAPPINGS: Tuple[str, ...] = (
    "one-to-one",
    "one-to-two",
    "one-to-five",
    "one-to-half",
    "one-to-all",
)


@dataclasses.dataclass(frozen=True)
class DesignScore:
    """One evaluated design point."""

    architecture: SOSArchitecture
    per_scenario: Dict[str, float]
    aggregate: float

    @property
    def label(self) -> str:
        return (
            f"L={self.architecture.layers} "
            f"{self.architecture.mapping_policy.label} "
            f"{NodeDistribution(self.architecture.distribution).value}"
        )


def enumerate_designs(
    layers: Iterable[int] = range(1, 9),
    mappings: Sequence[str] = DEFAULT_MAPPINGS,
    distributions: Sequence[Union[str, NodeDistribution]] = ("even",),
    total_overlay_nodes: int = 10_000,
    sos_nodes: int = 100,
    filters: int = 10,
) -> List[SOSArchitecture]:
    """Materialize the design grid, silently skipping infeasible points
    (e.g. skewed distributions that starve a layer below one node)."""
    designs = []
    for layer_count in layers:
        for mapping in mappings:
            for distribution in distributions:
                try:
                    designs.append(
                        SOSArchitecture(
                            layers=layer_count,
                            mapping=mapping,
                            distribution=distribution,
                            total_overlay_nodes=total_overlay_nodes,
                            sos_nodes=sos_nodes,
                            filters=filters,
                        )
                    )
                except ConfigurationError:
                    continue
    if not designs:
        raise ConfigurationError("design grid is empty")
    return designs


def evaluate_designs(
    designs: Sequence[SOSArchitecture],
    scenarios: Dict[str, Attack],
    aggregate: str = "min",
    weights: Optional[Dict[str, float]] = None,
    vectorized: bool = True,
) -> List[DesignScore]:
    """Score every design against every attack scenario.

    ``aggregate`` is ``"min"`` (robust / worst-case, default) or ``"mean"``
    (optionally weighted by ``weights``). The design x scenario cross is
    evaluated in one vectorized batch (:mod:`repro.perf.batch`);
    ``vectorized=False`` keeps the scalar per-point loop as an oracle.
    """
    if not scenarios:
        raise ConfigurationError("need at least one attack scenario")
    if aggregate not in ("min", "mean"):
        raise ConfigurationError(f"aggregate must be 'min' or 'mean', got {aggregate!r}")
    names = list(scenarios)
    if vectorized and designs:
        from repro.perf.batch import evaluate_batch

        flat_designs = [d for d in designs for _ in names]
        flat_attacks = [scenarios[name] for _ in designs for name in names]
        values = evaluate_batch(flat_designs, flat_attacks)
        per_design = [
            {
                name: float(values[row * len(names) + column])
                for column, name in enumerate(names)
            }
            for row in range(len(designs))
        ]
    else:
        per_design = [
            {name: evaluate(design, scenarios[name]).p_s for name in names}
            for design in designs
        ]
    scores = []
    for design, per_scenario in zip(designs, per_design):
        if aggregate == "min":
            value = min(per_scenario.values())
        else:
            if weights:
                total_weight = sum(weights.get(name, 0.0) for name in per_scenario)
                if total_weight <= 0:
                    raise ConfigurationError("weights must have positive total")
                value = (
                    sum(
                        weights.get(name, 0.0) * ps
                        for name, ps in per_scenario.items()
                    )
                    / total_weight
                )
            else:
                value = sum(per_scenario.values()) / len(per_scenario)
        scores.append(
            DesignScore(architecture=design, per_scenario=per_scenario, aggregate=value)
        )
    scores.sort(key=lambda s: s.aggregate, reverse=True)
    return scores


def best_design(
    scenarios: Dict[str, Attack],
    layers: Iterable[int] = range(1, 9),
    mappings: Sequence[str] = DEFAULT_MAPPINGS,
    distributions: Sequence[Union[str, NodeDistribution]] = ("even",),
    aggregate: str = "min",
    **grid_kwargs: Any,
) -> DesignScore:
    """Best design on the grid for the given scenarios.

    Examples
    --------
    >>> from repro.core.attack_models import SuccessiveAttack
    >>> score = best_design({"default": SuccessiveAttack()})
    >>> score.architecture.mapping_policy.label
    'one-to-2'
    """
    designs = enumerate_designs(
        layers=layers, mappings=mappings, distributions=distributions, **grid_kwargs
    )
    return evaluate_designs(designs, scenarios, aggregate=aggregate)[0]


@dataclasses.dataclass(frozen=True)
class FrontierPoint:
    """A Pareto-optimal design on the break-in/congestion plane."""

    architecture: SOSArchitecture
    break_in_resilience: float
    congestion_resilience: float

    @property
    def label(self) -> str:
        return (
            f"L={self.architecture.layers} "
            f"{self.architecture.mapping_policy.label}"
        )


def tradeoff_frontier(
    designs: Sequence[SOSArchitecture],
    break_in_attack: Optional[Attack] = None,
    congestion_attack: Optional[Attack] = None,
) -> List[FrontierPoint]:
    """Pareto frontier between break-in and congestion resilience.

    Default scenarios follow the paper's evaluation: a break-in-heavy
    successive attack (``N_T = 2000``) and a heavy pure-congestion burst
    (``N_C = 6000``).
    """
    break_in_attack = break_in_attack or SuccessiveAttack(
        break_in_budget=2000, congestion_budget=2000
    )
    congestion_attack = congestion_attack or OneBurstAttack(
        break_in_budget=0, congestion_budget=6000
    )
    points = [
        FrontierPoint(
            architecture=design,
            break_in_resilience=evaluate(design, break_in_attack).p_s,
            congestion_resilience=evaluate(design, congestion_attack).p_s,
        )
        for design in designs
    ]
    frontier = [
        p
        for p in points
        if not any(
            (
                q.break_in_resilience >= p.break_in_resilience
                and q.congestion_resilience >= p.congestion_resilience
                and (
                    q.break_in_resilience > p.break_in_resilience
                    or q.congestion_resilience > p.congestion_resilience
                )
            )
            for q in points
        )
    ]
    frontier.sort(key=lambda p: p.break_in_resilience)
    return frontier
