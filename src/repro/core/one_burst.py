"""One-burst intelligent-attack analysis (Section 3.1, Eqs. 1-9).

The attacker spends the entire break-in budget ``N_T`` in a single round of
uniformly random attempts over all ``N`` overlay nodes, then congests
``N_C`` nodes, preferring nodes disclosed by the successful break-ins.

Derivation implemented here (average-case, weak law of large numbers):

* break-in attempts per layer:      ``h_i = (n_i / N) N_T``          (i <= L)
* broken-in nodes per layer:        ``b_i = P_B h_i``                (i <= L)
* filters cannot be broken into:    ``h_{L+1} = b_{L+1} = 0``
* disclosed-or-attacked set:        ``z_i`` (Eq. 5)
* disclosed, never attacked:        ``d_i^N = z_i - h_i`` (Eq. 6)
* disclosed, attacked unsuccessfully: ``d_i^A`` (Eq. 7)
* congested nodes per layer:        ``c_i`` (Eq. 8 when ``N_C >= N_D``,
  Eq. 9 otherwise), where ``N_D = sum_i (d_i^N + d_i^A)``
* bad nodes:                        ``s_i = b_i + c_i``
* path availability:                ``P_S = prod_i (1 - P(n_i, s_i, m_i))``

The paper's Eq. 8 writes ``b_i^A`` for the broken-in set; we read it as
``b_i`` (one-burst has no disclosed/random break-in split). Filters are
excluded from the random-congestion pool (footnote 2).
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.contracts import ensures, requires_non_negative, requires_probability
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack
from repro.core.layer_state import LayerState, SystemPerformance, path_availability
from repro.core.probability import clamp, no_fresh_disclosure_probability
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class OneBurstBreakdown:
    """Intermediate sets of the one-burst derivation (for tests/diagnostics).

    All arrays are indexed ``0 .. L`` corresponding to layers ``1 .. L+1``.
    """

    attempted: Tuple[float, ...]  # h_i
    broken_in: Tuple[float, ...]  # b_i
    disclosed_or_attacked: Tuple[float, ...]  # z_i
    disclosed_unattacked: Tuple[float, ...]  # d_i^N
    disclosed_survived: Tuple[float, ...]  # d_i^A
    congested: Tuple[float, ...]  # c_i
    disclosed_total: float  # N_D
    broken_in_total: float  # N_B


def _break_in_phase(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> Tuple[List[float], List[float]]:
    """Return per-layer break-in attempts ``h_i`` and successes ``b_i``."""
    total = float(architecture.total_overlay_nodes)
    if attack.n_t > total:
        raise ConfigurationError(
            f"break_in_budget ({attack.n_t}) exceeds overlay population ({total})"
        )
    attempted: List[float] = []
    broken_in: List[float] = []
    for size in architecture.layer_sizes_tuple:
        h_i = clamp(size / total * attack.n_t, 0.0, size)
        attempted.append(h_i)
        broken_in.append(attack.p_b * h_i)
    # Filter layer: special nodes, cannot be broken into (paper: b_{L+1} = 0).
    attempted.append(0.0)
    broken_in.append(0.0)
    return attempted, broken_in


def _disclosure_phase(
    architecture: SOSArchitecture,
    attempted: List[float],
    broken_in: List[float],
) -> Tuple[List[float], List[float], List[float]]:
    """Compute ``z_i``, ``d_i^N``, ``d_i^A`` for every layer (Eqs. 5-7)."""
    sizes = architecture.layer_sizes_with_filters
    degrees = architecture.mapping_degrees
    z: List[float] = [0.0] * len(sizes)
    d_n: List[float] = [0.0] * len(sizes)
    d_a: List[float] = [0.0] * len(sizes)
    # Layer 1 nodes are never disclosed by break-ins (no layer below them).
    for i in range(1, len(sizes)):
        n_i = sizes[i]
        m_i = degrees[i]
        survive = no_fresh_disclosure_probability(m_i, n_i, broken_in[i - 1])
        untouched_by_attempts = clamp(1.0 - attempted[i] / n_i, 0.0, 1.0)
        z[i] = n_i * (1.0 - survive * untouched_by_attempts)
        d_n[i] = clamp(z[i] - attempted[i], 0.0, n_i)
        unsuccessful = max(0.0, attempted[i] - broken_in[i])
        d_a[i] = clamp(unsuccessful * (1.0 - survive), 0.0, n_i)
    return z, d_n, d_a


def _congestion_phase(
    architecture: SOSArchitecture,
    attack: OneBurstAttack,
    broken_in: List[float],
    d_n: List[float],
    d_a: List[float],
) -> Tuple[List[float], float, float]:
    """Allocate the congestion budget per layer (Eqs. 8-9).

    Returns ``(c_i per layer, N_D, N_B)``.
    """
    sizes = architecture.layer_sizes_with_filters
    last = len(sizes) - 1
    disclosed_per_layer = [d_n[i] + d_a[i] for i in range(len(sizes))]
    n_d = sum(disclosed_per_layer)
    n_b = sum(broken_in)

    congested = [0.0] * len(sizes)
    if attack.n_c >= n_d:
        # Congest every disclosed node, then spread the surplus uniformly
        # over the remaining good *overlay* nodes. Disclosed filters are not
        # part of the overlay pool (footnote 2), hence the subtraction.
        surplus = attack.n_c - n_d
        pool = (
            float(architecture.total_overlay_nodes)
            - n_b
            - (n_d - disclosed_per_layer[last])
        )
        fraction = 0.0 if pool <= 0 else min(1.0, surplus / pool)
        for i in range(last):
            remaining = max(0.0, sizes[i] - broken_in[i] - disclosed_per_layer[i])
            congested[i] = disclosed_per_layer[i] + surplus_share(
                fraction, remaining
            )
        congested[last] = disclosed_per_layer[last]
    else:
        # Not enough budget: congest a uniformly random subset of the
        # disclosed nodes, proportionally per layer (Eq. 9).
        share = attack.n_c / n_d if n_d > 0 else 0.0
        for i in range(len(sizes)):
            congested[i] = share * disclosed_per_layer[i]

    congested = [clamp(c, 0.0, sizes[i]) for i, c in enumerate(congested)]
    return congested, n_d, n_b


@requires_probability("fraction")
@requires_non_negative("remaining")
def surplus_share(fraction: float, remaining: float) -> float:
    """Random-congestion share of a layer's remaining good nodes."""
    return fraction * remaining


def analyze_one_burst_breakdown(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> OneBurstBreakdown:
    """Run the full one-burst derivation and return every intermediate set."""
    attempted, broken_in = _break_in_phase(architecture, attack)
    z, d_n, d_a = _disclosure_phase(architecture, attempted, broken_in)
    congested, n_d, n_b = _congestion_phase(
        architecture, attack, broken_in, d_n, d_a
    )
    return OneBurstBreakdown(
        attempted=tuple(attempted),
        broken_in=tuple(broken_in),
        disclosed_or_attacked=tuple(z),
        disclosed_unattacked=tuple(d_n),
        disclosed_survived=tuple(d_a),
        congested=tuple(congested),
        disclosed_total=n_d,
        broken_in_total=n_b,
    )


@ensures(lambda result: 0.0 <= result.p_s <= 1.0, "P_S must lie in [0, 1]")
def analyze_one_burst(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> SystemPerformance:
    """Evaluate ``P_S`` for ``architecture`` under a one-burst attack.

    Examples
    --------
    >>> from repro.core.architecture import SOSArchitecture
    >>> from repro.core.attack_models import OneBurstAttack
    >>> arch = SOSArchitecture(layers=3, mapping="one-to-all")
    >>> result = analyze_one_burst(arch, OneBurstAttack(break_in_budget=0,
    ...                                                 congestion_budget=2000))
    >>> 0.0 <= result.p_s <= 1.0
    True
    """
    breakdown = analyze_one_burst_breakdown(architecture, attack)
    sizes = architecture.layer_sizes_with_filters
    degrees = architecture.mapping_degrees
    layers = tuple(
        LayerState(
            index=i + 1,
            size=sizes[i],
            mapping_degree=degrees[i],
            broken_in=breakdown.broken_in[i],
            congested=breakdown.congested[i],
            disclosed_unattacked=breakdown.disclosed_unattacked[i],
            disclosed_survived=breakdown.disclosed_survived[i],
        )
        for i in range(len(sizes))
    )
    return SystemPerformance(
        p_s=path_availability(layers),
        layers=layers,
        broken_in_total=breakdown.broken_in_total,
        disclosed_total=breakdown.disclosed_total,
    )
