"""Timely delivery: the latency side of the layering trade-off (paper §5).

The paper's Final Remarks flag timely delivery as an open issue: more
layers buy break-in resilience but lengthen the path, while a higher
mapping degree shortens *effective* latency by giving each hop more
routing choices (fewer retries to find a good neighbor). This module makes
that quantitative under the same average-case model:

* every delivered message crosses exactly ``L + 1`` hops (client → layer 1
  → ... → filter);
* at a hop into layer ``i``, the forwarding node probes neighbors from its
  table until it finds a good one; probes of bad neighbors cost
  ``probe_cost`` each, and the successful forward costs ``hop_latency``;
* the number of probes follows the negative-hypergeometric expectation over
  a table of ``m_i`` entries of which ``s_i / n_i`` are bad on average —
  conditioned on the hop succeeding at all (the ``P_S`` analysis prices the
  failure case).

The headline output, :func:`latency_availability_tradeoff`, tabulates
``(P_S, expected latency)`` across designs — the curve an operator
balancing resilience against responsiveness actually needs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Union

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.layer_state import SystemPerformance
from repro.core.model import evaluate
from repro.errors import AnalysisError

Attack = Union[OneBurstAttack, SuccessiveAttack]


def expected_probes(table_size: int, bad_fraction: float) -> float:
    """Expected probes until the first good entry in a neighbor table.

    The table has ``table_size`` entries, each bad independently with
    probability ``bad_fraction`` (the average-case view), *conditioned on
    at least one good entry existing*. With ``q = bad_fraction``:

        E[probes | success] = sum_{k=1..m} k * q^(k-1) * (1-q) / (1 - q^m)

    Returns 1.0 when the table is clean (``q = 0``).
    """
    if table_size < 1:
        raise AnalysisError(f"table_size must be >= 1, got {table_size}")
    if not 0.0 <= bad_fraction <= 1.0:
        raise AnalysisError(f"bad_fraction must be in [0, 1], got {bad_fraction}")
    q = bad_fraction
    if q <= 0.0:
        return 1.0
    if q >= 1.0:
        # Conditioning event has probability zero; the limit as q -> 1 is
        # the mean of a uniform draw over 1..m.
        return (table_size + 1) / 2.0
    success_any = 1.0 - q**table_size
    total = 0.0
    for k in range(1, table_size + 1):
        total += k * q ** (k - 1) * (1.0 - q)
    return total / success_any


@dataclasses.dataclass(frozen=True)
class LatencyEstimate:
    """Expected delivery latency of a successful message."""

    hop_latency: float
    probe_cost: float
    per_hop_probes: Sequence[float]

    @property
    def hops(self) -> int:
        return len(self.per_hop_probes)

    @property
    def expected_latency(self) -> float:
        """Total expected latency: forwarding plus wasted probes."""
        wasted = sum(probes - 1.0 for probes in self.per_hop_probes)
        return self.hops * self.hop_latency + wasted * self.probe_cost

    @property
    def baseline_latency(self) -> float:
        """Latency with zero damage (no retries anywhere)."""
        return self.hops * self.hop_latency


def estimate_latency(
    architecture: SOSArchitecture,
    performance: SystemPerformance,
    hop_latency: float = 1.0,
    probe_cost: float = 0.5,
) -> LatencyEstimate:
    """Expected latency of a *delivered* message under an attack outcome.

    ``performance`` is the result of :func:`repro.core.evaluate` for the
    same architecture; its per-layer bad sets drive the retry counts.
    """
    if hop_latency <= 0 or probe_cost < 0:
        raise AnalysisError("hop_latency must be > 0 and probe_cost >= 0")
    if len(performance.layers) != architecture.layers + 1:
        raise AnalysisError("performance does not match the architecture")
    probes: List[float] = []
    for layer_state in performance.layers:
        bad_fraction = min(1.0, max(0.0, layer_state.bad / layer_state.size))
        probes.append(
            expected_probes(layer_state.mapping_degree, bad_fraction)
        )
    return LatencyEstimate(
        hop_latency=hop_latency, probe_cost=probe_cost, per_hop_probes=tuple(probes)
    )


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One design on the availability/latency plane."""

    architecture: SOSArchitecture
    p_s: float
    expected_latency: float
    baseline_latency: float

    @property
    def label(self) -> str:
        return (
            f"L={self.architecture.layers} "
            f"{self.architecture.mapping_policy.label}"
        )


def latency_availability_tradeoff(
    designs: Sequence[SOSArchitecture],
    attack: Attack,
    hop_latency: float = 1.0,
    probe_cost: float = 0.5,
) -> List[TradeoffPoint]:
    """Evaluate ``(P_S, E[latency])`` for every design under ``attack``.

    Designs whose ``P_S`` is zero are still reported (their latency is the
    baseline-conditional estimate) so the table shows the full grid.
    """
    points = []
    for design in designs:
        performance = evaluate(design, attack)
        estimate = estimate_latency(
            design, performance, hop_latency=hop_latency, probe_cost=probe_cost
        )
        points.append(
            TradeoffPoint(
                architecture=design,
                p_s=performance.p_s,
                expected_latency=estimate.expected_latency,
                baseline_latency=estimate.baseline_latency,
            )
        )
    return points
