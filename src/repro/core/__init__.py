"""Analytical core: the paper's generalized SOS model and attack analyses.

Public surface:

* :class:`SOSArchitecture` / :func:`original_sos_architecture` — design points;
* :class:`OneBurstAttack` / :class:`SuccessiveAttack` — attack models;
* :func:`evaluate` / :func:`path_availability_probability` — ``P_S`` analysis;
* :mod:`repro.core.design_space` — search and trade-off tooling.
"""

from repro.core.architecture import (
    DEFAULT_FILTERS,
    DEFAULT_SOS_NODES,
    DEFAULT_TOTAL_OVERLAY_NODES,
    SOSArchitecture,
    original_sos_architecture,
)
from repro.core.attack_models import (
    AttackModel,
    OneBurstAttack,
    SuccessiveAttack,
)
from repro.core.budget import (
    BreakInCampaign,
    CongestionCostModel,
    attack_from_resources,
)
from repro.core.game import (
    AttackSplit,
    BestResponseStep,
    GameResult,
    iterated_best_response,
    minimax_design,
    worst_case_attack,
)
from repro.core.distributions import (
    NodeDistribution,
    decreasing_distribution,
    distribute,
    even_distribution,
    increasing_distribution,
    integerize,
)
from repro.core.latency import (
    LatencyEstimate,
    estimate_latency,
    expected_probes,
    latency_availability_tradeoff,
)
from repro.core.layer_state import LayerState, SystemPerformance, path_availability
from repro.core.mapping import (
    ONE_TO_ALL,
    ONE_TO_FIVE,
    ONE_TO_HALF,
    ONE_TO_ONE,
    ONE_TO_TWO,
    FixedMapping,
    FractionMapping,
    MappingPolicy,
    resolve_mapping,
)
from repro.core.model import evaluate, path_availability_probability
from repro.core.sensitivity import Sensitivity, sensitivity_profile
from repro.core.one_burst import analyze_one_burst, analyze_one_burst_breakdown
from repro.core.probability import (
    all_bad_probability,
    exact_all_bad_probability,
    hop_success_probability,
)
from repro.core.result_store import FRESH, STALE, ResultStore, StoreStats
from repro.core.successive import (
    RoundCase,
    analyze_successive,
    analyze_successive_breakdown,
)

__all__ = [
    "BreakInCampaign",
    "CongestionCostModel",
    "attack_from_resources",
    "AttackSplit",
    "BestResponseStep",
    "GameResult",
    "iterated_best_response",
    "minimax_design",
    "worst_case_attack",
    "DEFAULT_FILTERS",
    "DEFAULT_SOS_NODES",
    "DEFAULT_TOTAL_OVERLAY_NODES",
    "SOSArchitecture",
    "original_sos_architecture",
    "AttackModel",
    "OneBurstAttack",
    "SuccessiveAttack",
    "NodeDistribution",
    "decreasing_distribution",
    "distribute",
    "even_distribution",
    "increasing_distribution",
    "integerize",
    "LatencyEstimate",
    "estimate_latency",
    "expected_probes",
    "latency_availability_tradeoff",
    "LayerState",
    "SystemPerformance",
    "path_availability",
    "ONE_TO_ALL",
    "ONE_TO_FIVE",
    "ONE_TO_HALF",
    "ONE_TO_ONE",
    "ONE_TO_TWO",
    "FixedMapping",
    "FractionMapping",
    "MappingPolicy",
    "resolve_mapping",
    "evaluate",
    "path_availability_probability",
    "Sensitivity",
    "sensitivity_profile",
    "analyze_one_burst",
    "analyze_one_burst_breakdown",
    "all_bad_probability",
    "exact_all_bad_probability",
    "hop_success_probability",
    "FRESH",
    "STALE",
    "ResultStore",
    "StoreStats",
    "RoundCase",
    "analyze_successive",
    "analyze_successive_breakdown",
]
