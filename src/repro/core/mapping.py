"""Mapping-degree policies: how many next-layer neighbors each node knows.

The paper's *mapping degree* ``m_i`` is the number of neighbors a node in
Layer ``i-1`` has in Layer ``i``. Its evaluation uses five named policies:

* **one-to-one** — each node knows exactly 1 next-layer node;
* **one-to-two** / **one-to-five** — each node knows 2 / 5 next-layer nodes;
* **one-to-half** — each node knows half of the next layer;
* **one-to-all** — each node knows the entire next layer (the original SOS
  assumption).

A policy resolves to a concrete integer ``m_i`` given the next layer's size
``n_i``; the result is always clamped into ``[1, n_i]`` (a node must know at
least one next hop, and cannot know more nodes than exist).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence, Union

from repro.contracts import requires_fraction
from repro.errors import ConfigurationError
from repro.utils.validation import check_fraction, check_positive_int


@dataclasses.dataclass(frozen=True)
class MappingPolicy:
    """Base class for mapping-degree policies.

    Subclasses implement :meth:`degree_for`, resolving the mapping degree
    toward a layer of a given size.
    """

    def degree_for(self, next_layer_size: float) -> int:
        """Return the integer mapping degree toward a layer of this size."""
        raise NotImplementedError

    @property
    def label(self) -> str:
        """Human-readable name used in experiment tables and legends."""
        raise NotImplementedError

    @staticmethod
    def _clamp(degree: int, next_layer_size: float) -> int:
        if next_layer_size < 1:
            raise ConfigurationError(
                f"next layer must hold at least one node, got {next_layer_size!r}"
            )
        capacity = max(1, math.floor(next_layer_size))
        return min(capacity, max(1, degree))


@dataclasses.dataclass(frozen=True)
class FixedMapping(MappingPolicy):
    """Each node knows exactly ``degree`` next-layer nodes (one-to-k)."""

    degree: int

    def __post_init__(self) -> None:
        check_positive_int("degree", self.degree)

    def degree_for(self, next_layer_size: float) -> int:
        return self._clamp(self.degree, next_layer_size)

    @property
    def label(self) -> str:
        return f"one-to-{self.degree}"


@dataclasses.dataclass(frozen=True)
class FractionMapping(MappingPolicy):
    """Each node knows ``fraction`` of the next layer (at least one node).

    ``fraction = 0.5`` is the paper's *one-to-half*; ``fraction = 1.0`` is
    *one-to-all*. The node count is rounded to the nearest integer.
    """

    fraction: float

    def __post_init__(self) -> None:
        check_fraction("fraction", self.fraction)

    def degree_for(self, next_layer_size: float) -> int:
        return self._clamp(
            fraction_degree(self.fraction, next_layer_size), next_layer_size
        )

    @property
    def label(self) -> str:
        # Named policies are constructed from the exact literals 1.0 / 0.5,
        # so equality against those sentinels is exact by construction.
        if self.fraction == 1.0:  # repro-lint: disable=float-equality -- exact sentinel
            return "one-to-all"
        if self.fraction == 0.5:  # repro-lint: disable=float-equality -- exact sentinel
            return "one-to-half"
        return f"one-to-{self.fraction:g}frac"


@requires_fraction("fraction")
def fraction_degree(fraction: float, next_layer_size: float) -> int:
    """Unclamped fractional mapping degree ``round(fraction * n_{i+1})``.

    The contract rejects ``fraction`` outside ``(0, 1]`` — a zero or
    negative fraction would silently produce a disconnected overlay.
    """
    return int(round(fraction * next_layer_size))


ONE_TO_ONE = FixedMapping(1)
ONE_TO_TWO = FixedMapping(2)
ONE_TO_FIVE = FixedMapping(5)
ONE_TO_HALF = FractionMapping(0.5)
ONE_TO_ALL = FractionMapping(1.0)

_NAMED = {
    "one-to-one": ONE_TO_ONE,
    "one-to-two": ONE_TO_TWO,
    "one-to-five": ONE_TO_FIVE,
    "one-to-half": ONE_TO_HALF,
    "one-to-all": ONE_TO_ALL,
}

MappingLike = Union[MappingPolicy, str, int]


def resolve_mapping(policy: MappingLike) -> MappingPolicy:
    """Coerce a policy object, policy name, or integer degree to a policy.

    Accepts ``"one-to-one" | "one-to-two" | "one-to-five" | "one-to-half" |
    "one-to-all"``, a bare integer ``k`` (meaning one-to-``k``), or any
    :class:`MappingPolicy` instance.
    """
    if isinstance(policy, MappingPolicy):
        return policy
    if isinstance(policy, bool):
        raise ConfigurationError(f"invalid mapping policy {policy!r}")
    if isinstance(policy, int):
        return FixedMapping(policy)
    if isinstance(policy, str):
        try:
            return _NAMED[policy]
        except KeyError:
            names = ", ".join(sorted(_NAMED))
            raise ConfigurationError(
                f"unknown mapping policy {policy!r}; expected one of: {names}, "
                "or an integer degree"
            ) from None
    raise ConfigurationError(f"invalid mapping policy {policy!r}")


def degrees_for_layers(policy: MappingLike, layer_sizes: Sequence[float]) -> List[int]:
    """Resolve ``policy`` against each layer size, returning ``m_i`` per layer.

    ``layer_sizes[i]`` is the size of the layer being mapped *into*; the
    returned list aligns with it (``m_1 .. m_{L+1}`` when the filter layer is
    included as the last element).
    """
    resolved = resolve_mapping(policy)
    return [resolved.degree_for(size) for size in layer_sizes]
