"""Per-layer bad-node accounting shared by both analytical models.

A :class:`LayerState` records, for one layer ``i`` (including the filter
layer ``L+1``), the average-case sizes of the node sets the paper tracks:
broken-in nodes ``b_i``, congested nodes ``c_i``, and the resulting bad set
``s_i = b_i + c_i``. The per-hop success probability ``P_i`` follows from
Eq. (1). :class:`SystemPerformance` aggregates layers into the end-to-end
path-availability probability ``P_S``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence, Tuple

from repro.contracts import ensures, returns_probability
from repro.core.probability import clamp, hop_success_probability
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class LayerState:
    """Average-case attack outcome for one layer.

    Attributes
    ----------
    index:
        1-based layer index; the filter ring is layer ``L+1``.
    size:
        ``n_i`` — number of nodes in the layer (fractional allowed).
    mapping_degree:
        ``m_i`` — neighbor-table size of each previous-layer node toward
        this layer.
    broken_in:
        ``b_i`` — average number of successfully broken-in nodes.
    congested:
        ``c_i`` — average number of congested nodes.
    disclosed_unattacked:
        ``d_i^N`` — disclosed nodes never subjected to a break-in attempt
        (diagnostic; already folded into ``congested``).
    disclosed_survived:
        ``d_i^A`` — disclosed nodes that survived a break-in attempt
        (diagnostic; already folded into ``congested``).
    """

    index: int
    size: float
    mapping_degree: int
    broken_in: float
    congested: float
    disclosed_unattacked: float = 0.0
    disclosed_survived: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AnalysisError(f"layer {self.index}: size must be > 0")
        if self.mapping_degree < 1:
            raise AnalysisError(f"layer {self.index}: mapping degree must be >= 1")
        for name in ("broken_in", "congested"):
            if getattr(self, name) < -1e-9:
                raise AnalysisError(f"layer {self.index}: {name} is negative")

    @property
    def bad(self) -> float:
        """``s_i = b_i + c_i`` clamped into ``[0, n_i]``."""
        return clamp(self.broken_in + self.congested, 0.0, self.size)

    @property
    def good(self) -> float:
        """Remaining good nodes ``n_i - s_i``."""
        return self.size - self.bad

    @property
    def hop_success(self) -> float:
        """``P_i = 1 - P(n_i, s_i, m_i)`` (Eq. 1)."""
        return hop_success_probability(self.size, self.bad, self.mapping_degree)


@dataclasses.dataclass(frozen=True)
class SystemPerformance:
    """End-to-end result of evaluating an architecture under an attack.

    Attributes
    ----------
    p_s:
        ``P_S`` — probability a client can reach the target (Eq. 1).
    layers:
        Per-layer states ``1 .. L+1`` (the last entry is the filter ring).
    broken_in_total:
        ``N_B`` — average total broken-in overlay nodes.
    disclosed_total:
        ``N_D`` — average disclosed-but-not-broken-in nodes at the start of
        the congestion phase.
    """

    p_s: float
    layers: Tuple[LayerState, ...]
    broken_in_total: float
    disclosed_total: float

    def __post_init__(self) -> None:
        if not -1e-12 <= self.p_s <= 1.0 + 1e-12:
            raise AnalysisError(f"P_S out of range: {self.p_s!r}")
        object.__setattr__(self, "p_s", clamp(self.p_s, 0.0, 1.0))

    @property
    @ensures(
        lambda hops: all(0.0 <= p <= 1.0 for p in hops),
        "every per-hop probability must lie in [0, 1]",
    )
    def hop_probabilities(self) -> Tuple[float, ...]:
        """``(P_1, ..., P_{L+1})`` per-hop success probabilities."""
        return tuple(layer.hop_success for layer in self.layers)

    @property
    def bad_per_layer(self) -> Tuple[float, ...]:
        """``(s_1, ..., s_{L+1})`` bad-set sizes."""
        return tuple(layer.bad for layer in self.layers)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary used by experiment tables and serialization."""
        return {
            "p_s": self.p_s,
            "n_b": self.broken_in_total,
            "n_d": self.disclosed_total,
            "hop_probabilities": list(self.hop_probabilities),
            "bad_per_layer": list(self.bad_per_layer),
        }


@returns_probability
def path_availability(layers: Sequence[LayerState]) -> float:
    """``P_S = prod_i P_i`` over every hop, including the filter hop (Eq. 1)."""
    probability = 1.0
    for layer in layers:
        probability *= layer.hop_success
    return clamp(probability, 0.0, 1.0)
