"""Unified entry point for the analytical models.

:func:`evaluate` dispatches on the attack type so callers (experiments,
design-space search, examples) do not need to know which derivation applies:

>>> from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
>>> result = evaluate(SOSArchitecture(layers=4, mapping="one-to-two"),
...                   SuccessiveAttack())
>>> 0.0 <= result.p_s <= 1.0
True
"""

from __future__ import annotations

from typing import Union

from repro.contracts import ensures, returns_probability
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import AttackModel, OneBurstAttack, SuccessiveAttack
from repro.core.layer_state import SystemPerformance
from repro.core.one_burst import analyze_one_burst
from repro.core.successive import analyze_successive
from repro.errors import ConfigurationError

Attack = Union[OneBurstAttack, SuccessiveAttack]


@ensures(lambda result: 0.0 <= result.p_s <= 1.0, "P_S must lie in [0, 1]")
def evaluate(architecture: SOSArchitecture, attack: Attack) -> SystemPerformance:
    """Compute :class:`SystemPerformance` for any supported attack model."""
    if isinstance(attack, SuccessiveAttack):
        return analyze_successive(architecture, attack)
    if isinstance(attack, OneBurstAttack):
        return analyze_one_burst(architecture, attack)
    if isinstance(attack, AttackModel):
        # Base-class instances carry only shared resources; treat as one-burst.
        return analyze_one_burst(
            architecture,
            OneBurstAttack(
                break_in_budget=attack.break_in_budget,
                congestion_budget=attack.congestion_budget,
                break_in_success=attack.break_in_success,
            ),
        )
    raise ConfigurationError(f"unsupported attack model: {attack!r}")


@returns_probability
def path_availability_probability(
    architecture: SOSArchitecture, attack: Attack
) -> float:
    """Shorthand returning just ``P_S``."""
    return evaluate(architecture, attack).p_s
