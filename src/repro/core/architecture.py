"""The generalized SOS architecture (Section 2 of the paper).

A :class:`SOSArchitecture` captures every design feature the paper studies:

* ``total_overlay_nodes`` (``N``) — population of overlay nodes the SOS
  nodes hide among; break-in trials are spread over all of them.
* ``sos_nodes`` (``n``) — number of nodes actually enrolled in the SOS
  system, split across ``layers`` (``L``) layers.
* ``layer_sizes`` (``n_1 .. n_L``) — node count per layer, produced by a
  named :class:`~repro.core.distributions.NodeDistribution` or given
  explicitly. Average-case analysis permits fractional sizes.
* ``mapping`` — the mapping-degree policy resolving to ``m_1 .. m_{L+1}``:
  ``m_i`` is how many Layer-``i`` nodes each Layer-``i-1`` node (or client,
  for ``i = 1``) keeps in its neighbor table.
* ``filters`` (``n_{L+1}``) — the filter ring around the target. Filters
  cannot be broken into and are congested only upon disclosure (paper
  footnote 2).

The class is immutable; derived quantities (per-layer mapping degrees,
filter-layer views) are computed once in ``__post_init__``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.distributions import NodeDistribution, distribute, integerize
from repro.core.mapping import MappingLike, MappingPolicy, resolve_mapping
from repro.errors import ConfigurationError
from repro.utils.validation import check_positive, check_positive_int

#: Default parameters used throughout the paper's evaluation (Sections
#: 3.1.2 and 3.2.3).
DEFAULT_TOTAL_OVERLAY_NODES = 10_000
DEFAULT_SOS_NODES = 100
DEFAULT_FILTERS = 10


@dataclasses.dataclass(frozen=True)
class SOSArchitecture:
    """An immutable generalized-SOS design point.

    Parameters
    ----------
    layers:
        ``L``, the number of SOS layers (SOAP ... secret servlets). The
        filter ring is layer ``L+1`` and is configured via ``filters``.
    mapping:
        Mapping-degree policy (policy object, name such as ``"one-to-half"``,
        or integer ``k`` for one-to-``k``) applied uniformly; per-layer
        degrees follow from each layer's size. A distinct policy for the
        servlet→filter hop may be supplied via ``filter_mapping``.
    total_overlay_nodes:
        ``N``, the overlay population hiding the SOS nodes.
    sos_nodes:
        ``n``, the number of SOS nodes. Ignored when ``layer_sizes`` is
        given explicitly (then ``n = sum(layer_sizes)``).
    distribution:
        Named node-distribution policy splitting ``n`` over ``L`` layers.
        Ignored when ``layer_sizes`` is given.
    layer_sizes:
        Explicit per-layer node counts ``n_1 .. n_L`` (may be fractional for
        average-case studies).
    filters:
        ``n_{L+1}``, the number of filters around the target.
    filter_mapping:
        Optional policy for ``m_{L+1}``; defaults to ``mapping``.
    layer_mappings:
        Optional per-layer policies overriding ``mapping``: one entry per
        SOS layer (``m_1 .. m_L``). The generalized architecture allows
        heterogeneous mapping degrees (§2: "``m_i`` are designed depending
        on the system resources and attacks"); this is how to express
        them. ``filter_mapping`` still governs ``m_{L+1}``.

    Examples
    --------
    >>> arch = SOSArchitecture(layers=3, mapping="one-to-all")
    >>> arch.layer_sizes_tuple
    (33.333333333333336, 33.333333333333336, 33.333333333333336)
    >>> arch.mapping_degrees  # m_1..m_3 plus the filter hop m_4
    (33, 33, 33, 10)
    """

    layers: int
    mapping: MappingLike = "one-to-all"
    total_overlay_nodes: int = DEFAULT_TOTAL_OVERLAY_NODES
    sos_nodes: int = DEFAULT_SOS_NODES
    distribution: Union[NodeDistribution, str] = NodeDistribution.EVEN
    layer_sizes: Optional[Sequence[float]] = None
    filters: int = DEFAULT_FILTERS
    filter_mapping: Optional[MappingLike] = None
    layer_mappings: Optional[Sequence[MappingLike]] = None

    # Derived, filled in __post_init__ (object.__setattr__ due to frozen).
    _mapping_policy: MappingPolicy = dataclasses.field(init=False, repr=False)
    _filter_policy: MappingPolicy = dataclasses.field(init=False, repr=False)
    _layer_policies: Tuple[MappingPolicy, ...] = dataclasses.field(
        init=False, repr=False
    )
    _layer_sizes: Tuple[float, ...] = dataclasses.field(init=False, repr=False)
    _degrees: Tuple[int, ...] = dataclasses.field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int("layers", self.layers)
        check_positive_int("total_overlay_nodes", self.total_overlay_nodes)
        check_positive_int("filters", self.filters)

        mapping_policy = resolve_mapping(self.mapping)
        filter_policy = (
            mapping_policy
            if self.filter_mapping is None
            else resolve_mapping(self.filter_mapping)
        )

        if self.layer_sizes is not None:
            sizes = tuple(float(s) for s in self.layer_sizes)
            if len(sizes) != self.layers:
                raise ConfigurationError(
                    f"layer_sizes has {len(sizes)} entries, expected {self.layers}"
                )
            total = sum(sizes)
            object.__setattr__(self, "sos_nodes", int(round(total)))
        else:
            check_positive_int("sos_nodes", self.sos_nodes)
            sizes = tuple(
                distribute(float(self.sos_nodes), self.layers, self.distribution)
            )
            total = float(self.sos_nodes)

        if any(s < 1 for s in sizes):
            raise ConfigurationError(
                f"every layer must hold at least one node; the requested "
                f"distribution yields {tuple(round(s, 3) for s in sizes)!r} — "
                f"use fewer layers or more SOS nodes"
            )

        if total > self.total_overlay_nodes:
            raise ConfigurationError(
                f"sos_nodes ({total}) cannot exceed total_overlay_nodes "
                f"({self.total_overlay_nodes})"
            )
        if self.layer_mappings is not None:
            if len(self.layer_mappings) != self.layers:
                raise ConfigurationError(
                    f"layer_mappings has {len(self.layer_mappings)} entries, "
                    f"expected {self.layers}"
                )
            layer_policies = tuple(
                resolve_mapping(policy) for policy in self.layer_mappings
            )
        else:
            layer_policies = (mapping_policy,) * self.layers

        # Mapping degrees must be resolvable against every layer; layers with
        # fewer than one node were already rejected above.
        degrees = tuple(
            [
                policy.degree_for(size)
                for policy, size in zip(layer_policies, sizes)
            ]
            + [filter_policy.degree_for(float(self.filters))]
        )

        object.__setattr__(self, "_mapping_policy", mapping_policy)
        object.__setattr__(self, "_filter_policy", filter_policy)
        object.__setattr__(self, "_layer_policies", layer_policies)
        object.__setattr__(self, "_layer_sizes", sizes)
        object.__setattr__(self, "_degrees", degrees)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def mapping_policy(self) -> MappingPolicy:
        """The resolved mapping policy for SOS layers."""
        return self._mapping_policy

    @property
    def filter_mapping_policy(self) -> MappingPolicy:
        """The resolved mapping policy for the servlet→filter hop."""
        return self._filter_policy

    @property
    def layer_mapping_policies(self) -> Tuple[MappingPolicy, ...]:
        """Resolved per-layer policies (uniform unless ``layer_mappings``)."""
        return self._layer_policies

    @property
    def layer_sizes_tuple(self) -> Tuple[float, ...]:
        """``(n_1, ..., n_L)`` — SOS layer sizes (possibly fractional)."""
        return self._layer_sizes

    @property
    def layer_sizes_with_filters(self) -> Tuple[float, ...]:
        """``(n_1, ..., n_L, n_{L+1})`` including the filter ring."""
        return self._layer_sizes + (float(self.filters),)

    @property
    def mapping_degrees(self) -> Tuple[int, ...]:
        """``(m_1, ..., m_L, m_{L+1})`` — resolved neighbor-table sizes."""
        return self._degrees

    @property
    def integer_layer_sizes(self) -> List[int]:
        """Integer layer sizes (largest-remainder rounding) for deployment."""
        return integerize(list(self._layer_sizes))

    @property
    def non_sos_nodes(self) -> float:
        """Overlay nodes that are not part of the SOS system (``N - n``)."""
        return float(self.total_overlay_nodes) - sum(self._layer_sizes)

    def layer_size(self, layer: int) -> float:
        """Size of 1-indexed ``layer`` (``layers + 1`` selects the filters)."""
        self._check_layer_index(layer)
        if layer == self.layers + 1:
            return float(self.filters)
        return self._layer_sizes[layer - 1]

    def mapping_degree(self, layer: int) -> int:
        """Mapping degree ``m_layer`` toward 1-indexed ``layer``."""
        self._check_layer_index(layer)
        return self._degrees[layer - 1]

    def _check_layer_index(self, layer: int) -> None:
        if not isinstance(layer, int) or isinstance(layer, bool):
            raise ConfigurationError(f"layer index must be an integer, got {layer!r}")
        if not 1 <= layer <= self.layers + 1:
            raise ConfigurationError(
                f"layer index {layer} out of range [1, {self.layers + 1}]"
            )

    def describe(self) -> str:
        """One-line human-readable summary used in reports."""
        sizes = ", ".join(f"{s:g}" for s in self._layer_sizes)
        return (
            f"L={self.layers} mapping={self._mapping_policy.label} "
            f"N={self.total_overlay_nodes} n={self.sos_nodes} "
            f"layers=[{sizes}] filters={self.filters}"
        )


def original_sos_architecture(
    total_overlay_nodes: int = DEFAULT_TOTAL_OVERLAY_NODES,
    sos_nodes: int = DEFAULT_SOS_NODES,
    filters: int = DEFAULT_FILTERS,
) -> SOSArchitecture:
    """The original SOS design of Keromytis et al.: ``L = 3``, one-to-all.

    SOAP, beacon, and secret-servlet layers with every node knowing the
    entire next layer — the configuration the paper argues is fragile under
    break-in attacks.
    """
    return SOSArchitecture(
        layers=3,
        mapping="one-to-all",
        total_overlay_nodes=total_overlay_nodes,
        sos_nodes=sos_nodes,
        distribution=NodeDistribution.EVEN,
        filters=filters,
    )
