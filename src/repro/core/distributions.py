"""Node-distribution policies: how ``n`` SOS nodes are split across layers.

Section 3.2.3 of the paper studies three distributions:

* **even** — every layer holds ``n / L`` nodes;
* **increasing** — the first layer keeps its even share ``n / L`` (to load
  balance against clients), and the remaining nodes are split over layers
  ``2..L`` in proportion ``1 : 2 : ... : L-1``;
* **decreasing** — the first layer keeps ``n / L``, and the remaining layers
  receive shares in proportion ``L-1 : L-2 : ... : 1``.

The analytical model is an average-case model, so fractional per-layer node
counts are meaningful and distributions return floats by default. Concrete
deployments (the simulator) need integers; :func:`integerize` converts a
fractional allocation into integers with the same total using largest-
remainder rounding.

All policies are exposed through :func:`distribute` and the
:class:`NodeDistribution` enum so experiment configs can name them.
"""

from __future__ import annotations

import enum
import math
from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive, check_positive_int


class NodeDistribution(str, enum.Enum):
    """Named node-distribution policies from the paper."""

    EVEN = "even"
    INCREASING = "increasing"
    DECREASING = "decreasing"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def even_distribution(n: float, layers: int) -> List[float]:
    """Split ``n`` nodes evenly across ``layers`` layers."""
    n = check_positive("n", n)
    layers = check_positive_int("layers", layers)
    return [n / layers] * layers


def _weighted_tail_distribution(
    n: float, layers: int, tail_weights: Sequence[float]
) -> List[float]:
    """First layer gets ``n / layers``; the rest is split by ``tail_weights``."""
    n = check_positive("n", n)
    layers = check_positive_int("layers", layers)
    if layers == 1:
        return [n]
    if len(tail_weights) != layers - 1:
        raise ConfigurationError(
            f"need {layers - 1} tail weights, got {len(tail_weights)}"
        )
    first = n / layers
    remaining = n - first
    total_weight = float(sum(tail_weights))
    if total_weight <= 0:
        raise ConfigurationError("tail weights must sum to a positive value")
    return [first] + [remaining * w / total_weight for w in tail_weights]


def increasing_distribution(n: float, layers: int) -> List[float]:
    """First layer ``n/L``; layers ``2..L`` in proportion ``1:2:...:L-1``."""
    return _weighted_tail_distribution(n, layers, list(range(1, layers)))


def decreasing_distribution(n: float, layers: int) -> List[float]:
    """First layer ``n/L``; layers ``2..L`` in proportion ``L-1:...:1``."""
    return _weighted_tail_distribution(n, layers, list(range(layers - 1, 0, -1)))


_POLICIES: Dict[NodeDistribution, Callable[[float, int], List[float]]] = {
    NodeDistribution.EVEN: even_distribution,
    NodeDistribution.INCREASING: increasing_distribution,
    NodeDistribution.DECREASING: decreasing_distribution,
}


def distribute(
    n: float, layers: int, policy: "NodeDistribution | str" = NodeDistribution.EVEN
) -> List[float]:
    """Split ``n`` SOS nodes across ``layers`` layers under ``policy``.

    ``policy`` may be a :class:`NodeDistribution` member or its string value.
    """
    try:
        policy = NodeDistribution(policy)
    except ValueError as exc:
        names = ", ".join(p.value for p in NodeDistribution)
        raise ConfigurationError(
            f"unknown node distribution {policy!r}; expected one of: {names}"
        ) from exc
    return _POLICIES[policy](n, layers)


def integerize(allocation: Sequence[float]) -> List[int]:
    """Round a fractional allocation to integers preserving the total.

    Uses largest-remainder (Hamilton) rounding: floor every share, then hand
    the leftover units to the layers with the largest fractional parts.
    The input total must itself be (near-)integral.
    """
    if not allocation:
        raise ConfigurationError("allocation must be non-empty")
    if any(a < 0 for a in allocation):
        raise ConfigurationError(f"allocation must be non-negative: {allocation!r}")
    total = sum(allocation)
    target = round(total)
    if abs(total - target) > 1e-6:
        raise ConfigurationError(
            f"allocation total {total!r} is not integral; cannot integerize"
        )
    floors = [math.floor(a) for a in allocation]
    leftover = target - sum(floors)
    remainders = sorted(
        range(len(allocation)),
        key=lambda i: (allocation[i] - floors[i], -i),
        reverse=True,
    )
    result = list(floors)
    for index in remainders[:leftover]:
        result[index] += 1
    return result
