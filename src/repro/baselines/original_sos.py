"""Baseline: the original SOS analysis (Keromytis et al., SIGCOMM 2002).

The original paper evaluates the fixed 3-layer, one-to-all architecture
under *random congestion-based* attacks: the attacker congests ``N_C``
overlay nodes chosen uniformly at random, and communication fails exactly
when some layer is congested in its entirety (with one-to-all mapping,
a single survivor in every layer keeps a path alive).

Unlike the generalized model's average-case approximation, this baseline is
computed *exactly* by inclusion-exclusion over layers:

    P(layers S all fully congested) = C(N - k_S, N_C - k_S) / C(N, N_C)

with ``k_S`` the total size of the layers in ``S``. That also gives an
independent correctness oracle for the generalized model in the special
case ``N_T = 0``, one-to-all (they agree closely; see
``tests/baselines/test_original_sos.py``).
"""

from __future__ import annotations

import itertools
import math
from typing import Sequence

from repro.contracts import returns_probability
from repro.core.architecture import original_sos_architecture
from repro.core.attack_models import OneBurstAttack
from repro.core.model import evaluate
from repro.errors import ConfigurationError


@returns_probability
def _fully_congested_probability(
    total: int, congested: int, subset_size: int
) -> float:
    """P that a specific set of ``subset_size`` nodes is entirely congested
    when ``congested`` of ``total`` nodes are congested uniformly at random."""
    if subset_size > congested:
        return 0.0
    return math.comb(total - subset_size, congested - subset_size) / math.comb(
        total, congested
    )


def exact_random_congestion_ps(
    layer_sizes: Sequence[int], total_overlay_nodes: int, congestion_budget: int
) -> float:
    """Exact ``P_S`` for one-to-all layers under uniform random congestion.

    Parameters
    ----------
    layer_sizes:
        Integer SOS layer sizes ``n_1 .. n_L`` (filters are untouchable by
        random congestion and excluded, matching both papers).
    total_overlay_nodes:
        ``N`` — the population the congestion budget spreads over.
    congestion_budget:
        ``N_C`` — number of randomly congested nodes.
    """
    if any(size < 1 for size in layer_sizes):
        raise ConfigurationError(f"layer sizes must be >= 1, got {layer_sizes!r}")
    if sum(layer_sizes) > total_overlay_nodes:
        raise ConfigurationError("layers exceed the overlay population")
    if not 0 <= congestion_budget <= total_overlay_nodes:
        raise ConfigurationError(
            f"congestion budget {congestion_budget} out of range "
            f"[0, {total_overlay_nodes}]"
        )
    layers = list(layer_sizes)
    # Inclusion-exclusion over which layers are fully congested.
    failure = 0.0
    for r in range(1, len(layers) + 1):
        sign = (-1.0) ** (r + 1)
        for subset in itertools.combinations(layers, r):
            failure += sign * _fully_congested_probability(
                total_overlay_nodes, congestion_budget, sum(subset)
            )
    return min(1.0, max(0.0, 1.0 - failure))


def original_sos_ps(
    congestion_budget: int,
    total_overlay_nodes: int = 10_000,
    sos_nodes: int = 100,
) -> float:
    """Exact ``P_S`` of the original SOS design under random congestion.

    The original design: 3 layers, even split, one-to-all mapping.

    Examples
    --------
    >>> round(original_sos_ps(congestion_budget=0), 6)
    1.0
    >>> original_sos_ps(congestion_budget=10_000)
    0.0
    """
    arch = original_sos_architecture(
        total_overlay_nodes=total_overlay_nodes, sos_nodes=sos_nodes
    )
    return exact_random_congestion_ps(
        arch.integer_layer_sizes, total_overlay_nodes, congestion_budget
    )


def generalized_model_ps(
    congestion_budget: int,
    total_overlay_nodes: int = 10_000,
    sos_nodes: int = 100,
) -> float:
    """The generalized average-case model evaluated at the same point.

    Used to cross-validate the two derivations (exact vs average-case).
    """
    arch = original_sos_architecture(
        total_overlay_nodes=total_overlay_nodes, sos_nodes=sos_nodes
    )
    attack = OneBurstAttack(
        break_in_budget=0, congestion_budget=congestion_budget
    )
    return evaluate(arch, attack).p_s
