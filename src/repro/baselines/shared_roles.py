"""Shared-roles SOS: every node serves every layer (and why that's bad).

The original SOS analysis assumes "each node can simultaneously provide
the functionality of nodes at multiple layers"; the paper under
reproduction refuses that assumption because "once such a node is
broken-into, nodes in several other layers will be disclosed" (§3.1).
This module quantifies the refusal.

Model: the same ``n`` SOS nodes serve all ``L`` layers. Every node keeps
``L`` neighbor tables (one per layer it forwards into, each of degree
``m_i``) drawn from the same pool, plus the servlet-role filter table.

* **Upside** (why the original paper liked it): every layer effectively
  has ``n`` nodes instead of ``n / L``, so random congestion must kill the
  whole pool to sever a hop — shared roles *beat* dedicated layering under
  pure congestion.
* **Downside** (this paper's point): one break-in discloses ``L`` tables
  at once, and the disclosure probability compounds as
  ``1 - prod_i (1 - m_i/n)^b``. Under break-in attacks the shared design
  collapses while the dedicated one stands.

Both effects are asserted in ``tests/baselines/test_shared_roles.py`` and
shown by the ``abl-shared`` experiment.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack
from repro.core.probability import (
    clamp,
    hop_success_probability,
    no_fresh_disclosure_probability,
)
from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SharedRolesBreakdown:
    """Average-case sets for the shared-roles one-burst analysis."""

    attempted: float  # h — attempts landing on the shared pool
    broken_in: float  # b
    disclosed_unattacked: float  # d^N in the pool
    disclosed_survived: float  # d^A in the pool
    disclosed_filters: float  # d^N_{L+1}
    congested: float  # c in the pool
    congested_filters: float
    p_s: float


def analyze_shared_roles_one_burst(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> SharedRolesBreakdown:
    """One-burst analysis when all ``n`` nodes serve all ``L`` layers.

    The ``architecture`` supplies ``n``, ``N``, ``L``, the per-layer
    mapping degrees, and the filter count; its node *distribution* is
    irrelevant because the pool is shared.
    """
    if attack.n_t > architecture.total_overlay_nodes:
        raise ConfigurationError("break_in_budget exceeds overlay population")
    n = float(architecture.sos_nodes)
    total = float(architecture.total_overlay_nodes)
    filters = float(architecture.filters)
    # Mapping policies resolve against the *shared pool* (every layer has
    # all n nodes), so one-to-half means n/2 neighbors, not (n/L)/2.
    pool_degrees = [
        policy.degree_for(n) for policy in architecture.layer_mapping_policies
    ]
    filter_degree = architecture.mapping_degrees[-1]

    # Break-in phase: uniform attempts over the overlay.
    attempted = clamp(n / total * attack.n_t, 0.0, n)
    broken = attack.p_b * attempted

    # Disclosure: a broken node leaks all L of its tables at once.
    survive = 1.0
    for degree in pool_degrees:
        survive *= no_fresh_disclosure_probability(degree, n, broken)
    untouched = clamp(1.0 - attempted / n, 0.0, 1.0)
    z = n * (1.0 - survive * untouched)
    disclosed_unattacked = clamp(z - attempted, 0.0, n)
    disclosed_survived = clamp(
        (attempted - broken) * (1.0 - survive), 0.0, n
    )
    disclosed_filters = filters * (
        1.0 - no_fresh_disclosure_probability(filter_degree, filters, broken)
    )

    # Congestion phase (Eq. 8/9 with a single pool).
    n_d = disclosed_unattacked + disclosed_survived + disclosed_filters
    if attack.n_c >= n_d:
        surplus = attack.n_c - n_d
        pool = total - broken - (n_d - disclosed_filters)
        fraction = 0.0 if pool <= 0 else min(1.0, surplus / pool)
        remaining = max(
            0.0, n - broken - disclosed_unattacked - disclosed_survived
        )
        congested = (
            disclosed_unattacked + disclosed_survived + fraction * remaining
        )
        congested_filters = disclosed_filters
    else:
        share = attack.n_c / n_d if n_d > 0 else 0.0
        congested = share * (disclosed_unattacked + disclosed_survived)
        congested_filters = share * disclosed_filters

    bad = clamp(broken + congested, 0.0, n)
    bad_filters = clamp(congested_filters, 0.0, filters)
    p_s = 1.0
    for degree in pool_degrees:
        p_s *= hop_success_probability(n, bad, degree)
    p_s *= hop_success_probability(filters, bad_filters, filter_degree)

    return SharedRolesBreakdown(
        attempted=attempted,
        broken_in=broken,
        disclosed_unattacked=disclosed_unattacked,
        disclosed_survived=disclosed_survived,
        disclosed_filters=disclosed_filters,
        congested=congested,
        congested_filters=congested_filters,
        p_s=clamp(p_s, 0.0, 1.0),
    )


def shared_roles_ps(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> float:
    """Shorthand returning just ``P_S`` for the shared-roles design."""
    return analyze_shared_roles_one_burst(architecture, attack).p_s


def shared_vs_dedicated(
    architecture: SOSArchitecture, attack: OneBurstAttack
) -> Tuple[float, float]:
    """``(shared_roles_p_s, dedicated_p_s)`` at the same parameter point."""
    from repro.core.one_burst import analyze_one_burst

    return (
        shared_roles_ps(architecture, attack),
        analyze_one_burst(architecture, attack).p_s,
    )
