"""Baseline: no overlay at all (the scenario SOS exists to prevent).

Without SOS, the target's address is public infrastructure knowledge. Two
framing points the SOS papers make:

* an attacker who knows the target simply floods it — ``P_S = 0`` whenever
  it can afford a single congestion unit;
* even a *blind* attacker spraying ``N_C`` flows over ``N`` addresses takes
  the target down with probability ``N_C / N``.

These trivial formulas anchor the comparisons in the examples and the
ablation benchmarks.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def direct_target_ps(
    congestion_budget: float,
    total_addresses: int = 10_000,
    target_known: bool = True,
) -> float:
    """``P_S`` for a directly exposed target.

    Parameters
    ----------
    congestion_budget:
        ``N_C`` — attack flows available.
    total_addresses:
        Address-space size a blind attacker sprays over.
    target_known:
        True (default) when the attacker knows where the target is.
    """
    if congestion_budget < 0:
        raise ConfigurationError("congestion_budget must be >= 0")
    if total_addresses < 1:
        raise ConfigurationError("total_addresses must be >= 1")
    if congestion_budget == 0:
        return 1.0
    if target_known:
        return 0.0
    return max(0.0, 1.0 - congestion_budget / total_addresses)
