"""Baselines the paper compares against (original SOS, no overlay)."""

from repro.baselines.direct import direct_target_ps
from repro.baselines.original_sos import (
    exact_random_congestion_ps,
    generalized_model_ps,
    original_sos_ps,
)
from repro.baselines.shared_roles import (
    analyze_shared_roles_one_burst,
    shared_roles_ps,
    shared_vs_dedicated,
)

__all__ = [
    "direct_target_ps",
    "exact_random_congestion_ps",
    "generalized_model_ps",
    "original_sos_ps",
    "analyze_shared_roles_one_burst",
    "shared_roles_ps",
    "shared_vs_dedicated",
]
