"""Probabilistic packet marking for DDoS traceback.

Implements Savage-style edge sampling as analyzed by Barak-Pelleg et
al. ("The Time for Reconstructing the Attack Graph in DDoS Attacks",
arXiv:2304.05204, and "Algorithms for Reconstructing DDoS Attack Graphs
using Probabilistic Packet Marking", arXiv:2304.05123): every router on
an attack path overwrites a single mark slot in each forwarded packet
with probability ``p`` and stamps ``distance = 0``; a router that sees
an already-marked packet increments the distance instead. The victim
therefore receives the edge written by the *last* marking router, so the
router at distance ``j`` hops from the victim is the surviving marker
with probability ``p * (1 - p)**j``, and a packet arrives unmarked with
probability ``(1 - p)**D`` on a depth-``D`` path.

The SOS paper's attackers are an abstract flood against overlay nodes —
there is no modelled network between a zombie and the overlay. This
module supplies that missing piece as *synthetic attack paths*: each
flood target (victim) is assiged a small set of attack sources, each
reaching the victim through its own chain of ``path_depth`` synthetic
routers. Construction is deterministic (sequential synthetic ids, no
RNG), so both packet engines agree on the ground truth exactly.

The per-packet randomness — which source emitted the packet and which
router's mark survived — is driven by uniforms from dedicated RNG
sub-streams owned by the simulation engines, two per flood packet. The
scalar entry point delegates to the batch entry point with a length-1
array, so the event-driven and vectorized engines produce bit-identical
mark tallies whenever they draw the same uniforms (they do: the flood
streams are bit-identical by construction, see
``tests/detection/test_equivalence.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import DetectionError
from repro.utils.validation import check_probability

__all__ = [
    "MarkingConfig",
    "AttackPath",
    "AttackGraph",
    "build_attack_graph",
    "PacketMark",
    "MarkTally",
    "MarkCollector",
]

#: Synthetic ids for attack-path routers and sources live far above any
#: overlay node id (overlay ids are bounded by the Chord space size).
ROUTER_ID_BASE = 1 << 40
SOURCE_ID_BASE = 1 << 41


@dataclasses.dataclass(frozen=True)
class MarkingConfig:
    """Parameters of the marking scheme and the synthetic attack graph.

    Attributes
    ----------
    probability:
        Per-hop marking probability ``p``.
    sources_per_target:
        Number of attack sources (zombies) flooding each victim.
    path_depth:
        Routers on each source→victim path (``D`` in the analysis).
    """

    probability: float = 0.05
    sources_per_target: int = 2
    path_depth: int = 6

    def __post_init__(self) -> None:
        check_probability("probability", self.probability)
        if not 0.0 < self.probability < 1.0:
            raise DetectionError(
                "marking probability must be in (0, 1), got "
                f"{self.probability}"
            )
        if self.sources_per_target < 1:
            raise DetectionError(
                "sources_per_target must be >= 1, got "
                f"{self.sources_per_target}"
            )
        if self.path_depth < 1:
            raise DetectionError(
                f"path_depth must be >= 1, got {self.path_depth}"
            )


@dataclasses.dataclass(frozen=True)
class AttackPath:
    """One ground-truth attack path: ``source -> routers... -> victim``.

    ``routers`` is ordered source-side first; ``routers[-1]`` is the
    router adjacent to the victim.
    """

    source: int
    victim: int
    routers: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.routers)

    def hop_at_distance(self, distance: int) -> int:
        """Router ``distance`` hops upstream of the victim (0 = adjacent)."""
        if not 0 <= distance < self.depth:
            raise DetectionError(
                f"distance {distance} outside path of depth {self.depth}"
            )
        return self.routers[self.depth - 1 - distance]

    def edge_at_distance(self, distance: int) -> "PacketMark":
        """The mark written when the distance-``distance`` router survives."""
        start = self.hop_at_distance(distance)
        end = self.victim if distance == 0 else self.hop_at_distance(distance - 1)
        return PacketMark(start=start, end=end, distance=distance)


class AttackGraph:
    """Ground truth: the set of attack paths behind a flood."""

    def __init__(self, paths: Sequence[AttackPath]) -> None:
        if not paths:
            raise DetectionError("an attack graph needs at least one path")
        self._by_victim: Dict[int, List[AttackPath]] = {}
        for path in paths:
            self._by_victim.setdefault(path.victim, []).append(path)
        self.paths: Tuple[AttackPath, ...] = tuple(paths)

    def victims(self) -> List[int]:
        return sorted(self._by_victim)

    def paths_for(self, victim: int) -> List[AttackPath]:
        if victim not in self._by_victim:
            raise DetectionError(
                f"victim {victim} is not part of this attack graph"
            )
        return list(self._by_victim[victim])

    def sources_for(self, victim: int) -> List[int]:
        """Sources flooding ``victim``, in per-victim index order."""
        return [path.source for path in self.paths_for(victim)]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Every directed ``(start, end)`` edge across all paths."""
        for path in self.paths:
            for distance in range(path.depth):
                mark = path.edge_at_distance(distance)
                yield (mark.start, mark.end)

    def __len__(self) -> int:
        return len(self.paths)


def build_attack_graph(
    targets: Sequence[int], config: MarkingConfig
) -> AttackGraph:
    """Deterministic node-disjoint synthetic attack graph for ``targets``.

    Each victim gets ``sources_per_target`` sources, each with its own
    disjoint chain of ``path_depth`` routers, with ids assigned
    sequentially in sorted-victim order — so both engines (and every
    replica of a run) construct the identical ground truth without
    consuming any RNG stream.
    """
    if not targets:
        raise DetectionError("cannot build an attack graph for no targets")
    if len(set(targets)) != len(targets):
        raise DetectionError("flood targets must be distinct")
    paths: List[AttackPath] = []
    next_router = ROUTER_ID_BASE
    next_source = SOURCE_ID_BASE
    for victim in sorted(targets):
        for _ in range(config.sources_per_target):
            routers = tuple(
                range(next_router, next_router + config.path_depth)
            )
            next_router += config.path_depth
            paths.append(
                AttackPath(source=next_source, victim=victim, routers=routers)
            )
            next_source += 1
    return AttackGraph(paths)


@dataclasses.dataclass(frozen=True)
class PacketMark:
    """The mark carried by a flood packet: one edge plus its distance.

    ``start -> end`` is the edge written by the surviving marker;
    ``distance`` counts hops from the victim (0 = ``end`` is the
    victim itself).
    """

    start: int
    end: int
    distance: int


@dataclasses.dataclass
class MarkTally:
    """How often a mark was seen and when it first arrived.

    ``first_packet`` is the 1-based index of the first flood packet (in
    per-victim arrival order) that carried this mark — the quantity the
    packets-needed-vs-accuracy analysis is built on.
    """

    count: int
    first_packet: int


class MarkCollector:
    """Victim-side accumulator of packet marks.

    The engines call :meth:`observe` (event-driven) or
    :meth:`observe_batch` (vectorized) once per flood packet *arriving
    at* a victim, passing two uniforms: ``u_source`` selects which of
    the victim's sources emitted the packet, ``u_mark`` drives the
    geometric edge-sampling outcome. State is per-victim packet counts
    plus a tally per distinct mark — O(sources × depth) memory however
    long the flood runs.
    """

    def __init__(self, graph: AttackGraph, config: MarkingConfig) -> None:
        self.graph = graph
        self.config = config
        self.packets_per_victim: Dict[int, int] = {
            victim: 0 for victim in graph.victims()
        }
        self._tallies: Dict[int, Dict[PacketMark, MarkTally]] = {
            victim: {} for victim in graph.victims()
        }

    @property
    def packets_observed(self) -> int:
        return sum(self.packets_per_victim.values())

    def observe(self, victim: int, u_source: float, u_mark: float) -> None:
        """Record one flood packet at ``victim`` (scalar entry point).

        Delegates to :meth:`observe_batch` with a length-1 array so the
        scalar and batch paths share every piece of floating-point
        arithmetic bit for bit.
        """
        self.observe_batch(
            victim, np.array([[u_source, u_mark]], dtype=np.float64)
        )

    def observe_batch(
        self, victim: int, uniforms: npt.NDArray[np.float64]
    ) -> None:
        """Record a batch of flood packets at ``victim``.

        ``uniforms`` has shape ``(n, 2)``: column 0 selects the source,
        column 1 drives edge sampling. Rows are in packet-arrival order.
        """
        if victim not in self._tallies:
            raise DetectionError(
                f"marks observed for unknown victim {victim}"
            )
        uniforms = np.asarray(uniforms, dtype=np.float64)
        if uniforms.ndim != 2 or uniforms.shape[1] != 2:
            raise DetectionError(
                f"uniforms must have shape (n, 2), got {uniforms.shape}"
            )
        count = int(uniforms.shape[0])
        if count == 0:
            return
        base = self.packets_per_victim[victim]
        self.packets_per_victim[victim] = base + count
        paths = self.graph.paths_for(victim)
        depth = self.config.path_depth
        p = self.config.probability
        # Inverse-CDF geometric: the surviving marker sits at distance
        # j with P(j) = p * (1-p)^j; j >= depth means the packet arrives
        # unmarked ((1-p)^depth overall).
        distances = np.floor(
            np.log1p(-uniforms[:, 1]) / np.log1p(-p)
        ).astype(np.int64)
        marked = distances < depth
        if not bool(marked.any()):
            return
        source_index = np.minimum(
            (uniforms[:, 0] * len(paths)).astype(np.int64), len(paths) - 1
        )
        codes = source_index[marked] * depth + distances[marked]
        packet_numbers = np.flatnonzero(marked) + (base + 1)
        unique, first_rows, counts = np.unique(
            codes, return_index=True, return_counts=True
        )
        tallies = self._tallies[victim]
        for code, first_row, seen in zip(
            unique.tolist(), first_rows.tolist(), counts.tolist()
        ):
            path_index, distance = divmod(code, depth)
            mark = paths[path_index].edge_at_distance(distance)
            first = int(packet_numbers[first_row])
            tally = tallies.get(mark)
            if tally is None:
                tallies[mark] = MarkTally(count=int(seen), first_packet=first)
            else:
                tally.count += int(seen)
                if first < tally.first_packet:
                    tally.first_packet = first

    def marks_for(self, victim: int) -> Dict[PacketMark, MarkTally]:
        """All distinct marks collected at ``victim`` (tally copies)."""
        if victim not in self._tallies:
            raise DetectionError(
                f"victim {victim} is not part of this attack graph"
            )
        return {
            mark: MarkTally(count=tally.count, first_packet=tally.first_packet)
            for mark, tally in self._tallies[victim].items()
        }

    def distinct_marks(self) -> int:
        return sum(len(tallies) for tallies in self._tallies.values())
