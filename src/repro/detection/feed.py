"""Adapters feeding detection output into the repair loop.

:class:`~repro.repair.defender.RepairingDefender` accepts any detector
exposing the :class:`~repro.resilience.detector.FailureDetector`
protocol — ``scan(deployment, now) -> List[int]`` and
``forget(node_id)``. This module provides two such detectors for the
detect→traceback→repair workload:

* :class:`MonitorBackedDetector` wraps a
  :class:`~repro.detection.monitor.TrafficMonitor`: a scan returns the
  members the change-point statistics have flagged by ``now`` — repair
  driven purely by observed traffic, false positives and detection
  latency included.
* :class:`OracleFloodDetector` returns the ground-truth flood targets —
  the omniscient upper bound the detection-driven numbers are compared
  against in the ``det-traceback`` experiment.

Both detectors are deterministic given their inputs (neither consumes
an RNG stream), and both return node ids in the same layer-membership
order the heartbeat detector uses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError
from repro.sos.deployment import SOSDeployment

__all__ = ["MonitorBackedDetector", "OracleFloodDetector"]


def _membership_order(
    deployment: SOSDeployment, candidates: Set[int]
) -> List[int]:
    """Filter ``candidates`` to current members, in layer-membership order."""
    ordered: List[int] = []
    for layer in range(1, deployment.architecture.layers + 2):
        for node_id in deployment.layer_members(layer):
            if node_id in candidates:
                ordered.append(node_id)
    return ordered


class MonitorBackedDetector:
    """Drive repair from a :class:`TrafficMonitor`'s flags.

    One detector typically spans several monitor lifetimes (the repair
    loop attaches a fresh monitor per flood phase via :meth:`attach`);
    ``forget`` suppresses a repaired node until the next attach so one
    phase's evidence cannot repair the same node twice.
    """

    def __init__(
        self,
        monitor: Optional[TrafficMonitor] = None,
        config: Optional[MonitorConfig] = None,
    ) -> None:
        self.monitor = monitor
        self.config = config
        self._forgotten: Set[int] = set()
        self.last_detected: List[int] = []
        self.scans = 0

    def attach(self, monitor: TrafficMonitor) -> None:
        """Point the detector at a new run's evidence."""
        self.monitor = monitor
        self._forgotten.clear()

    def scan(self, deployment: SOSDeployment, now: float) -> List[int]:
        """Members flagged by the monitor's evidence up to ``now``."""
        self.scans += 1
        if self.monitor is None:
            raise DetectionError(
                "MonitorBackedDetector.scan before any monitor was attached"
            )
        flagged = set(
            self.monitor.flagged_nodes(config=self.config)
        ) - self._forgotten
        self.last_detected = _membership_order(deployment, flagged)
        return list(self.last_detected)

    def forget(self, node_id: int) -> None:
        self._forgotten.add(node_id)


class OracleFloodDetector:
    """Ground-truth detector: flags exactly the current flood targets.

    The comparison baseline for detection-driven repair; mirrors the
    paper's omniscient defender, restricted to nodes actually under
    flood.
    """

    def __init__(self, targets: Iterable[int]) -> None:
        self._targets: Set[int] = set(targets)
        self._forgotten: Set[int] = set()
        self.last_detected: List[int] = []
        self.scans = 0

    def retarget(self, targets: Iterable[int]) -> None:
        """Update the ground truth for the next flood phase."""
        self._targets = set(targets)
        self._forgotten.clear()

    def scan(self, deployment: SOSDeployment, now: float) -> List[int]:
        self.scans += 1
        self.last_detected = _membership_order(
            deployment, self._targets - self._forgotten
        )
        return list(self.last_detected)

    def forget(self, node_id: int) -> None:
        self._forgotten.add(node_id)
