"""Attack-graph reconstruction from collected packet marks.

Given the marks a victim accumulated (see
:class:`~repro.detection.marking.MarkCollector`), the reconstructor
rebuilds each attack path by chaining edges outward from the victim:
start with the distance-0 marks (edges whose ``end`` is the victim) and
repeatedly extend each partial path with the unique distance-``d+1``
mark whose ``end`` matches the path's current tip. Because the synthetic
attack graphs are node-disjoint, a fully-marked path always chains
unambiguously; a path stalls only when some hop's mark has not arrived
yet (or, under a packet *budget*, had not arrived within the budget).

The packets-needed-vs-accuracy analysis follows Barak-Pelleg et al.
(arXiv:2304.05204): a depth-``D`` path is recoverable exactly when all
``D`` of its edge marks have been received, so the packets needed for
one path is the *maximum* over its marks' first-arrival indices — a
coupon-collector maximum whose tail the accuracy curves trace. Budgets
are evaluated post-hoc against recorded first-arrival packet indices,
so one simulation yields the whole curve.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detection.marking import (
    AttackGraph,
    AttackPath,
    MarkCollector,
    PacketMark,
)
from repro.errors import DetectionError

__all__ = ["ReconstructedPath", "TracebackReport", "AttackGraphReconstructor"]


@dataclasses.dataclass(frozen=True)
class ReconstructedPath:
    """One path chained out of a victim's marks.

    ``routers`` is ordered source-side first (same convention as
    :class:`~repro.detection.marking.AttackPath`); ``complete`` is True
    when the chain stopped of its own accord rather than at the
    collector's depth limit.
    """

    victim: int
    routers: Tuple[int, ...]
    #: True when the chain reached the full configured path depth;
    #: False when it stalled early (a missing mark or an ambiguity).
    complete: bool


@dataclasses.dataclass(frozen=True)
class TracebackReport:
    """Accuracy of a reconstruction against the ground-truth graph.

    Attributes
    ----------
    total_paths / recovered_paths / recovery_rate:
        A true path counts as recovered when some reconstructed path
        matches its router chain exactly.
    packets_observed / per_victim_packets:
        Flood packets the collector saw (overall and per victim).
    budget:
        The packet budget the reconstruction was restricted to
        (``None`` = all observed packets).
    needed_per_path:
        For each fully-marked true path, the per-victim packet index by
        which its last missing mark arrived — i.e. the packets that
        victim needed to recover that path. Unrecoverable paths are
        omitted.
    """

    total_paths: int
    recovered_paths: int
    recovery_rate: float
    packets_observed: int
    per_victim_packets: Dict[int, int]
    budget: Optional[int]
    needed_per_path: Tuple[int, ...]

    def packets_needed(self, accuracy: float) -> Optional[int]:
        """Smallest per-victim budget recovering ``accuracy`` of all paths.

        Returns ``None`` when even the full observed stream falls short.
        """
        if not 0.0 < accuracy <= 1.0:
            raise DetectionError(
                f"accuracy must be in (0, 1], got {accuracy}"
            )
        required = accuracy * self.total_paths
        if len(self.needed_per_path) < required:
            return None
        ranked = sorted(self.needed_per_path)
        # Smallest k with k paths recovered >= required, then the budget
        # is the k-th smallest per-path requirement.
        index = -1
        for rank, needed in enumerate(ranked, start=1):
            if rank >= required:
                index = rank - 1
                break
        if index < 0:
            return None
        return ranked[index]


class AttackGraphReconstructor:
    """Rebuild attack paths from a :class:`MarkCollector`'s tallies."""

    def __init__(self, collector: MarkCollector) -> None:
        self.collector = collector

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def _marks_within(
        self, victim: int, budget: Optional[int]
    ) -> Dict[int, List[PacketMark]]:
        """Marks available at ``victim`` under ``budget``, keyed by distance."""
        by_distance: Dict[int, List[PacketMark]] = {}
        for mark, tally in self.collector.marks_for(victim).items():
            if budget is not None and tally.first_packet > budget:
                continue
            by_distance.setdefault(mark.distance, []).append(mark)
        return by_distance

    def reconstruct(
        self, victim: int, budget: Optional[int] = None
    ) -> List[ReconstructedPath]:
        """Chain the victim's marks into paths.

        ``budget`` restricts the evidence to marks first seen within the
        victim's first ``budget`` flood packets. Chaining from a
        distance-0 mark stops when no mark extends the tip or when two
        candidate marks compete for it (ambiguity never arises on the
        node-disjoint synthetic graphs, but the reconstructor does not
        assume disjointness).
        """
        if budget is not None and budget < 0:
            raise DetectionError(f"budget must be >= 0, got {budget}")
        by_distance = self._marks_within(victim, budget)
        depth = self.collector.config.path_depth
        paths: List[ReconstructedPath] = []
        for seed_mark in sorted(
            by_distance.get(0, []), key=lambda mark: mark.start
        ):
            # routers accumulates victim-adjacent first; reversed at the end.
            routers = [seed_mark.start]
            for distance in range(1, depth):
                candidates = [
                    mark
                    for mark in by_distance.get(distance, [])
                    if mark.end == routers[-1]
                ]
                if len(candidates) != 1:
                    break
                routers.append(candidates[0].start)
            paths.append(
                ReconstructedPath(
                    victim=victim,
                    routers=tuple(reversed(routers)),
                    complete=len(routers) == depth,
                )
            )
        return paths

    # ------------------------------------------------------------------
    # Evaluation against ground truth
    # ------------------------------------------------------------------
    def _needed_for(self, path: AttackPath) -> Optional[int]:
        """Per-victim packets after which ``path`` is fully marked."""
        tallies = self.collector.marks_for(path.victim)
        worst = 0
        for distance in range(path.depth):
            tally = tallies.get(path.edge_at_distance(distance))
            if tally is None:
                return None
            worst = max(worst, tally.first_packet)
        return worst

    def evaluate(
        self, graph: AttackGraph, budget: Optional[int] = None
    ) -> TracebackReport:
        """Reconstruct every victim and score against ``graph``.

        The collector's own graph is the usual ground truth; passing a
        different graph with other victims raises.
        """
        if set(graph.victims()) - set(self.collector.graph.victims()):
            raise DetectionError(
                "traceback evaluated against a graph with victims the "
                "collector never observed"
            )
        total = 0
        recovered = 0
        needed: List[int] = []
        for victim in graph.victims():
            truth = graph.paths_for(victim)
            total += len(truth)
            rebuilt = {
                path.routers
                for path in self.reconstruct(victim, budget=budget)
                if path.complete
            }
            for true_path in truth:
                if true_path.routers in rebuilt:
                    recovered += 1
                packets = self._needed_for(true_path)
                if packets is not None:
                    needed.append(packets)
        return TracebackReport(
            total_paths=total,
            recovered_paths=recovered,
            recovery_rate=recovered / total if total else 0.0,
            packets_observed=self.collector.packets_observed,
            per_victim_packets=dict(self.collector.packets_per_victim),
            budget=budget,
            needed_per_path=tuple(sorted(needed)),
        )

    def accuracy_curve(
        self, graph: AttackGraph, budgets: Sequence[int]
    ) -> List[float]:
        """Recovery rate at each per-victim packet budget.

        Non-decreasing in the budget by construction: a larger budget
        only adds marks.
        """
        return [
            self.evaluate(graph, budget=budget).recovery_rate
            for budget in budgets
        ]
