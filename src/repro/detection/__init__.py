"""Online attack detection, packet-marking traceback, and the repair loop.

The subsystem has three cooperating parts (see ``docs/DETECTION.md``):

* :mod:`repro.detection.monitor` — per-node binned traffic counters
  with EWMA/CUSUM change-point detection over the packet stream, no
  oracle access to attacker state.
* :mod:`repro.detection.marking` / :mod:`repro.detection.traceback` —
  probabilistic packet marking over synthetic attack paths and
  reconstruction of the attack graph from collected marks, after
  Barak-Pelleg et al. (arXiv:2304.05204, arXiv:2304.05123).
* :mod:`repro.detection.feed` / :mod:`repro.detection.loop` — adapters
  feeding detection output into
  :class:`~repro.repair.defender.RepairingDefender` and the multi-phase
  detect → traceback → repair campaign driver.
"""

from repro.detection.feed import MonitorBackedDetector, OracleFloodDetector
from repro.detection.loop import (
    DetectionRepairLoop,
    LOOP_MODES,
    LoopResult,
    PhaseOutcome,
)
from repro.detection.marking import (
    AttackGraph,
    AttackPath,
    MarkCollector,
    MarkTally,
    MarkingConfig,
    PacketMark,
    build_attack_graph,
)
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.detection.traceback import (
    AttackGraphReconstructor,
    ReconstructedPath,
    TracebackReport,
)

__all__ = [
    "MonitorConfig",
    "TrafficMonitor",
    "MarkingConfig",
    "AttackPath",
    "AttackGraph",
    "build_attack_graph",
    "PacketMark",
    "MarkTally",
    "MarkCollector",
    "AttackGraphReconstructor",
    "ReconstructedPath",
    "TracebackReport",
    "MonitorBackedDetector",
    "OracleFloodDetector",
    "DetectionRepairLoop",
    "LoopResult",
    "PhaseOutcome",
    "LOOP_MODES",
]
