"""The closed loop: detect → traceback → targeted repair.

:class:`DetectionRepairLoop` runs a multi-phase flooding campaign
against one deployment. Each phase simulates the flood with a fresh
:class:`~repro.detection.monitor.TrafficMonitor` attached, then lets a
:class:`~repro.repair.defender.RepairingDefender` act between phases:

* ``mode="none"`` — no repair; the flood persists (lower bound).
* ``mode="oracle"`` — the defender is fed the ground-truth flood
  targets (:class:`~repro.detection.feed.OracleFloodDetector`), the
  omniscient upper bound matching the paper's defender.
* ``mode="detected"`` — the defender sees only what the monitor
  flagged (:class:`~repro.detection.feed.MonitorBackedDetector`):
  detection latency and false positives are paid for real.

Repairing a flooded node models re-keying + re-wiring: the attacker's
flood was aimed at the node's overlay identity, so once repaired the
node leaves the active flood set for subsequent phases (its capacity is
no longer consumed by attack traffic). Repairing a false positive
spends defender capacity for nothing — the cost the detection-driven
curve pays relative to the oracle.

Seeding follows the library-wide discipline: one
:class:`~numpy.random.SeedSequence` fans out into deployment, target
selection, defender, and per-phase simulation streams, so phase 0 is
bit-comparable across modes (they diverge only through repair) and
``fast=True``/``fast=False`` runs are engine-equivalent in the usual
two-tier sense.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.detection.feed import MonitorBackedDetector, OracleFloodDetector
from repro.detection.marking import (
    AttackGraph,
    MarkCollector,
    MarkingConfig,
    build_attack_graph,
)
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError
from repro.repair.policy import RepairPolicy
from repro.repair.defender import RepairingDefender
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import make_rng

__all__ = ["PhaseOutcome", "LoopResult", "DetectionRepairLoop", "LOOP_MODES"]

LOOP_MODES = ("none", "oracle", "detected")


@dataclasses.dataclass(frozen=True)
class PhaseOutcome:
    """What one flood phase delivered and what the defender did about it.

    ``flagged`` is what the monitor's change-point detection reported
    (recorded in every mode — observation is free); ``repaired`` is what
    the defender actually acted on, which depends on the mode.
    """

    phase: int
    delivery_ratio: float
    flooded: Tuple[int, ...]
    flagged: Tuple[int, ...]
    repaired: Tuple[int, ...]

    @property
    def false_positives(self) -> Tuple[int, ...]:
        """Flagged nodes that were not actually under flood."""
        under_flood = set(self.flooded)
        return tuple(n for n in self.flagged if n not in under_flood)

    @property
    def detected_true(self) -> Tuple[int, ...]:
        """Flagged nodes that really were under flood."""
        under_flood = set(self.flooded)
        return tuple(n for n in self.flagged if n in under_flood)


@dataclasses.dataclass
class LoopResult:
    """Full outcome of a multi-phase detection/repair campaign."""

    mode: str
    outcomes: List[PhaseOutcome]
    initial_targets: Tuple[int, ...]
    graph: Optional[AttackGraph]
    collector: Optional[MarkCollector]

    @property
    def final_delivery(self) -> float:
        return self.outcomes[-1].delivery_ratio

    @property
    def delivery_per_phase(self) -> List[float]:
        return [outcome.delivery_ratio for outcome in self.outcomes]

    @property
    def total_repaired(self) -> int:
        return sum(len(outcome.repaired) for outcome in self.outcomes)


class DetectionRepairLoop:
    """Drive repeated flood phases with between-phase repair.

    Parameters mirror the packet-sim experiment harnesses: the
    architecture and sim config define the scenario, the monitor config
    tunes detection, the policy bounds repair (its
    ``detection_probability`` must be 1 — probabilistic detection is the
    *detector's* job here), and an optional marking config additionally
    collects packet marks during phase 0 for traceback analysis.
    """

    def __init__(
        self,
        architecture: SOSArchitecture,
        sim_config: PacketSimConfig,
        monitor_config: MonitorConfig,
        policy: RepairPolicy,
        marking_config: Optional[MarkingConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        if policy.is_noop:
            raise DetectionError(
                "repair policy is a no-op (detection_probability <= 0); "
                "detector-driven repair needs detection_probability=1.0"
            )
        self.architecture = architecture
        self.sim_config = sim_config
        self.monitor_config = monitor_config
        self.policy = policy
        self.marking_config = marking_config
        self.seed = seed

    def run(
        self,
        mode: str = "detected",
        phases: int = 3,
        flood_layer_index: int = 1,
        flood_fraction: float = 0.5,
        fast: bool = True,
    ) -> LoopResult:
        """Run ``phases`` flood phases under the given repair ``mode``."""
        if mode not in LOOP_MODES:
            raise DetectionError(
                f"mode must be one of {LOOP_MODES}, got {mode!r}"
            )
        if phases < 1:
            raise DetectionError(f"phases must be >= 1, got {phases}")
        seeds = np.random.SeedSequence(self.seed).spawn(3 + phases)
        deployment = SOSDeployment.deploy(
            self.architecture, rng=make_rng(seeds[0])
        )
        targets = flood_layer(
            deployment,
            flood_layer_index,
            flood_fraction,
            rng=make_rng(seeds[1]),
        )

        graph: Optional[AttackGraph] = None
        collector: Optional[MarkCollector] = None
        if self.marking_config is not None:
            graph = build_attack_graph(targets, self.marking_config)
            collector = MarkCollector(graph, self.marking_config)

        defender: Optional[RepairingDefender] = None
        oracle_feed: Optional[OracleFloodDetector] = None
        monitor_feed: Optional[MonitorBackedDetector] = None
        if mode == "oracle":
            oracle_feed = OracleFloodDetector(targets)
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=oracle_feed
            )
        elif mode == "detected":
            monitor_feed = MonitorBackedDetector()
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=monitor_feed
            )

        active = list(targets)
        outcomes: List[PhaseOutcome] = []
        for phase in range(phases):
            monitor = TrafficMonitor(self.monitor_config)
            simulation = PacketLevelSimulation(
                deployment,
                self.sim_config,
                rng=make_rng(seeds[3 + phase]),
                monitor=monitor,
                marking=collector if phase == 0 else None,
            )
            report = simulation.run(flood_targets=active, fast=fast)
            flagged = tuple(monitor.flagged_nodes())

            repaired: Tuple[int, ...] = ()
            if defender is not None:
                if oracle_feed is not None:
                    oracle_feed.retarget(active)
                if monitor_feed is not None:
                    monitor_feed.attach(monitor)
                defender.scan_and_repair(
                    deployment, knowledge=None, now=float(phase)
                )
                repaired = tuple(defender.last_repaired)
            outcomes.append(
                PhaseOutcome(
                    phase=phase,
                    delivery_ratio=report.delivery_ratio,
                    flooded=tuple(active),
                    flagged=flagged,
                    repaired=repaired,
                )
            )
            # A repaired node is re-keyed: the attacker's flood against
            # its old identity no longer lands, so it leaves the active
            # set for later phases.
            if repaired:
                gone = set(repaired)
                active = [n for n in active if n not in gone]
        return LoopResult(
            mode=mode,
            outcomes=outcomes,
            initial_targets=tuple(targets),
            graph=graph,
            collector=collector,
        )
