"""The closed loop: detect → traceback → targeted repair.

:class:`DetectionRepairLoop` runs a multi-phase flooding campaign
against one deployment. Each phase simulates the flood with a fresh
:class:`~repro.detection.monitor.TrafficMonitor` attached, then lets a
:class:`~repro.repair.defender.RepairingDefender` act between phases:

* ``mode="none"`` — no repair; the flood persists (lower bound).
* ``mode="oracle"`` — the defender is fed the ground-truth flood
  targets (:class:`~repro.detection.feed.OracleFloodDetector`), the
  omniscient upper bound matching the paper's defender.
* ``mode="detected"`` — the defender sees only what the monitor
  flagged (:class:`~repro.detection.feed.MonitorBackedDetector`):
  detection latency and false positives are paid for real.

Repairing a flooded node models re-keying + re-wiring: the attacker's
flood was aimed at the node's overlay identity, so once repaired the
node leaves the active flood set for subsequent phases (its capacity is
no longer consumed by attack traffic). Repairing a false positive
spends defender capacity for nothing — the cost the detection-driven
curve pays relative to the oracle.

Seeding follows the library-wide discipline: one
:class:`~numpy.random.SeedSequence` fans out into deployment, target
selection, defender, and per-phase simulation streams, so phase 0 is
bit-comparable across modes (they diverge only through repair) and
``fast=True``/``fast=False`` runs are engine-equivalent in the usual
two-tier sense.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, List, Optional, Set, Tuple

import numpy as np

from repro.core.architecture import SOSArchitecture
from repro.detection.feed import MonitorBackedDetector, OracleFloodDetector
from repro.detection.marking import (
    AttackGraph,
    MarkCollector,
    MarkingConfig,
    build_attack_graph,
)
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError
from repro.repair.policy import RepairPolicy
from repro.repair.defender import RepairingDefender
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import make_rng

if TYPE_CHECKING:  # lazy: repro.scenarios imports this module's classes
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["PhaseOutcome", "LoopResult", "DetectionRepairLoop", "LOOP_MODES"]

LOOP_MODES = ("none", "oracle", "detected")

_TIERS = ("scalar", "numpy", "compiled")


@dataclasses.dataclass(frozen=True)
class PhaseOutcome:
    """What one flood phase delivered and what the defender did about it.

    ``flagged`` is what the monitor's change-point detection reported
    (recorded in every mode — observation is free); ``repaired`` is what
    the defender actually acted on, which depends on the mode.
    """

    phase: int
    delivery_ratio: float
    flooded: Tuple[int, ...]
    flagged: Tuple[int, ...]
    repaired: Tuple[int, ...]
    #: Injection-schedule identity markers (legitimate packets sent and
    #: attack packets absorbed) — bit-identical across engines on a
    #: matched (spec, seed), which the scenario smoke harness asserts.
    sent: int = 0
    attack_packets: int = 0

    @property
    def false_positives(self) -> Tuple[int, ...]:
        """Flagged nodes that were not actually under flood."""
        under_flood = set(self.flooded)
        return tuple(n for n in self.flagged if n not in under_flood)

    @property
    def detected_true(self) -> Tuple[int, ...]:
        """Flagged nodes that really were under flood."""
        under_flood = set(self.flooded)
        return tuple(n for n in self.flagged if n in under_flood)


@dataclasses.dataclass
class LoopResult:
    """Full outcome of a multi-phase detection/repair campaign."""

    mode: str
    outcomes: List[PhaseOutcome]
    initial_targets: Tuple[int, ...]
    graph: Optional[AttackGraph]
    collector: Optional[MarkCollector]
    #: Name of the :class:`~repro.scenarios.spec.ScenarioSpec` that drove
    #: the campaign (None for classic flood_layer campaigns).
    scenario: Optional[str] = None

    @property
    def final_delivery(self) -> float:
        return self.outcomes[-1].delivery_ratio

    @property
    def delivery_per_phase(self) -> List[float]:
        return [outcome.delivery_ratio for outcome in self.outcomes]

    @property
    def total_repaired(self) -> int:
        return sum(len(outcome.repaired) for outcome in self.outcomes)


class DetectionRepairLoop:
    """Drive repeated flood phases with between-phase repair.

    Parameters mirror the packet-sim experiment harnesses: the
    architecture and sim config define the scenario, the monitor config
    tunes detection, the policy bounds repair (its
    ``detection_probability`` must be 1 — probabilistic detection is the
    *detector's* job here), and an optional marking config additionally
    collects packet marks during phase 0 for traceback analysis.
    """

    def __init__(
        self,
        architecture: SOSArchitecture,
        sim_config: PacketSimConfig,
        monitor_config: MonitorConfig,
        policy: RepairPolicy,
        marking_config: Optional[MarkingConfig] = None,
        seed: Optional[int] = None,
        tier: Optional[str] = None,
    ) -> None:
        if policy.is_noop:
            raise DetectionError(
                "repair policy is a no-op (detection_probability <= 0); "
                "detector-driven repair needs detection_probability=1.0"
            )
        if tier is not None:
            if tier not in _TIERS:
                raise DetectionError(
                    f"tier must be one of {_TIERS}, got {tier!r}"
                )
            # One knob drives both hot paths: the packet engine's kernel
            # tier and the monitor's detector-scan tier.
            sim_config = dataclasses.replace(sim_config, tier=tier)
        self.architecture = architecture
        self.sim_config = sim_config
        self.monitor_config = monitor_config
        self.policy = policy
        self.marking_config = marking_config
        self.seed = seed
        self.tier = tier
        self._monitor_tier = tier if tier is not None else "scalar"

    def run(
        self,
        mode: str = "detected",
        phases: int = 3,
        flood_layer_index: int = 1,
        flood_fraction: float = 0.5,
        fast: bool = True,
    ) -> LoopResult:
        """Run ``phases`` flood phases under the given repair ``mode``."""
        if mode not in LOOP_MODES:
            raise DetectionError(
                f"mode must be one of {LOOP_MODES}, got {mode!r}"
            )
        if phases < 1:
            raise DetectionError(f"phases must be >= 1, got {phases}")
        seeds = np.random.SeedSequence(self.seed).spawn(3 + phases)
        deployment = SOSDeployment.deploy(
            self.architecture, rng=make_rng(seeds[0])
        )
        targets = flood_layer(
            deployment,
            flood_layer_index,
            flood_fraction,
            rng=make_rng(seeds[1]),
        )

        graph: Optional[AttackGraph] = None
        collector: Optional[MarkCollector] = None
        if self.marking_config is not None:
            graph = build_attack_graph(targets, self.marking_config)
            collector = MarkCollector(graph, self.marking_config)

        defender: Optional[RepairingDefender] = None
        oracle_feed: Optional[OracleFloodDetector] = None
        monitor_feed: Optional[MonitorBackedDetector] = None
        if mode == "oracle":
            oracle_feed = OracleFloodDetector(targets)
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=oracle_feed
            )
        elif mode == "detected":
            monitor_feed = MonitorBackedDetector()
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=monitor_feed
            )

        active = list(targets)
        outcomes: List[PhaseOutcome] = []
        for phase in range(phases):
            monitor = TrafficMonitor(self.monitor_config, tier=self._monitor_tier)
            simulation = PacketLevelSimulation(
                deployment,
                self.sim_config,
                rng=make_rng(seeds[3 + phase]),
                monitor=monitor,
                marking=collector if phase == 0 else None,
            )
            report = simulation.run(flood_targets=active, fast=fast)
            flagged = tuple(monitor.flagged_nodes())

            repaired: Tuple[int, ...] = ()
            if defender is not None:
                if oracle_feed is not None:
                    oracle_feed.retarget(active)
                if monitor_feed is not None:
                    monitor_feed.attach(monitor)
                defender.scan_and_repair(
                    deployment, knowledge=None, now=float(phase)
                )
                repaired = tuple(defender.last_repaired)
            outcomes.append(
                PhaseOutcome(
                    phase=phase,
                    delivery_ratio=report.delivery_ratio,
                    flooded=tuple(active),
                    flagged=flagged,
                    repaired=repaired,
                    sent=report.sent,
                    attack_packets=report.attack_packets_absorbed,
                )
            )
            # A repaired node is re-keyed: the attacker's flood against
            # its old identity no longer lands, so it leaves the active
            # set for later phases.
            if repaired:
                gone = set(repaired)
                active = [n for n in active if n not in gone]
        return LoopResult(
            mode=mode,
            outcomes=outcomes,
            initial_targets=tuple(targets),
            graph=graph,
            collector=collector,
        )

    # ------------------------------------------------------------------
    # Scenario campaigns
    # ------------------------------------------------------------------
    @classmethod
    def for_scenario(
        cls,
        spec: "ScenarioSpec",
        monitor_config: Optional[MonitorConfig] = None,
        policy: Optional[RepairPolicy] = None,
        seed: Optional[int] = None,
        tier: Optional[str] = None,
    ) -> "DetectionRepairLoop":
        """A loop wired for ``spec``: its architecture, its sim knobs.

        ``tier`` overrides the spec's tier; ``seed`` overrides the
        spec's seed (both default to what the spec pins, keeping zoo
        runs reproducible from the JSON alone).
        """
        resolved_tier = tier if tier is not None else spec.tier
        return cls(
            architecture=spec.build_architecture(),
            sim_config=spec.sim_config(tier=resolved_tier),
            monitor_config=(
                monitor_config if monitor_config is not None else MonitorConfig()
            ),
            policy=(
                policy
                if policy is not None
                else RepairPolicy(detection_probability=1.0)
            ),
            seed=seed,
            tier=resolved_tier,
        )

    def run_scenario(
        self,
        spec: "ScenarioSpec",
        mode: str = "detected",
        phases: int = 3,
        fast: Optional[bool] = None,
        abort_check: Optional[Callable[[], None]] = None,
    ) -> LoopResult:
        """Run ``phases`` repair rounds of a compiled scenario campaign.

        Each round recompiles the spec with ``salt=round`` (fresh attack
        and surge traffic, *identical* target selection — the target
        streams are salt-independent) and subtracts every node repaired
        so far from the schedule, mirroring the classic loop's
        "repaired nodes leave the active flood set". ``fast=None``
        follows the spec's engine knob; ``abort_check`` is called before
        each round (the service's cooperative-cancel hook).

        Ground truth for detection quality is the schedule's attack
        target set; a benign-only scenario has an empty truth set, so
        anything flagged there is a false positive by construction.
        """
        from repro.scenarios.schedule import compile_scenario

        if mode not in LOOP_MODES:
            raise DetectionError(
                f"mode must be one of {LOOP_MODES}, got {mode!r}"
            )
        if phases < 1:
            raise DetectionError(f"phases must be >= 1, got {phases}")
        if self.marking_config is not None:
            raise DetectionError(
                "scenario campaigns do not support packet marking; run "
                "marking against a classic flood_layer campaign instead"
            )
        engine_fast = (spec.engine == "fast") if fast is None else fast
        seed = self.seed if self.seed is not None else spec.seed
        # Same seed layout as :meth:`run` (deployment, target-picker,
        # defender, then one per phase); slot 1 goes unused because the
        # scenario's own target streams replace flood_layer's picker.
        seeds = np.random.SeedSequence(seed).spawn(3 + phases)
        deployment = SOSDeployment.deploy(
            self.architecture, rng=make_rng(seeds[0])
        )
        base = compile_scenario(spec, deployment, salt=0)
        targets = list(base.schedule.attack_targets)

        defender: Optional[RepairingDefender] = None
        oracle_feed: Optional[OracleFloodDetector] = None
        monitor_feed: Optional[MonitorBackedDetector] = None
        if mode == "oracle":
            oracle_feed = OracleFloodDetector(targets)
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=oracle_feed
            )
        elif mode == "detected":
            monitor_feed = MonitorBackedDetector()
            defender = RepairingDefender(
                self.policy, rng=make_rng(seeds[2]), detector=monitor_feed
            )

        repaired_union: Set[int] = set()
        outcomes: List[PhaseOutcome] = []
        for phase in range(phases):
            if abort_check is not None:
                abort_check()
            compiled = (
                base
                if phase == 0
                else compile_scenario(spec, deployment, salt=phase)
            )
            schedule = compiled.schedule.without_targets(repaired_union)
            active = [n for n in targets if n not in repaired_union]
            monitor = TrafficMonitor(
                self.monitor_config, tier=self._monitor_tier
            )
            simulation = PacketLevelSimulation(
                deployment,
                self.sim_config,
                rng=make_rng(seeds[3 + phase]),
                monitor=monitor,
            )
            report = simulation.run(fast=engine_fast, schedule=schedule)
            flagged = tuple(monitor.flagged_nodes())

            repaired: Tuple[int, ...] = ()
            if defender is not None:
                if oracle_feed is not None:
                    oracle_feed.retarget(active)
                if monitor_feed is not None:
                    monitor_feed.attach(monitor)
                defender.scan_and_repair(
                    deployment, knowledge=None, now=float(phase)
                )
                repaired = tuple(defender.last_repaired)
            outcomes.append(
                PhaseOutcome(
                    phase=phase,
                    delivery_ratio=report.delivery_ratio,
                    flooded=tuple(active),
                    flagged=flagged,
                    repaired=repaired,
                    sent=report.sent,
                    attack_packets=report.attack_packets_absorbed,
                )
            )
            repaired_union.update(repaired)
        return LoopResult(
            mode=mode,
            outcomes=outcomes,
            initial_targets=tuple(targets),
            graph=None,
            collector=None,
            scenario=spec.name,
        )
