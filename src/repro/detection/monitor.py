"""Online congestion detection from the packet stream itself.

The resilience subsystem's :class:`~repro.resilience.detector.FailureDetector`
observes node *health* — an oracle bit the packet level never exposes. A
real SOS operator only sees traffic: how many packets each overlay node
was offered and how many it dropped. :class:`TrafficMonitor` is that
operator's view. Both packet engines feed it the same per-node offer
stream (accept/drop results of every token-bucket offer), it folds the
stream into fixed-width time bins, and classical change-point statistics
over the binned load — EWMA with an adaptive baseline, or a one-sided
CUSUM — flag the nodes whose offered load jumped, with **no access to
attacker state**.

Design constraints, in order:

1. **Order-insensitive state.** The event-driven engine observes offers
   one at a time in global time order; the vectorized engine observes
   them in per-layer batches. Monitor state is therefore pure per-bin
   *counts* — integer sums commute — so the two engines produce
   bit-identical monitors whenever they produce identical offer streams
   (always at layer 1, everywhere when nothing drops; see
   ``tests/detection/test_equivalence.py``).
2. **Off the hot path.** ``observe``/``observe_batch`` only append to
   buffers; binning and the change-point scans run lazily at the first
   statistics query. Attaching a monitor must not erode the fast
   engine's throughput (``benchmarks/bench_detection.py`` bounds the
   overhead).
3. **Determinism.** Detection is a pure function of the binned counts
   and the :class:`MonitorConfig`; no RNG stream is consumed, so an
   attached monitor cannot perturb any simulation output.

The detector math is documented in ``docs/DETECTION.md``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import numpy.typing as npt

from repro.errors import DetectionError
from repro.perf.compiled import TIERS, detect_bins_batch, resolve_tier

__all__ = ["MonitorConfig", "TrafficMonitor"]

#: Per-node bin indices are packed next to node ids in one int64 code;
#: runs longer than this many bins per node would overflow the packing.
_BIN_STRIDE = 1 << 20

_METHODS = ("cusum", "ewma")


@dataclasses.dataclass(frozen=True)
class MonitorConfig:
    """Tuning of the traffic monitor's change-point detection.

    Attributes
    ----------
    bin_width:
        Width (simulation time units) of the counting bins.
    method:
        ``"cusum"`` (default) or ``"ewma"``.
    threshold:
        Decision threshold ``h`` in baseline-sigma units: the CUSUM
        statistic (or the EWMA's excursion above the baseline) must
        exceed it to flag the node. Larger = fewer false positives,
        longer detection latency — exactly monotone in both directions.
    drift:
        CUSUM slack ``k`` (sigma units) subtracted from every
        standardized deviation; absorbs benign load fluctuation.
    ewma_alpha:
        Smoothing factor of the EWMA statistic.
    warmup_bins:
        Leading bins ignored entirely (e.g. the simulation warmup where
        clients are silent).
    baseline_bins:
        Bins immediately after the warmup used to estimate the per-node
        baseline mean and sigma. Detection only scans later bins.
    min_sigma:
        Floor on the baseline sigma (quiet nodes would otherwise divide
        by ~0); the Poisson floor ``sqrt(mean)`` is applied as well.
    """

    bin_width: float = 0.5
    method: str = "cusum"
    threshold: float = 8.0
    drift: float = 0.5
    ewma_alpha: float = 0.2
    warmup_bins: int = 0
    baseline_bins: int = 4
    min_sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise DetectionError(
                f"bin_width must be > 0, got {self.bin_width}"
            )
        if self.method not in _METHODS:
            raise DetectionError(
                f"method must be one of {_METHODS}, got {self.method!r}"
            )
        if self.threshold <= 0:
            raise DetectionError(
                f"threshold must be > 0, got {self.threshold}"
            )
        if self.drift < 0:
            raise DetectionError(f"drift must be >= 0, got {self.drift}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise DetectionError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.warmup_bins < 0:
            raise DetectionError(
                f"warmup_bins must be >= 0, got {self.warmup_bins}"
            )
        if self.baseline_bins < 1:
            raise DetectionError(
                f"baseline_bins must be >= 1, got {self.baseline_bins}"
            )
        if self.min_sigma <= 0:
            raise DetectionError(
                f"min_sigma must be > 0, got {self.min_sigma}"
            )


def _detection_bin(
    series: npt.NDArray[np.float64], config: MonitorConfig
) -> Optional[int]:
    """First bin index at which the statistic crosses the threshold.

    ``series`` is the full offered-count-per-bin array from bin 0. The
    scan starts after the warmup and baseline windows; returns ``None``
    when the statistic never crosses. For a fixed series the result is
    exactly monotone in ``threshold``: the CUSUM/EWMA trajectory does
    not depend on it, so a larger threshold can only be crossed later
    (or never).
    """
    start = config.warmup_bins
    base_end = start + config.baseline_bins
    if len(series) <= base_end:
        return None
    baseline = series[start:base_end]
    mean = float(baseline.mean())
    sigma = max(
        float(baseline.std()), math.sqrt(max(mean, 0.0)), config.min_sigma
    )
    if config.method == "cusum":
        statistic = 0.0
        for index in range(base_end, len(series)):
            deviation = (float(series[index]) - mean) / sigma
            statistic = max(0.0, statistic + deviation - config.drift)
            if statistic > config.threshold:
                return index
        return None
    smoothed = mean
    for index in range(base_end, len(series)):
        smoothed = (
            config.ewma_alpha * float(series[index])
            + (1.0 - config.ewma_alpha) * smoothed
        )
        if (smoothed - mean) / sigma > config.threshold:
            return index
    return None


class TrafficMonitor:
    """Per-node binned traffic counters with change-point detection.

    Attach one instance to a single simulation run (either engine); the
    engines call :meth:`observe` / :meth:`observe_batch` for every
    token-bucket offer. All statistics queries aggregate lazily.
    """

    def __init__(
        self,
        config: MonitorConfig = MonitorConfig(),
        tier: str = "scalar",
    ) -> None:
        self.config = config
        # Detector-scan tier: ``scalar`` (default) runs the per-node
        # reference loop in :func:`_detection_bin`; ``numpy`` scans all
        # nodes' statistics as one vector recursion; ``compiled``
        # dispatches to :mod:`repro.perf.compiled`. All tiers produce
        # identical flag sequences (the recursions perform the same
        # float operations in the same order); only multi-node queries
        # (:meth:`detection_bins` / :meth:`flagged_nodes`) change speed.
        if tier not in TIERS:
            raise DetectionError(
                f"tier must be one of {TIERS}, got {tier!r}"
            )
        self.tier = tier
        # Columnar counter state: sorted packed ``node * STRIDE + bin``
        # codes with aligned offered/dropped tallies. Integer sums only,
        # so drain order cannot change the counters.
        self._codes: npt.NDArray[np.int64] = np.empty(0, dtype=np.int64)
        self._offered: npt.NDArray[np.int64] = np.empty(0, dtype=np.int64)
        self._dropped: npt.NDArray[np.int64] = np.empty(0, dtype=np.int64)
        self._last_bin: int = -1
        self.observations: int = 0
        # Append-only buffers drained into the columns on the next query.
        self._buffer_nodes: List[npt.NDArray[np.int64]] = []
        self._buffer_times: List[npt.NDArray[np.float64]] = []
        self._buffer_accepted: List[npt.NDArray[np.bool_]] = []
        self._scalar_nodes: List[int] = []
        self._scalar_times: List[float] = []
        self._scalar_accepted: List[bool] = []

    # ------------------------------------------------------------------
    # Observation (hot path: append only)
    # ------------------------------------------------------------------
    def observe(self, node_id: int, time: float, accepted: bool) -> None:
        """Record one offer at ``node_id``: accepted or dropped."""
        self._scalar_nodes.append(node_id)
        self._scalar_times.append(time)
        self._scalar_accepted.append(accepted)
        self.observations += 1

    def observe_batch(
        self,
        node_ids: npt.NDArray[np.int64],
        times: npt.NDArray[np.float64],
        accepted: npt.NDArray[np.bool_],
    ) -> None:
        """Record a batch of offers (vectorized engine entry point)."""
        if not (len(node_ids) == len(times) == len(accepted)):
            raise DetectionError("observe_batch arrays must align")
        if len(node_ids) == 0:
            return
        self._buffer_nodes.append(np.asarray(node_ids, dtype=np.int64))
        self._buffer_times.append(np.asarray(times, dtype=np.float64))
        self._buffer_accepted.append(np.asarray(accepted, dtype=np.bool_))
        self.observations += int(len(node_ids))

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Fold every buffered observation into the per-bin counters.

        The scalar and batch buffers go through the identical numpy
        binning arithmetic (``int64(time / bin_width)``), so a monitor
        fed one offer at a time and a monitor fed the same offers in
        batches end up bit-identical.
        """
        if self._scalar_nodes:
            self._buffer_nodes.append(
                np.asarray(self._scalar_nodes, dtype=np.int64)
            )
            self._buffer_times.append(
                np.asarray(self._scalar_times, dtype=np.float64)
            )
            self._buffer_accepted.append(
                np.asarray(self._scalar_accepted, dtype=np.bool_)
            )
            self._scalar_nodes = []
            self._scalar_times = []
            self._scalar_accepted = []
        if not self._buffer_nodes:
            return
        nodes = np.concatenate(self._buffer_nodes)
        times = np.concatenate(self._buffer_times)
        accepted = np.concatenate(self._buffer_accepted)
        self._buffer_nodes = []
        self._buffer_times = []
        self._buffer_accepted = []
        bins = (times / self.config.bin_width).astype(np.int64)
        if bool((bins < 0).any()):
            raise DetectionError("observation times must be >= 0")
        if bool((bins >= _BIN_STRIDE).any()):
            raise DetectionError(
                f"run spans more than {_BIN_STRIDE} bins; increase bin_width"
            )
        codes = nodes * _BIN_STRIDE + bins
        # Merge the batch into the sorted columns with one unique pass —
        # no per-(node, bin) Python loop, so draining a million offers
        # over a million nodes stays a few vector operations.
        merged = np.concatenate([self._codes, codes])
        add_offered = np.concatenate(
            [self._offered, np.ones(len(codes), dtype=np.int64)]
        )
        add_dropped = np.concatenate(
            [self._dropped, (~accepted).astype(np.int64)]
        )
        unique, inverse = np.unique(merged, return_inverse=True)
        offered = np.zeros(len(unique), dtype=np.int64)
        dropped = np.zeros(len(unique), dtype=np.int64)
        np.add.at(offered, inverse, add_offered)
        np.add.at(dropped, inverse, add_dropped)
        self._codes = unique
        self._offered = offered
        self._dropped = dropped
        self._last_bin = max(self._last_bin, int(bins.max()))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _node_slice(self, node_id: int) -> Tuple[int, int]:
        """Column range ``[lo, hi)`` of ``node_id``'s packed codes."""
        lo = int(np.searchsorted(self._codes, node_id * _BIN_STRIDE))
        hi = int(np.searchsorted(self._codes, (node_id + 1) * _BIN_STRIDE))
        return lo, hi

    def nodes(self) -> List[int]:
        """Sorted ids of every node that was offered at least one packet."""
        self._drain()
        return np.unique(self._codes // _BIN_STRIDE).tolist()

    def snapshot(self) -> Dict[int, Dict[int, Tuple[int, int]]]:
        """``{node: {bin: (offered, dropped)}}`` — the full counter state."""
        self._drain()
        result: Dict[int, Dict[int, Tuple[int, int]]] = {}
        node_ids = (self._codes // _BIN_STRIDE).tolist()
        bin_ids = (self._codes % _BIN_STRIDE).tolist()
        for node_id, bin_index, offered, dropped in zip(
            node_ids, bin_ids, self._offered.tolist(), self._dropped.tolist()
        ):
            result.setdefault(node_id, {})[bin_index] = (offered, dropped)
        return result

    def last_bin(self) -> int:
        """Highest bin index observed so far (-1 when empty)."""
        self._drain()
        return self._last_bin

    def series(
        self, node_id: int, through_bin: Optional[int] = None
    ) -> npt.NDArray[np.float64]:
        """Offered-count-per-bin array for ``node_id`` from bin 0.

        Bins in which the node saw no traffic are zeros; the array runs
        through ``through_bin`` (inclusive; default: the monitor-wide
        last observed bin), so every node's series spans the same
        horizon regardless of when its traffic stopped.
        """
        self._drain()
        horizon = self._last_bin if through_bin is None else through_bin
        values = np.zeros(max(horizon + 1, 0), dtype=np.float64)
        lo, hi = self._node_slice(node_id)
        bins = self._codes[lo:hi] % _BIN_STRIDE
        keep = bins <= horizon
        values[bins[keep]] = self._offered[lo:hi][keep].astype(np.float64)
        return values

    def _series_matrix(
        self, node_ids: Sequence[int], through: int
    ) -> npt.NDArray[np.float64]:
        """Stacked :meth:`series` rows over one shared horizon.

        Row ``r`` is bit-identical to ``series(node_ids[r], through)``:
        each row is scattered from the same packed counters, and a row
        slice of the C-contiguous matrix sums exactly like the
        standalone 1-D array, so batched baselines match the per-node
        oracle's.
        """
        matrix = np.zeros(
            (len(node_ids), max(through + 1, 0)), dtype=np.float64
        )
        for row, node_id in enumerate(node_ids):
            lo, hi = self._node_slice(node_id)
            bins = self._codes[lo:hi] % _BIN_STRIDE
            keep = bins <= through
            matrix[row, bins[keep]] = (
                self._offered[lo:hi][keep].astype(np.float64)
            )
        return matrix

    def window_counts(
        self, node_id: int, lo_bin: int, hi_bin: int
    ) -> Tuple[int, int]:
        """``(offered, dropped)`` summed over bins ``[lo_bin, hi_bin)``."""
        self._drain()
        lo, hi = self._node_slice(node_id)
        bins = self._codes[lo:hi] % _BIN_STRIDE
        keep = (bins >= lo_bin) & (bins < hi_bin)
        return (
            int(self._offered[lo:hi][keep].sum()),
            int(self._dropped[lo:hi][keep].sum()),
        )

    def drop_rate(self, node_id: int) -> float:
        """Observed drop fraction at ``node_id`` over the whole run."""
        offered, dropped = self.window_counts(node_id, 0, _BIN_STRIDE)
        return 0.0 if offered == 0 else dropped / offered

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def _resolved(self, config: Optional[MonitorConfig]) -> MonitorConfig:
        return self.config if config is None else config

    def detection_bin(
        self,
        node_id: int,
        now: Optional[float] = None,
        config: Optional[MonitorConfig] = None,
    ) -> Optional[int]:
        """Bin at which ``node_id`` was flagged (None = never).

        ``now`` truncates the evidence to complete bins before it;
        ``config`` evaluates the same counters under different detector
        settings (threshold sweeps re-use one run's evidence).
        """
        resolved = self._resolved(config)
        through = self.last_bin()
        if now is not None:
            through = min(through, int(now / resolved.bin_width) - 1)
        if through < 0:
            return None
        return _detection_bin(self.series(node_id, through), resolved)

    def detection_time(
        self,
        node_id: int,
        now: Optional[float] = None,
        config: Optional[MonitorConfig] = None,
    ) -> Optional[float]:
        """End time of the flagging bin (None = never flagged)."""
        bin_index = self.detection_bin(node_id, now=now, config=config)
        if bin_index is None:
            return None
        return (bin_index + 1) * self._resolved(config).bin_width

    def detection_bins(
        self,
        node_ids: Optional[Iterable[int]] = None,
        now: Optional[float] = None,
        config: Optional[MonitorConfig] = None,
    ) -> Dict[int, Optional[int]]:
        """Flagging bin per node (None = never) for many nodes at once.

        The multi-node twin of :meth:`detection_bin`, evaluated at the
        monitor's ``tier``: ``scalar`` runs the reference loop per node;
        ``numpy``/``compiled`` stack every node's series into one matrix
        and scan all CUSUM/EWMA recursions together. Results are
        identical across tiers — the batched scans replay the scalar
        arithmetic element for element.
        """
        resolved = self._resolved(config)
        ids = self.nodes() if node_ids is None else list(node_ids)
        result: Dict[int, Optional[int]] = {
            node_id: None for node_id in ids
        }
        through = self.last_bin()
        if now is not None:
            through = min(through, int(now / resolved.bin_width) - 1)
        if through < 0 or not ids:
            return result
        tier = resolve_tier(self.tier)
        if tier == "scalar":
            for node_id in ids:
                result[node_id] = _detection_bin(
                    self.series(node_id, through), resolved
                )
            return result
        start = resolved.warmup_bins
        base_end = start + resolved.baseline_bins
        if through + 1 <= base_end:
            return result
        matrix = self._series_matrix(ids, through)
        means = np.empty(len(ids), dtype=np.float64)
        sigmas = np.empty(len(ids), dtype=np.float64)
        for row in range(len(ids)):
            baseline = matrix[row, start:base_end]
            mean = float(baseline.mean())
            means[row] = mean
            sigmas[row] = max(
                float(baseline.std()),
                math.sqrt(max(mean, 0.0)),
                resolved.min_sigma,
            )
        crossings = detect_bins_batch(
            matrix,
            means,
            sigmas,
            base_end,
            resolved.method,
            resolved.threshold,
            resolved.drift,
            resolved.ewma_alpha,
            tier,
        )
        for row, node_id in enumerate(ids):
            crossed = int(crossings[row])
            result[node_id] = crossed if crossed >= 0 else None
        return result

    def flagged_nodes(
        self,
        now: Optional[float] = None,
        config: Optional[MonitorConfig] = None,
    ) -> List[int]:
        """Sorted ids of every node the detector flags on current evidence."""
        return [
            node_id
            for node_id, bin_index in self.detection_bins(
                now=now, config=config
            ).items()
            if bin_index is not None
        ]
