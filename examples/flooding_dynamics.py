#!/usr/bin/env python
"""Packet-level congestion dynamics: what 'congested' actually means.

Run:
    python examples/flooding_dynamics.py

The analytical model treats congestion as a binary node state. This example
grounds it: legitimate clients emit Poisson traffic through a deployed SOS
overlay while an attacker floods a growing fraction of the beacon layer.
Every node has finite capacity (token bucket); flooded nodes drop most
traffic, and delivery degrades exactly as the binary model predicts once
the flood saturates node capacity.

Runs on the vectorized fast engine (``run(fast=True)``, see
``repro.perf.fastsim``); pass ``--event`` to use the event-driven
oracle instead and compare.
"""

from __future__ import annotations

import sys

from repro.core import SOSArchitecture
from repro.simulation import PacketLevelSimulation, PacketSimConfig, flood_layer
from repro.sos import SOSDeployment
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_table


def main() -> None:
    fast = "--event" not in sys.argv[1:]
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=500,
        sos_nodes=45,
        filters=5,
    )
    config = PacketSimConfig(duration=40.0, warmup=5.0, clients=6)

    fractions = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    rows = []
    ratios = []
    for fraction in fractions:
        deployment = SOSDeployment.deploy(architecture, rng=7)
        simulation = PacketLevelSimulation(deployment, config, rng=1)
        targets = (
            flood_layer(deployment, layer=2, fraction=fraction, rng=2)
            if fraction > 0
            else []
        )
        report = simulation.run(flood_targets=targets, fast=fast)
        rows.append(
            [
                fraction,
                len(targets),
                report.sent,
                report.delivered,
                report.delivery_ratio,
                report.mean_latency,
                len(report.congested_nodes),
            ]
        )
        ratios.append(report.delivery_ratio)

    print(
        format_table(
            [
                "flooded fraction",
                "targets",
                "sent",
                "delivered",
                "delivery ratio",
                "mean latency",
                "congested nodes",
            ],
            rows,
            title="Flooding the beacon layer (layer 2) at increasing "
            f"intensity ({'fast' if fast else 'event'} engine)\n",
        )
    )
    print(
        ascii_plot(
            list(fractions),
            {"delivery ratio": ratios},
            title="Delivery ratio vs flooded fraction of layer 2",
            xlabel="flooded fraction",
            ylabel="ratio",
            y_min=0.0,
            y_max=1.0,
        )
    )
    print(
        "Partial floods are routed around (nodes retry within their\n"
        "neighbor tables); once the whole layer is flooded no retry helps —\n"
        "the binary 'congested' abstraction of the analytical model."
    )


if __name__ == "__main__":
    main()
