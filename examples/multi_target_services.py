#!/usr/bin/env python
"""One overlay, many protected services — and their isolation.

Run:
    python examples/multi_target_services.py

Registers three targets on a shared generalized-SOS overlay. Each gets
its own secret servlets and filter ring, with bindings in the Chord
directory. A targeted attack that takes down one service's dedicated
resources leaves the others delivering; an attack on the shared beacon
layer hurts everyone — the two failure domains of the architecture.
"""

from __future__ import annotations

from repro.core import SOSArchitecture
from repro.sos import MultiTargetSOS, SOSDeployment
from repro.utils.tables import format_table


def main() -> None:
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=500,
        sos_nodes=60,
        filters=5,
    )
    overlay = MultiTargetSOS(SOSDeployment.deploy(architecture, rng=7))
    for index, name in enumerate(("hospital", "dispatch", "utility-grid")):
        site = overlay.register_target(name, rng=index)
        print(
            f"registered {name!r}: servlets={list(site.servlet_ids)} "
            f"filters={site.filters.filter_ids}"
        )
    print()

    baseline = overlay.delivery_rates(probes=100, rng=1)
    overlay.attack_target_site("hospital")
    after_targeted = overlay.delivery_rates(probes=100, rng=2)

    for node_id in overlay.deployment.layer_members(2):
        overlay.deployment.network.get(node_id).congest()
    after_shared = overlay.delivery_rates(probes=100, rng=3)

    rows = [
        [name, baseline[name], after_targeted[name], after_shared[name]]
        for name in overlay.targets
    ]
    print(
        format_table(
            [
                "target",
                "healthy",
                "after 'hospital' site attacked",
                "after shared layer-2 flooded",
            ],
            rows,
            title="Delivery rates per target across attack stages\n",
        )
    )
    print(
        "Dedicated resources isolate failures per target; the shared\n"
        "layers remain the common-mode risk the layering analysis prices."
    )


if __name__ == "__main__":
    main()
