#!/usr/bin/env python
"""Quickstart: evaluate generalized SOS designs under intelligent attacks.

Run:
    python examples/quickstart.py

Covers the library's core loop in ~40 lines: describe an architecture,
describe an attack, get P_S — then compare a few designs the paper
discusses, including the original SOS (L=3, one-to-all) that collapses
under break-in attacks.
"""

from __future__ import annotations

from repro import (
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
    original_sos_architecture,
)
from repro.utils.tables import format_table


def main() -> None:
    # The paper's two threat models.
    random_congestion = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
    intelligent = SuccessiveAttack()  # N_T=200, N_C=2000, R=3, P_B=0.5, P_E=0.2

    designs = {
        "original SOS (L=3, one-to-all)": original_sos_architecture(),
        "L=1, one-to-all (flat)": SOSArchitecture(layers=1, mapping="one-to-all"),
        "L=3, one-to-one (thin)": SOSArchitecture(layers=3, mapping="one-to-one"),
        "L=4, one-to-two (paper's pick)": SOSArchitecture(layers=4, mapping="one-to-two"),
        "L=4, one-to-two, increasing": SOSArchitecture(
            layers=4, mapping="one-to-two", distribution="increasing"
        ),
    }

    rows = []
    for name, design in designs.items():
        survive_random = evaluate(design, random_congestion).p_s
        survive_intelligent = evaluate(design, intelligent).p_s
        rows.append([name, survive_random, survive_intelligent])

    print(
        format_table(
            ["design", "P_S vs random congestion", "P_S vs intelligent attack"],
            rows,
            title="Path availability under the paper's two threat models\n",
        )
    )
    print(
        "The original SOS is excellent against its own threat model and\n"
        "useless against an attacker that breaks into nodes first — the\n"
        "observation that motivates the generalized architecture."
    )


if __name__ == "__main__":
    main()
