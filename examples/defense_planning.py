#!/usr/bin/env python
"""End-to-end defense planning: attacker intel in, posture out.

Run:
    python examples/defense_planning.py

Feeds operational estimates (botnet bandwidth, intrusion tempo, node
capacity) through the whole library: budget conversion, design search,
latency accounting, and the inverted repair model answering "how good must
our monitoring be to hold 90% availability?".
"""

from __future__ import annotations

from repro.core.budget import BreakInCampaign, CongestionCostModel
from repro.planner import plan_defense


def main() -> None:
    scenarios = {
        "opportunistic botnet": dict(
            attacker_bandwidth=200_000.0,
            campaign=BreakInCampaign(attempts_per_hour=2, duration_hours=24),
        ),
        "paper-scale adversary": dict(
            attacker_bandwidth=380_000.0,
            campaign=BreakInCampaign(attempts_per_hour=10, duration_hours=20),
        ),
        "well-funded APT": dict(
            attacker_bandwidth=900_000.0,
            campaign=BreakInCampaign(attempts_per_hour=40, duration_hours=50),
            prior_knowledge=0.4,
        ),
    }
    cost_model = CongestionCostModel(
        node_capacity=100.0, legitimate_rate=10.0, congestion_threshold=0.5
    )
    for name, kwargs in scenarios.items():
        # Target 0.8 at the attack's PEAK (the congestion wave just landed);
        # see repro.planner.required_detection for the semantics.
        plan = plan_defense(cost_model=cost_model, target_p_s=0.8, **kwargs)
        print(f"=== {name} ===")
        print(plan.summary())
        print()
    print(
        "Each verdict is exact under the average-case repair model and\n"
        "validated against executed attacks elsewhere in the test suite."
    )


if __name__ == "__main__":
    main()
