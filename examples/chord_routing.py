#!/usr/bin/env python
"""The Chord substrate: beacon lookup, joins, and failure tolerance.

Run:
    python examples/chord_routing.py

SOS routes to a target's beacon by hashing the target identity onto a
Chord ring of SOS nodes (paper §2). This example exercises the full DHT:
O(log N) finger-table lookups, incremental joins converging through
stabilization, and lookups routing around crash failures via successor
lists.
"""

from __future__ import annotations

import math

import numpy as np

from repro.overlay import ChordRing
from repro.utils.tables import format_table


def lookup_stats(ring: ChordRing, rng, samples: int = 300):
    hops = []
    correct = 0
    ids = ring.live_node_ids
    for _ in range(samples):
        key = int(rng.integers(0, ring.space.size))
        start = ids[int(rng.integers(0, len(ids)))]
        result = ring.lookup(key, start)
        if result.succeeded and result.owner == ring.find_successor(key):
            correct += 1
            hops.append(result.hops)
    mean_hops = sum(hops) / len(hops) if hops else float("nan")
    return correct / samples, mean_hops


def main() -> None:
    rng = np.random.default_rng(7)
    ids = sorted(int(i) for i in rng.choice(2**32, size=1000, replace=False))

    # --- Static ring --------------------------------------------------
    ring = ChordRing.build(ids)
    accuracy, mean_hops = lookup_stats(ring, rng)
    print(
        f"1000-node ring: lookup accuracy {accuracy:.1%}, "
        f"mean hops {mean_hops:.2f} (log2 N = {math.log2(len(ids)):.2f})\n"
    )

    # --- Beacon lookup ------------------------------------------------
    rows = []
    for target in ("hospital", "emergency-line", "dispatch"):
        key = ring.space.hash_key(f"target:{target}")
        result = ring.lookup(key, start=ids[0])
        rows.append([target, key, result.owner, result.hops])
    print(
        format_table(
            ["target", "hashed key", "beacon (chord owner)", "hops"],
            rows,
            title="Beacon lookup: hash the target, route to the owner\n",
        )
    )

    # --- Churn: joins converge through stabilization -------------------
    half = ChordRing.build(ids[:500])
    for node_id in ids[500:600]:
        half.join(node_id)
        half.stabilize(rounds=1)
    half.stabilize(rounds=3)
    accuracy, mean_hops = lookup_stats(half, rng)
    print(
        f"After 100 joins + stabilization: accuracy {accuracy:.1%}, "
        f"mean hops {mean_hops:.2f}"
    )

    # --- Crash failures: successor lists route around the dead ---------
    dead = rng.choice(ring.live_node_ids, size=200, replace=False)
    for node_id in dead:
        ring.fail(int(node_id))
    accuracy, mean_hops = lookup_stats(ring, rng)
    print(
        f"After 20% random crash failures (no repair): accuracy "
        f"{accuracy:.1%}, mean hops {mean_hops:.2f}"
    )
    ring.stabilize(rounds=2)
    accuracy, mean_hops = lookup_stats(ring, rng)
    print(
        f"After 2 stabilization rounds:                accuracy "
        f"{accuracy:.1%}, mean hops {mean_hops:.2f}"
    )


if __name__ == "__main__":
    main()
