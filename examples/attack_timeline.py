#!/usr/bin/env python
"""The engagement in time: P_S(t) as Algorithm 1 unfolds.

Run:
    python examples/attack_timeline.py

Plays the successive attack on a simulated clock — break-in rounds every
10 time units, the congestion phase after the budget is spent — while a
measurement process probes client success each time unit. Runs three
defender postures and plots the trajectories side by side.
"""

from __future__ import annotations

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.repair import NO_REPAIR, RepairPolicy
from repro.simulation import CampaignConfig, run_campaign
from repro.utils.ascii_plot import ascii_plot


def main() -> None:
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )
    attack = SuccessiveAttack(
        break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
    )
    config = CampaignConfig(
        round_interval=10.0,
        repair_interval=8.0,
        probe_interval=1.0,
        probes_per_sample=40,
        cooldown=40.0,
    )

    postures = {
        "no repair": NO_REPAIR,
        "repair p=0.3": RepairPolicy(detection_probability=0.3),
        "repair p=0.9": RepairPolicy(detection_probability=0.9),
    }
    series = {}
    reports = {}
    for name, policy in postures.items():
        report = run_campaign(architecture, attack, policy, config, seed=11)
        series[name] = list(report.p_s)
        reports[name] = report

    times = list(reports["no repair"].times)
    print(
        ascii_plot(
            times,
            series,
            title="P_S over the engagement (rounds at t=10,20,30; "
            "congestion at t=40)",
            xlabel="time",
            ylabel="P_S",
            y_min=0.0,
            y_max=1.0,
            height=16,
        )
    )
    for name, report in reports.items():
        print(
            f"{name:14s} min={report.minimum:.2f} final={report.final:.2f} "
            f"repairs={report.repairs_total}"
        )
    print(
        "\nWithout repair the post-congestion plateau persists; with repair\n"
        "the dip is shallower and the system climbs back to full\n"
        "availability — the §3.2.1 remark about R and detection, quantified."
    )


if __name__ == "__main__":
    main()
