#!/usr/bin/env python
"""Capacity planning: from botnet bandwidth to architecture choice.

Run:
    python examples/capacity_planning.py

The analytical model speaks in abstract budgets (N_T break-ins, N_C
congested nodes); operators think in packets per second and intrusion
tempo. This example bridges the two with the token-bucket cost model:
how much availability does each design keep as the attacker's botnet
grows, and how much node capacity would we need to provision to survive
a given botnet?
"""

from __future__ import annotations

from repro.core import SOSArchitecture, evaluate
from repro.core.budget import (
    BreakInCampaign,
    CongestionCostModel,
    attack_from_resources,
)
from repro.utils.tables import format_table


def main() -> None:
    cost = CongestionCostModel(
        node_capacity=100.0, legitimate_rate=10.0, congestion_threshold=0.5
    )
    campaign = BreakInCampaign(attempts_per_hour=10, duration_hours=20)
    print(
        f"Congesting one node takes {cost.required_flood_rate:.0f} pps of "
        f"flood; the intrusion crew manages {campaign.total_attempts} "
        f"break-in attempts per campaign.\n"
    )

    designs = {
        "L=1 one-to-all": SOSArchitecture(layers=1, mapping="one-to-all"),
        "L=3 one-to-half": SOSArchitecture(layers=3, mapping="one-to-half"),
        "L=4 one-to-two": SOSArchitecture(layers=4, mapping="one-to-two"),
        "L=5 one-to-one": SOSArchitecture(layers=5, mapping="one-to-one"),
    }

    bandwidths = [100_000, 380_000, 760_000, 1_200_000]
    rows = []
    for bandwidth in bandwidths:
        attack = attack_from_resources(
            bandwidth=float(bandwidth),
            campaign=campaign,
            cost_model=cost,
            prior_knowledge=0.2,
        )
        row = [f"{bandwidth / 1000:.0f}k pps", attack.congestion_budget]
        row += [evaluate(design, attack).p_s for design in designs.values()]
        rows.append(row)
    print(
        format_table(
            ["botnet bandwidth", "N_C"] + list(designs),
            rows,
            title="P_S vs attacker bandwidth (fixed intrusion campaign)\n",
        )
    )

    # Inverse question: provisioning. How much per-node capacity keeps the
    # paper's design above P_S = 0.5 against a 1.2M pps botnet?
    target_bandwidth = 1_200_000.0
    design = designs["L=4 one-to-two"]
    rows = []
    for capacity in (100.0, 200.0, 400.0, 800.0, 1600.0):
        model = CongestionCostModel(
            node_capacity=capacity, legitimate_rate=10.0, congestion_threshold=0.5
        )
        attack = attack_from_resources(
            bandwidth=target_bandwidth,
            campaign=campaign,
            cost_model=model,
            prior_knowledge=0.2,
        )
        rows.append([capacity, attack.congestion_budget, evaluate(design, attack).p_s])
    print(
        format_table(
            ["node capacity (pps)", "resulting N_C", "P_S (L=4 one-to-two)"],
            rows,
            title=f"Provisioning against a {target_bandwidth / 1e6:.1f}M pps botnet\n",
        )
    )
    print(
        "Doubling per-node capacity halves the attacker's effective N_C —\n"
        "overprovisioning and careful layering are complementary defenses."
    )


if __name__ == "__main__":
    main()
