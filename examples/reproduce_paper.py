#!/usr/bin/env python
"""Reproduce the paper, end to end, in one command.

Run:
    python examples/reproduce_paper.py           # tables + claims
    python examples/reproduce_paper.py --plots   # + ASCII curve shapes

Regenerates every data figure in the paper's evaluation (Figs. 4a, 4b,
6a, 6b, 7, 8a, 8b) from the analytical models, prints the same series the
paper plots, and machine-checks every qualitative claim the paper makes
about them. Equivalent to ``repro-experiments --paper-only``.
"""

from __future__ import annotations

import sys

from repro.experiments.figures import PAPER_FIGURES, run_figure
from repro.experiments.report import render_text


def main() -> int:
    show_plots = "--plots" in sys.argv[1:]
    total_claims = 0
    failed_claims = 0
    for figure_id in PAPER_FIGURES:
        result = run_figure(figure_id)
        print(render_text(result, plot=show_plots))
        total_claims += len(result.claims)
        failed_claims += len(result.failed_claims())
    print(
        f"Reproduced {len(PAPER_FIGURES)} figures; "
        f"{total_claims - failed_claims}/{total_claims} paper claims hold."
    )
    return 1 if failed_claims else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
