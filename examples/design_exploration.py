#!/usr/bin/env python
"""Design a deployment for an anticipated threat mix.

Run:
    python examples/design_exploration.py

The paper's conclusion is that L, m_i, and the node distribution must be
chosen for the expected attacks. This example turns that into a workflow:

1. describe the attack scenarios the operator worries about;
2. search the full design grid for the best worst-case design;
3. print the break-in/congestion Pareto frontier so the operator sees what
   they are trading away.
"""

from __future__ import annotations

from repro.core import OneBurstAttack, SuccessiveAttack
from repro.core.design_space import (
    enumerate_designs,
    evaluate_designs,
    tradeoff_frontier,
)
from repro.utils.tables import format_table


def main() -> None:
    scenarios = {
        "script-kiddie flood": OneBurstAttack(break_in_budget=0, congestion_budget=4000),
        "botnet flood": OneBurstAttack(break_in_budget=0, congestion_budget=7000),
        "targeted intrusion": SuccessiveAttack(
            break_in_budget=400, congestion_budget=2000, rounds=3, prior_knowledge=0.2
        ),
        "insider-assisted": SuccessiveAttack(
            break_in_budget=200, congestion_budget=2000, rounds=2, prior_knowledge=0.5
        ),
    }

    designs = enumerate_designs(
        layers=range(1, 9),
        distributions=("even", "increasing"),
    )
    scores = evaluate_designs(designs, scenarios, aggregate="min")

    print(f"Evaluated {len(designs)} designs against {len(scenarios)} scenarios.\n")
    rows = [
        [score.label, score.aggregate]
        + [score.per_scenario[name] for name in scenarios]
        for score in scores[:10]
    ]
    print(
        format_table(
            ["design", "worst-case P_S"] + list(scenarios),
            rows,
            title="Top 10 designs by worst-case path availability\n",
        )
    )

    frontier = tradeoff_frontier(designs)
    print(
        format_table(
            ["design", "P_S vs heavy break-in", "P_S vs heavy congestion"],
            [
                [p.label, p.break_in_resilience, p.congestion_resilience]
                for p in frontier
            ],
            title="Pareto frontier: break-in vs congestion resilience\n",
        )
    )
    print(
        "No design tops both columns — the paper's layering/mapping-degree\n"
        "trade-off. Pick the frontier point matching your threat estimate."
    )


if __name__ == "__main__":
    main()
