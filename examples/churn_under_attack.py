#!/usr/bin/env python
"""Benign churn under attack: P_S vs crash rate and detection timeout.

Run:
    python examples/churn_under_attack.py

The paper's model assumes nodes fail only when attacked. Real overlays
also churn: nodes crash and come back on their own, and a defender only
learns a node is bad after a detection timeout. This example runs the
successive attack over a sweep of benign crash rates, then over a sweep
of detection timeouts, and shows how both erode the availability floor
the analytical model predicts.
"""

from __future__ import annotations

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.repair import NO_REPAIR, RepairPolicy
from repro.resilience import DetectorConfig, FaultPlan, RetryPolicy
from repro.simulation import run_campaign
from repro.utils.ascii_plot import ascii_plot


def main() -> None:
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )
    attack = SuccessiveAttack(
        break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
    )
    retry = RetryPolicy(max_attempts_per_hop=3, backoff_base=0.05)

    # Sweep 1: crash rate, no defender. Each crashed node is down for an
    # exponential mean of 12 time units before it restores itself.
    print("=== P_S(t) under increasing benign churn (no repair) ===\n")
    series = {}
    times = None
    for rate in (0.0, 0.5, 1.5):
        report = run_campaign(
            architecture,
            attack,
            NO_REPAIR,
            seed=11,
            fault_plan=FaultPlan(crash_rate=rate, mean_downtime=12.0),
            retry_policy=retry,
        )
        label = f"crash rate {rate}"
        series[label] = list(report.p_s)
        times = list(report.times)
        print(
            f"{label:16s} min={report.minimum:.2f} final={report.final:.2f} "
            f"crashes={report.crashes_injected} "
            f"recoveries={report.benign_recoveries}"
        )
    print()
    print(
        ascii_plot(
            times,
            series,
            title="P_S over the engagement at three churn rates",
            xlabel="time",
            ylabel="P_S",
            y_min=0.0,
            y_max=1.0,
            height=14,
        )
    )

    # Sweep 2: detection timeout, churn fixed. The defender repairs every
    # node it has *confirmed* bad; confirmation takes `timeout` time units.
    print("\n=== Repair effectiveness vs detection timeout ===\n")
    plan = FaultPlan(crash_rate=0.5, mean_downtime=12.0)
    policy = RepairPolicy(detection_probability=1.0)
    for timeout in (0.0, 8.0, 24.0):
        report = run_campaign(
            architecture,
            attack,
            policy,
            seed=11,
            fault_plan=plan,
            detector_config=DetectorConfig(timeout=timeout),
            retry_policy=retry,
        )
        print(
            f"timeout {timeout:5.1f}  min={report.minimum:.2f} "
            f"final={report.final:.2f} repairs={report.repairs_total} "
            f"false_alarms={report.false_alarms}"
        )
    print(
        "\nChurn deepens the availability dip even with retries; slower\n"
        "detection holds repairs back, so the dip lasts longer — the two\n"
        "knobs the res-churn and res-detect experiments sweep."
    )


if __name__ == "__main__":
    main()
