#!/usr/bin/env python
"""The attacker/defender race: dynamic repair against Algorithm 1.

Run:
    python examples/defended_deployment.py

The paper observes (§3.2.1) that the successive attack's round count R
"cannot be too large as that would allow the system enough time to detect
and recover," and defers repair to future work. This example implements
the race: a RepairingDefender scans for bad nodes after every break-in
round, recovers what it detects, re-keys and re-wires repaired nodes
(invalidating the attacker's knowledge about them), and we measure how
much availability each level of detection buys — including against the
smarter traffic-monitoring attacker.
"""

from __future__ import annotations

from repro.attacks.monitoring import monitoring_damage_comparison
from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.repair import RepairPolicy, estimate_ps_with_repair
from repro.utils.tables import format_table


def main() -> None:
    architecture = SOSArchitecture(layers=4, mapping="one-to-two")
    attack = SuccessiveAttack()  # paper defaults

    print(f"Architecture: {architecture.describe()}")
    print(f"No-repair analytical P_S: {evaluate(architecture, attack).p_s:.3f}\n")

    rows = []
    for detection in (0.0, 0.25, 0.5, 0.75, 1.0):
        estimate = estimate_ps_with_repair(
            architecture,
            attack,
            RepairPolicy(detection_probability=detection),
            trials=40,
            seed=17,
        )
        low, high = estimate.ci95
        rows.append([detection, estimate.mean, f"[{low:.3f}, {high:.3f}]"])
    print(
        format_table(
            ["detection prob / round", "P_S (MC)", "95% CI"],
            rows,
            title="Repair racing the successive attack (R=3 rounds)\n",
        )
    )

    # Capacity-limited operations team.
    rows = []
    for capacity in (0, 2, 5, 10, None):
        estimate = estimate_ps_with_repair(
            architecture,
            attack,
            RepairPolicy(detection_probability=0.8, capacity_per_round=capacity),
            trials=40,
            seed=17,
        )
        rows.append(["unlimited" if capacity is None else capacity, estimate.mean])
    print(
        format_table(
            ["repairs per round", "P_S (MC)"],
            rows,
            title="Operator bandwidth matters (detection fixed at 0.8)\n",
        )
    )

    # The smarter attacker shifts the race.
    smaller = SOSArchitecture(
        layers=3, mapping="one-to-two",
        total_overlay_nodes=2000, sos_nodes=60, filters=6,
    )
    comparison = monitoring_damage_comparison(
        smaller,
        SuccessiveAttack(break_in_budget=100, congestion_budget=400,
                         rounds=3, prior_knowledge=0.2),
        trials=30,
        seed=13,
    )
    print(
        f"Traffic-monitoring attacker (N=2000 scale): baseline P_S "
        f"{comparison.baseline_ps:.3f} -> {comparison.monitoring_ps:.3f} "
        f"({comparison.extra_disclosure:.1f} extra identities disclosed)."
    )


if __name__ == "__main__":
    main()
