#!/usr/bin/env python
"""Watch Algorithm 1 unfold against a live deployment.

Run:
    python examples/intelligent_attack_simulation.py

Deploys a generalized SOS instance over a 10,000-node overlay, runs the
paper's successive intelligent attack against the actual node sets
(break-ins disclose real neighbor tables; congestion floods the disclosed
nodes), then measures client success and compares three numbers:

* the analytical average-case P_S (Eqs. 10-27),
* the per-layer bad sets the executed attack actually produced,
* the observed delivery rate of real client packets.
"""

from __future__ import annotations

import numpy as np

from repro import SOSArchitecture, SuccessiveAttack, evaluate
from repro.attacks import IntelligentAttacker
from repro.core.successive import analyze_successive_breakdown
from repro.simulation import estimate_ps
from repro.sos import SOSDeployment, SOSProtocol
from repro.utils.tables import format_table


def main() -> None:
    architecture = SOSArchitecture(layers=4, mapping="one-to-two")
    attack = SuccessiveAttack()  # paper defaults
    rng = np.random.default_rng(2004)

    print(f"Architecture: {architecture.describe()}")
    print(
        f"Attack: N_T={attack.n_t:g} break-ins over R={attack.rounds} rounds, "
        f"N_C={attack.n_c:g} congestion, P_B={attack.p_b}, P_E={attack.p_e}\n"
    )

    # --- One executed attack, inspected in detail --------------------
    deployment = SOSDeployment.deploy(architecture, rng=rng)
    outcome = IntelligentAttacker().execute(deployment, attack, rng=rng)
    snapshot = outcome.knowledge.snapshot()
    print(
        f"Executed attack: {outcome.rounds_executed} rounds, "
        f"{outcome.break_in_attempts} break-in attempts, "
        f"{snapshot['broken']} nodes compromised, "
        f"{snapshot['disclosed']} SOS identities disclosed, "
        f"{snapshot['disclosed_filters']} filters leaked.\n"
    )

    analytic = evaluate(architecture, attack)
    breakdown = analyze_successive_breakdown(architecture, attack)
    rows = []
    for layer in range(1, architecture.layers + 2):
        name = f"layer {layer}" + (" (filters)" if layer == architecture.layers + 1 else "")
        rows.append(
            [
                name,
                analytic.layers[layer - 1].bad,
                outcome.bad_per_layer()[layer],
            ]
        )
    print(
        format_table(
            ["layer", "analytical avg bad s_i", "executed attack bad"],
            rows,
            title="Per-layer damage: average-case analysis vs one real run\n",
        )
    )
    del breakdown  # full round-by-round sets available for deeper inspection

    # --- Client's-eye view -------------------------------------------
    protocol = SOSProtocol(deployment)
    delivered = 0
    trials = 400
    for _ in range(trials):
        contacts = deployment.sample_client_contacts(rng)
        delivered += int(
            protocol.send("client", "target", contacts=contacts, rng=rng).delivered
        )
    print(f"Observed delivery on this deployment: {delivered / trials:.3f}")
    print(f"Analytical P_S:                       {analytic.p_s:.3f}")

    # --- Statistical comparison over many deployments ----------------
    mc = estimate_ps(architecture, attack, trials=100, clients_per_trial=4, seed=7)
    low, high = mc.ci95
    print(f"Monte Carlo over 100 deployments:     {mc.mean:.3f} (95% CI [{low:.3f}, {high:.3f}])")


if __name__ == "__main__":
    main()
