#!/usr/bin/env python
"""Attacks on the network *beneath* the overlay (paper §5).

Run:
    python examples/underlay_effects.py

Every overlay hop rides several physical links. This example builds a
Waxman underlay topology, homes the SOS nodes on its routers, and cuts
links — no overlay node is attacked at all — to show two effects the
analytical model cannot see:

1. routes die when an overlay hop's endpoints get partitioned;
2. surviving routes slow down as shortest paths detour around the cuts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import SOSArchitecture
from repro.overlay.topology import UnderlayTopology
from repro.sos import SOSDeployment
from repro.utils.tables import format_table


def sample_path(deployment, rng):
    contacts = deployment.sample_client_contacts(rng)
    current = contacts[int(rng.integers(0, len(contacts)))]
    path = [current]
    for _ in range(deployment.architecture.layers):
        neighbors = deployment.resolve(current).neighbors
        current = neighbors[int(rng.integers(0, len(neighbors)))]
        path.append(current)
    return path


def main() -> None:
    rng = np.random.default_rng(7)
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )
    deployment = SOSDeployment.deploy(architecture, rng=rng)
    members = [
        node_id
        for layer in range(1, architecture.layers + 2)
        for node_id in deployment.layer_members(layer)
    ]

    topology = UnderlayTopology(routers=150, model="waxman", rng=3)
    topology.attach_overlay_nodes(members)
    print(
        f"Underlay: {topology.routers} routers, {topology.links} links, "
        f"mean link latency {topology.mean_link_latency:.1f} ms\n"
    )

    rows = []
    total_links = topology.links
    cut_so_far = 0
    for target_fraction in (0.0, 0.1, 0.2, 0.4, 0.6, 0.8):
        want_cut = int(target_fraction * total_links)
        if want_cut > cut_so_far:
            topology.fail_random_links(want_cut - cut_so_far)
            cut_so_far = want_cut
        connected = 0
        latencies = []
        probes = 200
        for _ in range(probes):
            path = sample_path(deployment, rng)
            latency = topology.path_latency(path)
            if math.isfinite(latency):
                connected += 1
                latencies.append(latency)
        rows.append(
            [
                target_fraction,
                connected / probes,
                sum(latencies) / len(latencies) if latencies else float("nan"),
                topology.partition_fraction(members),
            ]
        )

    print(
        format_table(
            [
                "links cut",
                "connected routes",
                "mean route latency (ms)",
                "partitioned SOS pairs",
            ],
            rows,
            title="Cutting underlay links under an untouched overlay\n",
        )
    )
    print(
        "The overlay is perfectly healthy throughout — all damage here is\n"
        "physical. A deployment that only monitors overlay-node health\n"
        "would report P_S = 1 while clients lose connectivity."
    )


if __name__ == "__main__":
    main()
