# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench experiments paper examples docs-check all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --all --no-plot

paper:
	$(PYTHON) -m repro.experiments.runner --paper-only

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples OK"

all: test bench experiments
