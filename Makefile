# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench bench-save bench-compare bench-ladder \
	experiments paper examples docs-check all lint lint-baseline \
	lint-sarif typecheck contracts-test verify serve chaos slo-save \
	scale-smoke scenario-smoke

# --- correctness tooling (docs/STATIC_ANALYSIS.md) ---------------------
# `lint` always runs the in-repo repro-lint analyzer (statement rules +
# call-graph/dataflow passes) against the committed baseline and fails on
# any non-baselined finding; ruff and mypy are optional locally (this
# container does not ship them) and mandatory in the CI lint job.
# PYTHONDONTWRITEBYTECODE keeps the run byte-cache independent: no
# __pycache__ churn under tools/ from linting alone.

lint:
	PYTHONPATH=tools PYTHONDONTWRITEBYTECODE=1 $(PYTHON) -m repro_lint \
		--baseline .repro-lint-baseline.json src benchmarks examples
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tools; \
	else \
		echo "ruff not installed locally; skipped (CI runs it)"; \
	fi

# Ratify the current findings into .repro-lint-baseline.json. Policy:
# the committed baseline stays empty — use this only as a migration aid
# when landing a new pass, then burn the baseline back down.
lint-baseline:
	PYTHONPATH=tools PYTHONDONTWRITEBYTECODE=1 $(PYTHON) -m repro_lint \
		--baseline .repro-lint-baseline.json --write-baseline \
		src benchmarks examples

# Emit the SARIF log CI uploads for code scanning.
lint-sarif:
	PYTHONPATH=tools PYTHONDONTWRITEBYTECODE=1 $(PYTHON) -m repro_lint \
		--format sarif src benchmarks examples > repro-lint.sarif || true
	@echo "wrote repro-lint.sarif"

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy -p repro.core -p repro.utils -p repro.contracts \
			-p repro.detection -p repro.service -p repro.scenarios; \
	else \
		echo "mypy not installed locally; skipped (CI runs it)"; \
	fi

contracts-test:
	$(PYTHON) -m pytest tests/test_contracts.py tests/utils/test_validation.py tests/tools -q
	REPRO_CONTRACTS=0 $(PYTHON) -m pytest tests/test_contracts.py -q

verify: lint typecheck test

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# --- benchmark trajectory (docs/PERFORMANCE.md) ------------------------
# bench-save runs the full benchmark suite (timings AND the perf
# assertions, e.g. parallel bit-identity and the vectorized >=5x check)
# plus the tier ladder, and normalizes everything into the next
# BENCH_<n>.json at the repo root; bench-compare diffs the two newest
# snapshots (per-tier included) and exits non-zero on a >20% regression
# (`--against N` diffs the newest against an arbitrary older snapshot).
# bench-ladder on its own prints the scalar/numpy/compiled table and
# re-checks the cross-tier bit-identity contract.

bench-save:
	REPRO_BENCH_MEMORY=1 $(PYTHON) -m pytest benchmarks/ \
		--benchmark-json=.bench_raw.json
	PYTHONPATH=src $(PYTHON) tools/bench_ladder.py \
		--output .bench_ladder.json
	$(PYTHON) tools/bench_snapshot.py .bench_raw.json \
		--ladder .bench_ladder.json
	@rm -f .bench_raw.json .bench_ladder.json

bench-ladder:
	PYTHONPATH=src $(PYTHON) tools/bench_ladder.py

bench-compare:
	$(PYTHON) tools/bench_compare.py

# Large-N smoke over the array core: 10^5-node flooded fastsim plus 10^4
# batched Chord lookups under one wall budget, timings + peak RSS in
# scale-smoke.json. `--nodes 1000000` exercises the million-node path.
scale-smoke:
	PYTHONPATH=src $(PYTHON) tools/scale_smoke.py --output scale-smoke.json

# Every committed zoo scenario on both packet engines: asserts the
# cross-engine injection-schedule contract and writes the delivery ×
# detection-quality matrix (scenario-smoke.json).
scenario-smoke:
	PYTHONPATH=src $(PYTHON) tools/scenario_smoke.py --quick --budget 300 \
		--output scenario-smoke.json

# --- evaluation service (docs/SERVICE.md) ------------------------------
# serve boots the HTTP façade locally; chaos runs the full fault drill
# (worker kills mid-campaign, latency injection, spike load) and fails
# unless every robustness assertion holds; slo-save additionally commits
# the SLO report as the next SLO_<n>.json-style snapshot.

serve:
	PYTHONPATH=src $(PYTHON) -m repro.service

chaos:
	PYTHONPATH=src $(PYTHON) tools/chaos_service.py --quick

slo-save:
	PYTHONPATH=src $(PYTHON) tools/chaos_service.py --output SLO_1.json

experiments:
	$(PYTHON) -m repro.experiments.runner --all --no-plot

paper:
	$(PYTHON) -m repro.experiments.runner --paper-only

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples OK"

all: test bench experiments
