# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test bench experiments paper examples docs-check all \
	lint typecheck contracts-test verify

# --- correctness tooling (docs/STATIC_ANALYSIS.md) ---------------------
# `lint` always runs the in-repo repro-lint AST engine; ruff and mypy are
# optional locally (this container does not ship them) and mandatory in
# the CI lint job.

lint:
	PYTHONPATH=tools $(PYTHON) -m repro_lint src benchmarks examples
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tools; \
	else \
		echo "ruff not installed locally; skipped (CI runs it)"; \
	fi

typecheck:
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy -p repro.core -p repro.utils -p repro.contracts; \
	else \
		echo "mypy not installed locally; skipped (CI runs it)"; \
	fi

contracts-test:
	$(PYTHON) -m pytest tests/test_contracts.py tests/utils/test_validation.py tests/tools -q
	REPRO_CONTRACTS=0 $(PYTHON) -m pytest tests/test_contracts.py -q

verify: lint typecheck test

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner --all --no-plot

paper:
	$(PYTHON) -m repro.experiments.runner --paper-only

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f > /dev/null || exit 1; done; echo "all examples OK"

all: test bench experiments
