"""Regenerate Figure 6 (successive attack: mapping and node distribution)."""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_fig6a(benchmark):
    result = regenerate_and_report(benchmark, "fig6a")
    best = max(
        (value, mapping, layers)
        for mapping, values in result.series.items()
        for layers, value in zip(result.x_values, values)
    )
    # Paper: L=4 with one-to-two wins this grid.
    assert best[1] == "one-to-two"


def test_fig6b(benchmark):
    result = regenerate_and_report(benchmark, "fig6b")
    l4 = result.x_values.index(4)
    assert (
        result.series["one-to-five increasing"][l4]
        > result.series["one-to-five decreasing"][l4]
    )
