"""Regenerate the N_C-sensitivity analysis (omitted in the paper for
space; reconstructed from the same model and referenced tech report)."""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_fig_nc(benchmark):
    result = regenerate_and_report(benchmark, "fig-nc")
    # Every curve is a monotone decay in the congestion budget.
    for values in result.series.values():
        assert values[0] >= values[-1]


def test_fig_nc_pure_congestion(benchmark):
    result = regenerate_and_report(benchmark, "fig-nc-pure")
    assert result.series["one-to-all"][-1] > 0.99
