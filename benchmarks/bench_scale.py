"""Struct-of-arrays scale path: the ISSUE 8 criteria.

Three measurements on a 10^5-node overlay (3 layers, one-to-half, 3000
SOS nodes): the column-borrowing ``encode_deployment`` vs the original
object-walking encoder it replaced (the speedup criterion — the array
path is a vectorized gather plus an epoch-keyed structure cache, the
object path resolves every node view), one flooded fast-engine run over
the encoding, and a 10k-key batched Chord lookup through the
deployment's own ring. Peak RSS rides along in ``extra_info`` via the
benchmark conftest, so the BENCH_<n>.json trajectory records that the
million-node representation stays columnar (no object blow-up).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import SOSArchitecture
from repro.perf.fastsim import (
    _encode_deployment_objects,
    encode_deployment,
    run_fast,
)
from repro.simulation.packet_sim import PacketSimConfig, flood_layer
from repro.sos.deployment import SOSDeployment

NODES = 100_000
ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-half",
    total_overlay_nodes=NODES,
    sos_nodes=3_000,
)
CONFIG = PacketSimConfig(
    clients=200,
    duration=6.0,
    warmup=1.0,
    flood_start=2.0,
    client_rate=5.0,
    flood_rate=200.0,
)
SEED = 20040326
LOOKUPS = 10_000


def _deployment():
    return SOSDeployment.deploy(ARCH, rng=SEED)


def _encode_cold(deployment):
    # Drop the epoch-keyed cache so every round pays the full gather —
    # the honest comparison against the object walk.
    deployment._fastsim_structure = None
    return encode_deployment(deployment)


def test_encode_100k_arrays(benchmark):
    deployment = _deployment()
    arrays = benchmark.pedantic(
        _encode_cold, args=(deployment,), rounds=3, iterations=1
    )
    assert len(arrays.node_ids) == 3_000 + ARCH.filters


def test_encode_100k_objects(benchmark):
    deployment = _deployment()
    arrays = benchmark.pedantic(
        _encode_deployment_objects, args=(deployment,), rounds=3, iterations=1
    )
    assert len(arrays.node_ids) == 3_000 + ARCH.filters


def _encode_sweep(deployment, encoder, rounds=8):
    """Re-encode between health mutations, as replica sweeps and the
    detect→repair loop do. Health writes leave the wiring epoch alone,
    so the array path re-gathers only ``is_bad`` after round one; the
    object path rebuilds everything every time."""
    members = deployment.sos_member_ids()
    results = []
    for index in range(rounds):
        node = deployment.resolve(members[index % len(members)])
        (node.congest if index % 2 else node.recover)()
        results.append(encoder(deployment))
    return results


def test_encode_sweep_speedup():
    deployment = _deployment()
    deployment._fastsim_structure = None
    start = time.perf_counter()
    fast_sweep = _encode_sweep(deployment, encode_deployment)
    array_seconds = time.perf_counter() - start

    start = time.perf_counter()
    object_sweep = _encode_sweep(deployment, _encode_deployment_objects)
    object_seconds = time.perf_counter() - start

    # Same encodings either way — the array path is a pure optimization.
    # (The object sweep continues the same health churn sequence, so
    # compare structure plus the final health snapshot, not every round.)
    assert np.array_equal(
        fast_sweep[-1].node_ids, object_sweep[-1].node_ids
    )
    for layer in fast_sweep[-1].neighbors:
        assert np.array_equal(
            fast_sweep[-1].neighbors[layer],
            object_sweep[-1].neighbors[layer],
        )
    speedup = object_seconds / array_seconds
    assert speedup >= 3.0, (
        f"array encode sweep speedup {speedup:.1f}x below the 3x "
        f"criterion (objects {object_seconds:.3f}s, arrays "
        f"{array_seconds:.3f}s)"
    )


def _flooded_run(deployment):
    from repro.utils.seeding import make_rng

    rng = make_rng(SEED)
    targets = flood_layer(deployment, 1, 0.25, rng=rng)
    return run_fast(deployment, CONFIG, rng=rng, flood_targets=targets)


def test_flooded_fastsim_100k(benchmark):
    deployment = _deployment()
    report = benchmark.pedantic(
        _flooded_run, args=(deployment,), rounds=1, iterations=1
    )
    assert report.sent > 0
    assert 0.0 < report.delivery_ratio < 1.0


def test_chord_10k_batch_100k_ring(benchmark):
    deployment = _deployment()
    ring = deployment.chord
    rng = np.random.default_rng(SEED)
    live = np.asarray(ring.live_node_ids, dtype=np.int64)
    keys = [int(k) for k in rng.integers(0, ring.space.size, size=LOOKUPS)]
    starts = [int(s) for s in live[rng.integers(0, len(live), size=LOOKUPS)]]
    batch = benchmark.pedantic(
        ring.lookup_batch, args=(keys, starts), rounds=1, iterations=1
    )
    assert bool(batch.succeeded.all())
