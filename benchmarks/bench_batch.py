"""Vectorized batch evaluation vs the scalar per-point loop.

A 1000-point ``grid_sweep`` (8 layer counts x 125 break-in budgets under
the successive attack) is the acceptance workload: the vectorized path
must be >= 5x faster than the scalar oracle with results equal to within
1e-12 (they are typically bit-identical — the batch kernels replicate the
scalar operation order).
"""

from __future__ import annotations

import time

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.experiments.sweep import grid_sweep

BASE_ARCH = SOSArchitecture(layers=4, mapping="one-to-two")
BASE_ATTACK = SuccessiveAttack(
    break_in_budget=200, congestion_budget=2000, rounds=3, prior_knowledge=0.2
)
LAYER_VALUES = list(range(1, 9))
BUDGET_VALUES = [round(i * 3000 / 124, 3) for i in range(125)]


def _sweep(vectorized: bool):
    return grid_sweep(
        BASE_ARCH,
        BASE_ATTACK,
        "layers",
        LAYER_VALUES,
        "break_in_budget",
        BUDGET_VALUES,
        vectorized=vectorized,
    )


def test_grid_sweep_1000pt_vectorized(benchmark):
    grid = benchmark(_sweep, True)
    assert len(grid.row_values) * len(grid.column_values) == 1000


def test_grid_sweep_1000pt_scalar(benchmark):
    grid = benchmark.pedantic(_sweep, args=(False,), rounds=1, iterations=1)
    assert len(grid.row_values) * len(grid.column_values) == 1000


def test_vectorized_5x_faster_and_equal():
    start = time.perf_counter()
    scalar = _sweep(False)
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = _sweep(True)
    vectorized_seconds = time.perf_counter() - start

    for scalar_row, vector_row in zip(scalar.p_s, vectorized.p_s):
        for scalar_value, vector_value in zip(scalar_row, vector_row):
            assert abs(scalar_value - vector_value) <= 1e-12

    speedup = scalar_seconds / vectorized_seconds
    assert speedup >= 5.0, (
        f"vectorized grid_sweep speedup {speedup:.1f}x below the 5x "
        f"criterion (scalar {scalar_seconds:.3f}s, vectorized "
        f"{vectorized_seconds:.3f}s)"
    )
