"""Fast packet engine vs event-driven oracle: the ISSUE 4 criterion.

A 1000-client flooded run (half the entry layer under attack, ~45k
legitimate packets, ~1.1M attack packets) must be >= 10x faster on the
vectorized engine than on the event-driven oracle, while reproducing
the oracle's injection schedule bit for bit (both engines consume the
same per-source RNG sub-streams).
"""

from __future__ import annotations

import time

from repro.core import SOSArchitecture
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment

ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-half",
    total_overlay_nodes=2000,
    sos_nodes=120,
    filters=8,
)
CONFIG = PacketSimConfig(
    duration=50.0, warmup=5.0, clients=1000, client_rate=1.0
)
SEED = 1


def _run(fast: bool):
    deployment = SOSDeployment.deploy(ARCH, rng=7)
    targets = flood_layer(deployment, layer=1, fraction=0.5, rng=2)
    simulation = PacketLevelSimulation(deployment, CONFIG, rng=SEED)
    return simulation.run(flood_targets=targets, fast=fast)


def test_flooded_1000_clients_fast(benchmark):
    report = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    assert report.sent > 40_000
    assert 0.0 < report.delivery_ratio < 1.0


def test_flooded_1000_clients_event(benchmark):
    report = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    assert report.sent > 40_000
    assert 0.0 < report.delivery_ratio < 1.0


def test_fast_speedup_at_least_10x():
    start = time.perf_counter()
    fast = _run(True)
    fast_seconds = time.perf_counter() - start

    start = time.perf_counter()
    event = _run(False)
    event_seconds = time.perf_counter() - start

    # Shared sub-streams: the injection schedules must agree exactly.
    assert fast.sent == event.sent
    assert fast.attack_packets_absorbed == event.attack_packets_absorbed
    speedup = event_seconds / fast_seconds
    assert speedup >= 10.0, (
        f"fast engine speedup {speedup:.1f}x below the 10x criterion "
        f"(event {event_seconds:.2f}s, fast {fast_seconds:.2f}s)"
    )
