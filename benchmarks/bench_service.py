"""Service control-plane overhead: the robustness layer must be cheap.

The admission queue, circuit breaker, and result store sit on every
request; these benchmarks pin their per-operation cost so a regression
in the control plane shows up in the trajectory even though end-to-end
HTTP latency is dominated by the evaluation itself. The full-stack
numbers (throughput, p50/p95/p99 under chaos) live in the committed
``SLO_<n>.json`` produced by ``tools/chaos_service.py``.
"""

from __future__ import annotations

import asyncio

from repro.core.result_store import ResultStore
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.service.admission import AdmissionQueue
from repro.service.deadline import NO_DEADLINE
from repro.service.loadgen import arrival_schedule, hold, ramp, spike

REQUESTS = 2_000


def test_admission_submit_shed_cycle(benchmark):
    """Admit-or-shed for 2000 requests against a small bounded queue."""

    def cycle():
        async def scenario():
            queue = AdmissionQueue(capacity=64)
            shed = 0
            for i in range(REQUESTS):
                request = queue.try_submit({"n": i}, "batch", NO_DEADLINE)
                if request.future.done():
                    shed += 1
            queue.drain()
            return shed

        return asyncio.run(scenario())

    shed = benchmark(cycle)
    assert shed == REQUESTS - 64


def test_breaker_record_and_allow(benchmark):
    """A success/failure/allow churn spanning trip and recovery."""
    config = BreakerConfig(window=32, min_volume=8, reset_timeout=0.000_1)

    def churn():
        breaker = CircuitBreaker(config)
        for i in range(REQUESTS):
            if breaker.allow():
                if i % 2 == 0:
                    breaker.record_failure()
                else:
                    breaker.record_success()
        return breaker.open_count

    opens = benchmark(churn)
    assert opens >= 1


def test_result_store_hit_path(benchmark):
    """Fresh-hit lookups (the cache fast path every request takes)."""
    store = ResultStore(max_entries=1024, ttl=3_600.0)
    for i in range(512):
        store.put(f"key-{i}", {"p_s": 0.5})

    def lookups():
        hits = 0
        for i in range(REQUESTS):
            if store.lookup(f"key-{i % 512}") is not None:
                hits += 1
        return hits

    hits = benchmark(lookups)
    assert hits == REQUESTS


def test_arrival_schedule_generation(benchmark):
    """Building a full ramp/hold/spike schedule (done once per run)."""
    phases = [ramp(5.0, to_rps=50.0), hold(30.0, rps=50.0),
              spike(5.0, rps=200.0)]

    offsets = benchmark(arrival_schedule, phases)
    assert len(offsets) > 2_000
    assert offsets == sorted(offsets)
