"""Regenerate Figure 4 (one-burst attack sensitivity), benchmarked.

Fig. 4(a): pure congestion at N_C in {2000, 6000}; Fig. 4(b): break-in at
N_T in {200, 2000} with N_C = 2000. Eight layer counts x three mappings.
"""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_fig4a(benchmark):
    result = regenerate_and_report(benchmark, "fig4a")
    # The headline shape: one-to-all survives pure congestion everywhere.
    assert min(result.series["one-to-all N_C=6000"]) > 0.99


def test_fig4b(benchmark):
    result = regenerate_and_report(benchmark, "fig4b")
    # The reversal: the same one-to-all mapping collapses under break-in.
    assert max(result.series["one-to-all N_T=200"]) < 1e-3
