"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` regenerates one figure of the paper through
pytest-benchmark, prints the reproduced rows (the same series the paper
plots), and asserts the machine-checked claims, so ``pytest benchmarks/
--benchmark-only`` is simultaneously a performance run and a reproduction
run.

With ``REPRO_BENCH_MEMORY=1`` in the environment (``make bench-save``
sets it), each benchmark also records its memory footprint (peak RSS
high-water mark plus current RSS, both from the kernel — no third-party
deps) into ``extra_info``; ``tools/bench_snapshot.py`` carries it into
the ``BENCH_<n>.json`` trajectory and ``tools/bench_compare.py`` reports
it alongside timings (report-only: memory never trips the regression
gate). Unset, the capture fixture is a no-op, so plain ``make test`` /
``make bench`` runs pay nothing for it.
"""

from __future__ import annotations

import os
import resource
from typing import Optional

import pytest

from repro.experiments.figures import run_figure
from repro.experiments.report import render_text


def _current_rss_kb() -> Optional[int]:
    """VmRSS from ``/proc/self/status`` in kB (None off-Linux)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


@pytest.fixture(autouse=True)
def _record_memory(request):
    """Attach per-benchmark memory counters to the benchmark report.

    Opt-in via ``REPRO_BENCH_MEMORY`` (any non-empty value): the
    ``/proc`` reads and ``getrusage`` calls are pointless overhead for
    plain test runs, so only snapshot-recording invocations pay them.

    ``peak_rss_kb`` is the process high-water mark (``ru_maxrss``) once
    the benchmark has run — monotone across the session, so compare it
    against the benchmark's working-set expectations, not against other
    rows. ``rss_kb`` is the live resident set right after the run.
    """
    if not os.environ.get("REPRO_BENCH_MEMORY"):
        yield
        return
    # Grab the fixture object up front: autouse fixtures finalize after
    # plain ones, so requesting it post-yield would hit a torn-down
    # fixture. The object itself stays valid; only its values change.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    yield
    if benchmark is None:
        return
    benchmark.extra_info["peak_rss_kb"] = int(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    rss = _current_rss_kb()
    if rss is not None:
        benchmark.extra_info["rss_kb"] = rss


def regenerate_and_report(benchmark, figure_id: str, plot: bool = False):
    """Benchmark one figure regeneration and print its rows and claims."""
    result = benchmark(run_figure, figure_id)
    print()
    print(render_text(result, plot=plot))
    failed = result.failed_claims()
    assert not failed, f"{figure_id} failed claims: " + "; ".join(
        c.description for c in failed
    )
    return result
