"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` regenerates one figure of the paper through
pytest-benchmark, prints the reproduced rows (the same series the paper
plots), and asserts the machine-checked claims, so ``pytest benchmarks/
--benchmark-only`` is simultaneously a performance run and a reproduction
run.
"""

from __future__ import annotations

from repro.experiments.figures import run_figure
from repro.experiments.report import render_text


def regenerate_and_report(benchmark, figure_id: str, plot: bool = False):
    """Benchmark one figure regeneration and print its rows and claims."""
    result = benchmark(run_figure, figure_id)
    print()
    print(render_text(result, plot=plot))
    failed = result.failed_claims()
    assert not failed, f"{figure_id} failed claims: " + "; ".join(
        c.description for c in failed
    )
    return result
