"""Detection instrumentation overhead on the flooded fast-path benchmark.

The ISSUE 5 criteria: attaching the marking collector (and traffic
monitor) to the 1000-client flooded fast run costs <= 10% wall clock,
and leaving detection disabled costs measured-zero — the disabled run's
report is bit-identical to a plain simulation's and its wall clock is
statistically indistinguishable.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core import SOSArchitecture
from repro.detection.marking import MarkCollector, MarkingConfig, build_attack_graph
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment

ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-half",
    total_overlay_nodes=2000,
    sos_nodes=120,
    filters=8,
)
CONFIG = PacketSimConfig(
    duration=50.0, warmup=5.0, clients=1000, client_rate=1.0, flood_start=10.0
)
MONITOR = MonitorConfig(bin_width=1.0, warmup_bins=5, baseline_bins=5)
MARKING = MarkingConfig(probability=0.05, sources_per_target=2, path_depth=6)
SEED = 1


def _run(instrumented: bool):
    deployment = SOSDeployment.deploy(ARCH, rng=7)
    targets = flood_layer(deployment, layer=1, fraction=0.5, rng=2)
    monitor = None
    collector = None
    if instrumented:
        monitor = TrafficMonitor(MONITOR)
        collector = MarkCollector(build_attack_graph(targets, MARKING), MARKING)
    simulation = PacketLevelSimulation(
        deployment, CONFIG, rng=SEED, monitor=monitor, marking=collector
    )
    report = simulation.run(flood_targets=targets, fast=True)
    return report, monitor, collector


def _best_of(n: int, instrumented: bool) -> float:
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        _run(instrumented)
        best = min(best, time.perf_counter() - start)
    return best


def test_flooded_fast_instrumented(benchmark):
    report, monitor, collector = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    assert report.sent > 40_000
    assert monitor.observations > report.sent
    assert collector.packets_observed == report.attack_packets_absorbed


def test_marking_overhead_within_10pct():
    plain = _best_of(3, instrumented=False)
    instrumented = _best_of(3, instrumented=True)
    overhead = instrumented / plain - 1.0
    assert overhead <= 0.10, (
        f"monitor+marking overhead {overhead:.1%} exceeds the 10% budget "
        f"(plain {plain:.2f}s, instrumented {instrumented:.2f}s)"
    )


def test_detection_disabled_measured_zero():
    # The instruments are pure observers: the monitor records existing
    # token-bucket verdicts and the mark uniforms come from a dedicated
    # spawned stream, so the instrumented report is bit-identical to the
    # plain one — attaching detection perturbs nothing it measures.
    plain_report, _, _ = _run(instrumented=False)
    instrumented_report, _, _ = _run(instrumented=True)
    assert dataclasses.asdict(plain_report) == dataclasses.asdict(
        instrumented_report
    )


def test_instrumented_monitor_flags_flood_targets():
    _, monitor, _ = _run(instrumented=True)
    deployment = SOSDeployment.deploy(ARCH, rng=7)
    targets = flood_layer(deployment, layer=1, fraction=0.5, rng=2)
    flagged = set(monitor.flagged_nodes())
    hit = len(flagged & set(targets)) / len(targets)
    assert hit >= 0.9, f"monitor flagged only {hit:.0%} of flooded nodes"
