"""Regenerate Figure 8 (sensitivity of P_S to the break-in budget N_T)."""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_fig8a(benchmark):
    result = regenerate_and_report(benchmark, "fig8a")
    # Doubling the overlay population lifts every curve.
    assert all(
        large >= small
        for small, large in zip(
            result.series["one-to-one N=10000"],
            result.series["one-to-one N=20000"],
        )
    )


def test_fig8b(benchmark):
    result = regenerate_and_report(benchmark, "fig8b")
    # Crossover: one-to-two starts above one-to-one but ends below it.
    assert result.series["L=3 one-to-two"][0] > result.series["L=3 one-to-one"][0]
    assert result.series["L=3 one-to-two"][-1] < result.series["L=3 one-to-one"][-1]
