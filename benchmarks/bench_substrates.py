"""Micro-benchmarks of the substrates the experiments are built on.

These quantify the cost of the pieces downstream users call in loops:
analytical evaluations (thousands per design-space sweep), Chord lookups,
full deployments, and executed attacks.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import IntelligentAttacker
from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.overlay import ChordRing
from repro.sos import SOSDeployment, SOSProtocol


def test_analytical_successive_evaluation(benchmark):
    """One successive-attack evaluation (the design-space inner loop)."""
    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    attack = SuccessiveAttack()
    result = benchmark(evaluate, arch, attack)
    assert 0.0 <= result.p_s <= 1.0


def test_chord_lookup(benchmark):
    """One iterative Chord lookup on a 1000-node ring."""
    rng = np.random.default_rng(1)
    ids = sorted(int(i) for i in rng.choice(2**31, size=1000, replace=False))
    ring = ChordRing.build(ids)
    keys = [int(k) for k in rng.integers(0, 2**31, size=256)]
    starts = [ids[int(i)] for i in rng.integers(0, len(ids), size=256)]
    state = {"i": 0}

    def lookup():
        i = state["i"] % 256
        state["i"] += 1
        return ring.lookup(keys[i], starts[i])

    result = benchmark(lookup)
    assert result.succeeded


def test_deployment(benchmark):
    """Deploying the paper-scale system (N=10000, n=100)."""
    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    rng = np.random.default_rng(3)
    deployment = benchmark(SOSDeployment.deploy, arch, None, rng)
    assert len(deployment.network.sos_nodes) == 100


def test_executed_successive_attack(benchmark):
    """Algorithm 1 executed against a paper-scale deployment."""
    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    attacker = IntelligentAttacker()
    attack = SuccessiveAttack()
    rng = np.random.default_rng(5)

    def run():
        deployment = SOSDeployment.deploy(arch, rng=rng)
        return attacker.execute(deployment, attack, rng=rng)

    outcome = benchmark(run)
    assert outcome.break_in_attempts <= 200


def test_adaptive_attacker_best_response(benchmark):
    """One worst_case_attack sweep (13 analytic evaluations)."""
    from repro.core.game import worst_case_attack

    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    result = benchmark(worst_case_attack, arch)
    assert 0.0 <= result.guaranteed_p_s <= 1.0


def test_sensitivity_profile(benchmark):
    """One full tornado profile (9 perturbed evaluations)."""
    from repro.core.sensitivity import sensitivity_profile

    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    attack = SuccessiveAttack()
    profile = benchmark(sensitivity_profile, arch, attack)
    assert profile


def test_end_to_end_forwarding(benchmark):
    """One client packet through a healthy 5-hop deployment."""
    arch = SOSArchitecture(layers=4, mapping="one-to-two")
    deployment = SOSDeployment.deploy(arch, rng=7)
    protocol = SOSProtocol(deployment)
    rng = np.random.default_rng(9)
    contacts = protocol.register_client(rng=rng)

    def send():
        return protocol.send("bench", "target", contacts=contacts, rng=rng)

    receipt = benchmark(send)
    assert receipt.delivered
