"""Scenario-DSL benchmarks: vector compilation and fast-engine replay.

Two campaign shapes from the zoo's vector catalogue — a shrew-style
pulsing flood and a mirai-style botnet wave — scaled up to a 2000-node
deployment and replayed on the vectorized fast engine (mode ``none``,
one phase: pure engine + schedule cost, no repair loop). A third case
times :func:`compile_scenario` alone, so schedule lowering and engine
replay stay separately visible in the trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.scenarios import (
    ArchitectureSpec,
    BotnetWave,
    PhaseSpec,
    PulsingFlood,
    ScenarioSpec,
    SimSpec,
    compile_scenario,
)
from repro.scenarios.runner import run_scenario
from repro.sos.deployment import SOSDeployment

BENCH_ARCH = ArchitectureSpec(
    layers=3,
    mapping="one-to-two",
    overlay_nodes=2000,
    sos_nodes=120,
    filters=8,
)
BENCH_SIM = SimSpec(
    duration=40.0,
    warmup=4.0,
    clients=200,
    client_rate=2.0,
    node_capacity=50.0,
)


def _pulsing_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-pulsing",
        seed=17,
        architecture=BENCH_ARCH,
        sim=BENCH_SIM,
        phases=(
            PhaseSpec("baseline", 0.0, 8.0),
            PhaseSpec(
                "pulse",
                8.0,
                32.0,
                vectors=(
                    PulsingFlood(
                        layer=1, fraction=0.5, rate=400.0, period=2.0, duty=0.5
                    ),
                ),
            ),
        ),
    )


def _botnet_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-botnet",
        seed=23,
        architecture=BENCH_ARCH,
        sim=BENCH_SIM,
        phases=(
            PhaseSpec("quiet", 0.0, 8.0),
            PhaseSpec(
                "wave",
                8.0,
                32.0,
                vectors=(
                    BotnetWave(
                        layer=1,
                        fraction=0.5,
                        bots=120,
                        rate_per_bot=20.0,
                        recruit_rate=10.0,
                        mean_lifetime=12.0,
                    ),
                ),
            ),
        ),
    )


def test_pulsing_flood_fast(benchmark):
    report = benchmark.pedantic(
        run_scenario,
        args=(_pulsing_spec(),),
        kwargs={"mode": "none", "phases": 1, "engine": "fast"},
        rounds=1,
        iterations=1,
    )
    assert sum(report.sent_per_phase) > 5_000
    assert sum(report.attack_packets_per_phase) > 50_000


def test_botnet_wave_fast(benchmark):
    report = benchmark.pedantic(
        run_scenario,
        args=(_botnet_spec(),),
        kwargs={"mode": "none", "phases": 1, "engine": "fast"},
        rounds=1,
        iterations=1,
    )
    assert sum(report.sent_per_phase) > 5_000
    assert sum(report.attack_packets_per_phase) > 20_000


def test_compile_scenario_only(benchmark):
    spec = _botnet_spec()
    deployment = SOSDeployment.deploy(
        spec.build_architecture(), rng=np.random.default_rng(5)
    )
    compiled = benchmark.pedantic(
        compile_scenario, args=(spec, deployment), rounds=1, iterations=1
    )
    assert compiled.schedule.total_attack_packets > 20_000
