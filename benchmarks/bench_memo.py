"""Memoized probability kernel: cache hits vs cold evaluation.

Successive-attack analysis re-evaluates ``all_bad_probability`` with
repeating ``(x, y, z)`` triples across rounds and grid points; the
bounded ``lru_cache`` on the inner product turns those repeats into
dictionary lookups. ``warm`` benchmarks a pass where every call hits the
cache; ``cold`` clears the cache each round so every call recomputes the
product — the gap between the two is the memoization win.
"""

from __future__ import annotations

from repro.core.probability import (
    all_bad_cache_clear,
    all_bad_cache_info,
    all_bad_probability,
)

TRIPLES = [
    (1000.0 + i, 0.5 * i + 3.0, 1 + (i % 24))
    for i in range(200)
]


def _single_pass():
    total = 0.0
    for x, y, z in TRIPLES:
        total += all_bad_probability(x, y, z)
    return total


def test_kernel_warm_cache(benchmark):
    all_bad_cache_clear()
    _single_pass()  # prime: every benchmarked call below is a cache hit
    result = benchmark(_single_pass)
    assert result >= 0.0
    assert all_bad_cache_info().hits > 0, "memoized kernel never hit its cache"


def test_kernel_cold_cache(benchmark):
    def cold():
        all_bad_cache_clear()
        return _single_pass()

    result = benchmark(cold)
    assert result >= 0.0


def test_repeated_triples_hit_the_cache():
    repeats = 50
    all_bad_cache_clear()
    for _ in range(repeats):
        _single_pass()
    info = all_bad_cache_info()
    # 200 distinct triples -> 200 misses; every repeat afterwards hits.
    assert info.misses == len(TRIPLES)
    assert info.hits == (repeats - 1) * len(TRIPLES)
