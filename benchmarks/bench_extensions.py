"""Benchmark the §5-extension experiments (latency, repair, monitoring)."""

from __future__ import annotations

from repro.experiments.extensions import (
    extension_monitoring,
    extension_priority,
    extension_repair,
)
from repro.experiments.report import render_text
from benchmarks.conftest import regenerate_and_report


def test_extension_latency(benchmark):
    regenerate_and_report(benchmark, "ext-latency")


def test_extension_repair(benchmark):
    result = benchmark.pedantic(
        extension_repair, kwargs={"trials": 25, "seed": 11}, rounds=1, iterations=1
    )
    print()
    print(render_text(result, plot=False))
    assert not result.failed_claims()


def test_extension_monitoring(benchmark):
    result = benchmark.pedantic(
        extension_monitoring,
        kwargs={"trials": 20, "seed": 13},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_text(result, plot=False))
    assert not result.failed_claims()


def test_extension_underlay(benchmark):
    regenerate_and_report(benchmark, "ext-underlay")


def test_extension_game(benchmark):
    regenerate_and_report(benchmark, "ext-game")


def test_extension_priority(benchmark):
    result = benchmark.pedantic(
        extension_priority,
        kwargs={"trials": 100, "seed": 29},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_text(result, plot=False))
    assert not result.failed_claims()


def test_baseline_overlay_size(benchmark):
    regenerate_and_report(benchmark, "base-n")


def test_extension_placement(benchmark):
    result = regenerate_and_report(benchmark, "ext-placement")
    diverse = result.series["router-diverse enrollment"]
    random_rates = result.series["random enrollment"]
    assert diverse[2] > random_rates[2]


def test_ablation_schedule_variants(benchmark):
    regenerate_and_report(benchmark, "abl-variants")
