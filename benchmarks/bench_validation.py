"""Benchmark the analytical-vs-Monte-Carlo validation grid.

This is the run that justifies trusting the reproduced curves: executed
attacks (real deployments, Algorithm 1 on real node sets, packet
forwarding) must agree with the average-case analysis on every grid point.
"""

from __future__ import annotations

from repro.experiments.report import render_text
from repro.experiments.validation import validation_figure


def test_validation_grid(benchmark):
    result = benchmark.pedantic(
        validation_figure,
        kwargs={"trials": 60, "clients_per_trial": 4, "seed": 2004},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_text(result, plot=False))
    failed = result.failed_claims()
    assert not failed, "; ".join(c.description for c in failed)
