"""Regenerate Figure 7 (sensitivity of P_S to the round count R)."""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_fig7(benchmark):
    result = regenerate_and_report(benchmark, "fig7")
    # Every layer count loses availability as R grows.
    for values in result.series.values():
        assert values[0] >= values[-1]
