"""Benchmark harness: regenerates every paper figure under pytest-benchmark."""
