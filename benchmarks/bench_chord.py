"""Batched Chord lookups vs looped ``lookup``: the ISSUE 4 criterion.

10k key resolutions on a 2000-node, 24-bit ring must be >= 20x faster
through ``lookup_batch`` than through a per-key ``lookup`` loop. The
batch path includes building its epoch-keyed routing cache (a freshly
built ring pre-primes it from the vectorized rebuild's own matrices),
so the measured factor is end to end, not warm-cache-only.
"""

from __future__ import annotations

import time

import numpy as np

from repro.overlay.chord import ChordRing

BITS = 24
NODES = 2000
QUERIES = 10_000
SEED = 11


def _ring() -> ChordRing:
    rng = np.random.default_rng(SEED)
    ids = sorted(
        int(i) for i in rng.choice(2**BITS, size=NODES, replace=False)
    )
    return ChordRing.build(ids, bits=BITS)


def _queries(ring: ChordRing):
    rng = np.random.default_rng(SEED + 1)
    keys = [int(k) for k in rng.integers(0, 2**BITS, size=QUERIES)]
    starts = [int(s) for s in rng.choice(ring.live_node_ids, size=QUERIES)]
    return keys, starts


def _run_loop(ring, keys, starts):
    return [
        ring.lookup(key, start=start) for key, start in zip(keys, starts)
    ]


def test_chord_10k_lookup_loop(benchmark):
    ring = _ring()
    keys, starts = _queries(ring)
    results = benchmark.pedantic(
        _run_loop, args=(ring, keys, starts), rounds=1, iterations=1
    )
    assert all(r.succeeded for r in results)


def test_chord_10k_lookup_batch(benchmark):
    ring = _ring()
    keys, starts = _queries(ring)
    batch = benchmark.pedantic(
        ring.lookup_batch, args=(keys, starts), rounds=1, iterations=1
    )
    assert bool(batch.succeeded.all())


def test_batch_speedup_at_least_20x():
    ring = _ring()
    keys, starts = _queries(ring)

    start = time.perf_counter()
    batch = ring.lookup_batch(keys, starts)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    looped = _run_loop(ring, keys, starts)
    loop_seconds = time.perf_counter() - start

    # Exact agreement with the oracle on every query.
    assert [int(o) for o in batch.owners] == [r.owner for r in looped]
    assert [int(h) for h in batch.hops] == [r.hops for r in looped]
    speedup = loop_seconds / batch_seconds
    assert speedup >= 20.0, (
        f"lookup_batch speedup {speedup:.1f}x below the 20x criterion "
        f"(loop {loop_seconds:.2f}s, batch {batch_seconds:.2f}s)"
    )
