"""Process-parallel Monte Carlo: wall-clock and bit-identity.

The 200-trial campaign matches ISSUE 3's acceptance criterion: with 4+
cores, ``workers=4`` must beat the serial path by >= 2.5x while returning
a bit-identical :class:`~repro.simulation.results.PsEstimate`. On smaller
runners the speedup assertion is skipped (process pools cannot beat
serial on one core) but bit-identity is always enforced.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core import OneBurstAttack, SOSArchitecture
from repro.simulation import estimate_ps

ARCH = SOSArchitecture(
    layers=3, mapping="one-to-two", total_overlay_nodes=2000, sos_nodes=80
)
ATTACK = OneBurstAttack(break_in_budget=60, congestion_budget=400)
TRIALS = 200
SEED = 42


def _campaign(workers: int):
    return estimate_ps(
        ARCH, ATTACK, trials=TRIALS, clients_per_trial=4, seed=SEED,
        workers=workers,
    )


def test_mc_200_trials_serial(benchmark):
    result = benchmark.pedantic(_campaign, args=(1,), rounds=1, iterations=1)
    assert 0.0 <= result.mean <= 1.0
    assert result.trials == TRIALS


def test_mc_200_trials_workers4(benchmark):
    result = benchmark.pedantic(_campaign, args=(4,), rounds=1, iterations=1)
    assert 0.0 <= result.mean <= 1.0
    assert result.trials == TRIALS


def test_workers_bit_identical_to_serial():
    serial = _campaign(1)
    for workers in (2, 4):
        assert _campaign(workers) == serial


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the >=2.5x speedup criterion presumes a 4-core runner",
)
def test_workers4_speedup_at_least_2_5x():
    start = time.perf_counter()
    serial = _campaign(1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = _campaign(4)
    parallel_seconds = time.perf_counter() - start

    assert parallel == serial
    speedup = serial_seconds / parallel_seconds
    assert speedup >= 2.5, (
        f"workers=4 speedup {speedup:.2f}x below the 2.5x criterion "
        f"(serial {serial_seconds:.2f}s, parallel {parallel_seconds:.2f}s)"
    )
