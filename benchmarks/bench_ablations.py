"""Benchmark the ablation experiments on DESIGN.md's design choices."""

from __future__ import annotations

from benchmarks.conftest import regenerate_and_report


def test_ablation_filters(benchmark):
    regenerate_and_report(benchmark, "abl-filters")


def test_ablation_prior_knowledge(benchmark):
    regenerate_and_report(benchmark, "abl-prior")


def test_ablation_breakin_success(benchmark):
    regenerate_and_report(benchmark, "abl-pb")


def test_ablation_tradeoff_frontier(benchmark):
    result = regenerate_and_report(benchmark, "abl-tradeoff")
    assert len(result.x_values) >= 2


def test_ablation_shared_roles(benchmark):
    result = regenerate_and_report(benchmark, "abl-shared")
    # The §3.1 argument: dedicated layering dominates once N_T > 0.
    assert result.series["dedicated layers"][-1] > result.series["shared roles"][-1]
